"""E8 — design-choice ablations of the FTBAR heuristic.

Quantifies the two mechanisms DESIGN.md singles out:

* ``Minimize_start_time`` LIP duplication (section 4.2 / Figure 4): at
  high CCR a duplicated predecessor replaces an expensive comm, so the
  paper variant should beat the no-duplication variant;
* link gap-insertion (an extension over the paper's append-only comm
  scheduling), measured for completeness.

Each variant is a separately timed benchmark on the same problem.
"""

import pytest

from benchmarks.conftest import graphs_per_point
from repro.analysis.experiments import run_ablation
from repro.analysis.reporting import format_ablation
from repro.core.ftbar import schedule_ftbar
from repro.core.options import SchedulerOptions
from repro.workloads.random_dag import RandomWorkloadConfig, generate_problem

_PROBLEM = generate_problem(
    RandomWorkloadConfig(operations=30, ccr=5.0, processors=4, npf=1, seed=2003)
)

_VARIANTS = {
    "paper": SchedulerOptions(),
    "no-duplication": SchedulerOptions(duplication=False),
    "link-insertion": SchedulerOptions(link_insertion=True),
}


@pytest.mark.parametrize("variant", sorted(_VARIANTS))
def bench_ablation_variant(benchmark, variant):
    """Time one scheduler variant on the shared N=30, CCR=5 problem."""
    options = _VARIANTS[variant]
    result = benchmark(schedule_ftbar, _PROBLEM, options)
    assert result.makespan > 0


def bench_ablation_table(benchmark, record_result):
    """Record the averaged ablation tables over several random graphs.

    Two settings: homogeneous tables at high CCR (where LIP duplication
    dominates) and heterogeneous tables at moderate CCR (where the
    processor-aware pressure separates from the paper's formula).
    """
    benchmark(schedule_ftbar, _PROBLEM)
    homogeneous = run_ablation(
        operations=30,
        ccr=5.0,
        processors=4,
        graphs_per_point=graphs_per_point(5, 10),
        seed=2003,
    )
    heterogeneous = run_ablation(
        operations=30,
        ccr=1.0,
        processors=4,
        graphs_per_point=graphs_per_point(5, 10),
        seed=2003,
        heterogeneous=True,
    )
    record_result(
        "ablation",
        "E8 — ablations (Npf=1, P=4, N=30)\n\n"
        "(a) homogeneous tables, CCR=5\n"
        + format_ablation(homogeneous)
        + "\n\n(b) heterogeneous tables, CCR=1\n"
        + format_ablation(heterogeneous),
    )
    by_label = {p.label: p for p in homogeneous}
    paper = by_label["ftbar (paper: duplication, append-only links)"]
    no_dup = by_label["no duplication"]
    assert paper.makespan <= no_dup.makespan, "duplication should help at CCR=5"
    hetero = {p.label: p for p in heterogeneous}
    aware = hetero["processor-aware pressure"]
    assert aware.makespan <= hetero[
        "ftbar (paper: duplication, append-only links)"
    ].makespan * 1.05, "aware pressure should not lose on heterogeneous tables"
