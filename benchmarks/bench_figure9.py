"""E2/E3 — Figure 9: fault-tolerance overhead versus N.

Settings from the paper: ``Npf = 1``, ``P = 4``, ``CCR = 5``, 60 random
graphs per point (reduced by default, see conftest), overhead measured
both without failure (9a) and with the worst single processor crash at
t=0 (9b).  Expected shape: overhead grows with N and FTBAR stays below
HBP.

The timed body is one FTBAR run at N=40 (a middle-of-the-sweep size).
"""

from benchmarks.conftest import full_scale, graphs_per_point
from repro.analysis.experiments import run_overhead_vs_operations
from repro.analysis.reporting import ascii_plot, format_overhead_sweep
from repro.core.ftbar import schedule_ftbar
from repro.workloads.random_dag import RandomWorkloadConfig, generate_problem


def bench_figure9_overhead_vs_n(benchmark, record_result):
    """Regenerate both panels of Figure 9 and time a representative run."""
    problem = generate_problem(
        RandomWorkloadConfig(operations=40, ccr=5.0, processors=4, npf=1, seed=2003)
    )
    benchmark(schedule_ftbar, problem)

    counts = (10, 20, 30, 40, 50, 60, 70, 80) if full_scale() else (10, 20, 40, 60)
    sweep = run_overhead_vs_operations(
        operation_counts=counts,
        ccr=5.0,
        processors=4,
        graphs_per_point=graphs_per_point(),
        seed=2003,
    )
    text = format_overhead_sweep(
        sweep,
        "E2/E3 — Figure 9: overhead vs N (Npf=1, P=4, CCR=5)",
    )
    plot = ascii_plot(
        [p.x for p in sweep.points],
        {
            "ftbar": [p.ftbar_absence for p in sweep.points],
            "hbp": [p.hbp_absence for p in sweep.points],
        },
    )
    record_result("figure9", text + "\n\n(absence panel)\n" + plot)

    # Shape assertions from the paper's analysis (section 6.2).
    first, last = sweep.points[0], sweep.points[-1]
    assert last.ftbar_absence >= first.ftbar_absence - 10.0, "overhead should grow with N"
    assert last.ftbar_absence <= last.hbp_absence, "FTBAR should beat HBP at CCR=5"
