"""Shared configuration of the benchmark harness.

Every bench regenerates one table or figure of the paper and times the
scheduler(s) involved.  The sweeps default to a reduced number of random
graphs per point so that ``pytest benchmarks/ --benchmark-only`` stays
fast; set ``REPRO_BENCH_FULL=1`` to run the paper-scale configuration
(60 graphs per point, the full N range).

Each bench also appends its rendered table to
``benchmarks/results/<name>.txt`` so the numbers survive the run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def full_scale() -> bool:
    """True when the paper-scale configuration was requested."""
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


def graphs_per_point(reduced: int = 5, full: int = 60) -> int:
    """Number of random graphs averaged per sweep point."""
    return full if full_scale() else reduced


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_result(results_dir):
    """Write one bench's rendered output to its results file and stdout."""

    def write(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return write
