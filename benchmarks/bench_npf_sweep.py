"""E7 — overhead versus Npf on heterogeneous architectures.

Section 7 (future work): "We are currently performing extensive
benchmark testing of FTBAR on heterogeneous architectures.  The first
results show that the overheads increase with the number of failures
Npf."  This bench regenerates that result: heterogeneous tables,
``P = 5``, ``Npf ∈ {0, 1, 2, 3}``.

The timed body is one FTBAR run at Npf=2.
"""

from benchmarks.conftest import graphs_per_point
from repro.analysis.experiments import run_npf_sweep
from repro.analysis.reporting import format_npf_sweep
from repro.core.ftbar import schedule_ftbar
from repro.workloads.random_dag import RandomWorkloadConfig, generate_problem


def bench_npf_sweep(benchmark, record_result):
    """Regenerate the Npf sweep and time a representative Npf=2 run."""
    problem = generate_problem(
        RandomWorkloadConfig(
            operations=20, ccr=1.0, processors=5, npf=2,
            heterogeneous=True, seed=2003,
        )
    )
    benchmark(schedule_ftbar, problem)

    points = run_npf_sweep(
        npfs=(0, 1, 2, 3),
        operations=20,
        ccr=1.0,
        processors=5,
        graphs_per_point=graphs_per_point(5, 20),
        seed=2003,
    )
    record_result(
        "npf_sweep",
        "E7 — overhead vs Npf (heterogeneous, P=5, N=20, CCR=1)\n"
        + format_npf_sweep(points),
    )
    overheads = [p.overhead for p in points]
    assert overheads == sorted(overheads), "overhead should grow with Npf"
