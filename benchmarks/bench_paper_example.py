"""E1 — the worked example (section 4.3/4.4, Figures 5-8).

Regenerates every number the paper reports for the Figure 2 problem:

* the fault-tolerant schedule length (paper: 15.05, Rtc = 16 satisfied),
* the basic non-fault-tolerant length (paper: 10.7) and the overhead
  (paper: 4.35),
* the degraded lengths when each processor crashes at t=0
  (paper: 15.35 / 15.05 / 12.6, Figure 8).

The timed body is one full FTBAR run on the example.
"""

from repro.analysis.experiments import run_paper_example
from repro.analysis.reporting import format_paper_example
from repro.core.ftbar import schedule_ftbar
from repro.workloads.paper_example import (
    PAPER_BASIC_LENGTH,
    PAPER_DEGRADED_LENGTHS,
    PAPER_FT_LENGTH,
    PAPER_OVERHEAD,
    build_problem,
)

REFERENCES = {
    "ft_length": PAPER_FT_LENGTH,
    "basic_length": PAPER_BASIC_LENGTH,
    "overhead": PAPER_OVERHEAD,
    "degraded": PAPER_DEGRADED_LENGTHS,
}


def bench_paper_example_ftbar(benchmark, record_result):
    """Time FTBAR on the worked example; print measured vs paper numbers."""
    problem = build_problem()
    result = benchmark(schedule_ftbar, problem)
    assert abs(result.makespan - PAPER_FT_LENGTH) < 1e-9
    results = run_paper_example()
    record_result(
        "paper_example",
        "E1 — worked example (Tables 1-2, Figures 5-8)\n"
        + format_paper_example(results, REFERENCES),
    )
