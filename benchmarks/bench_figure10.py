"""E4/E5 — Figure 10: fault-tolerance overhead versus CCR.

Settings from the paper: ``Npf = 1``, ``P = 4``, ``N = 50``,
``CCR ∈ {0.1, 0.5, 1, 2, 5, 10}``.  Expected shape: overheads decrease
once communications dominate (CCR > 1); FTBAR ≈ HBP for CCR ≤ 1 and
FTBAR clearly better (the paper says by at least 20 %) for CCR ≥ 2 —
the effect of the schedule pressure minimising the critical path.

The timed body is one FTBAR run at CCR=5.
"""

from benchmarks.conftest import full_scale, graphs_per_point
from repro.analysis.experiments import run_overhead_vs_ccr
from repro.analysis.reporting import ascii_plot, format_overhead_sweep
from repro.core.ftbar import schedule_ftbar
from repro.workloads.random_dag import RandomWorkloadConfig, generate_problem


def bench_figure10_overhead_vs_ccr(benchmark, record_result):
    """Regenerate both panels of Figure 10 and time a representative run."""
    operations = 50 if full_scale() else 30
    problem = generate_problem(
        RandomWorkloadConfig(
            operations=operations, ccr=5.0, processors=4, npf=1, seed=2003
        )
    )
    benchmark(schedule_ftbar, problem)

    sweep = run_overhead_vs_ccr(
        ccrs=(0.1, 0.5, 1.0, 2.0, 5.0, 10.0),
        operations=operations,
        processors=4,
        graphs_per_point=graphs_per_point(),
        seed=2003,
    )
    text = format_overhead_sweep(
        sweep,
        f"E4/E5 — Figure 10: overhead vs CCR (Npf=1, P=4, N={operations})",
    )
    plot = ascii_plot(
        [p.x for p in sweep.points],
        {
            "ftbar": [p.ftbar_absence for p in sweep.points],
            "hbp": [p.hbp_absence for p in sweep.points],
        },
    )
    record_result("figure10", text + "\n\n(absence panel)\n" + plot)

    by_ccr = {p.x: p for p in sweep.points}
    # Shape assertions (section 6.2): FTBAR clearly better at high CCR...
    for ccr in (2.0, 5.0, 10.0):
        assert by_ccr[ccr].ftbar_absence < by_ccr[ccr].hbp_absence, ccr
    # ...and overheads lower at CCR=10 than at the CCR=1 peak region.
    assert by_ccr[10.0].ftbar_absence < by_ccr[1.0].ftbar_absence + 15.0
