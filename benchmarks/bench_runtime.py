"""E6 — scheduling-time comparison: FTBAR is cheaper than HBP.

Section 6.2: "The time complexity of FTBAR is less than the time
complexity of HBP.  The reason is that HBP investigates more
possibilities than FTBAR when selecting the processor for a candidate
operation" — HBP evaluates every ordered processor *pair* per candidate
(O(P²)) where FTBAR ranks single processors (O(P)).

Two timed bodies (one per scheduler) let pytest-benchmark print the
direct comparison; the recorded table adds a small N sweep.
"""

from benchmarks.conftest import full_scale, graphs_per_point
from repro.analysis.experiments import run_runtime_comparison
from repro.analysis.reporting import format_runtime_comparison
from repro.baselines.hbp import schedule_hbp
from repro.core.ftbar import schedule_ftbar
from repro.workloads.random_dag import RandomWorkloadConfig, generate_problem

_PROBLEM = generate_problem(
    RandomWorkloadConfig(operations=40, ccr=1.0, processors=4, npf=1, seed=2003)
)


def bench_runtime_ftbar(benchmark):
    """Time FTBAR on the shared N=40 problem."""
    result = benchmark(schedule_ftbar, _PROBLEM)
    assert result.makespan > 0


def bench_runtime_hbp(benchmark, record_result):
    """Time HBP on the same problem; record the sweep table."""
    result = benchmark(schedule_hbp, _PROBLEM)
    assert result.makespan > 0

    counts = (10, 20, 40, 60, 80) if full_scale() else (10, 20, 40)
    points = run_runtime_comparison(
        operation_counts=counts,
        graphs_per_point=max(2, graphs_per_point(3, 5)),
        seed=2003,
    )
    record_result(
        "runtime",
        "E6 — scheduler wall time, FTBAR vs HBP\n"
        + format_runtime_comparison(points),
    )
    # The headline claim: FTBAR schedules faster than HBP.
    for point in points:
        assert point.ftbar_seconds < point.hbp_seconds, point
