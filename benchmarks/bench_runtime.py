"""E6 — scheduling-time comparison: FTBAR is cheaper than HBP.

Section 6.2: "The time complexity of FTBAR is less than the time
complexity of HBP.  The reason is that HBP investigates more
possibilities than FTBAR when selecting the processor for a candidate
operation" — HBP evaluates every ordered processor *pair* per candidate
(O(P²)) where FTBAR ranks single processors (O(P)).

Two timed bodies (one per scheduler) let pytest-benchmark print the
direct comparison; the recorded table adds a small N sweep.

The module also measures the perf trajectory of the scheduling engines
and records it in ``BENCH_runtime.json`` at the repository root:

* ``ftbar_incremental_vs_legacy`` — the PR-1 incremental engine against
  the seed full-recompute path;
* ``ftbar_compiled_vs_incremental`` — the compiled kernel
  (``SchedulerOptions(compiled=True)``) against the object incremental
  engine, with the kernel's work counters (candidates evaluated, cache
  hits, scratch-buffer reuses);
* ``profile_top`` — the top cProfile hotspots of one compiled
  scheduling run (``--profile``), so perf PRs can prove where the time
  went before/after;
* ``campaign_jobs1_vs_cpu`` — campaign throughput at ``jobs=1`` versus
  one worker per CPU (``--force-workers N`` oversubscribes on 1-CPU
  hosts so the comparison always produces numbers);
* ``campaign_backend_scaling`` — the same campaign across execution
  backends and worker counts (serial reference, then ``--backend``
  at 1/2/4 workers), with every leg's canonically merged store
  asserted byte-identical to the serial reference before its time
  counts;
* ``phase_breakdown`` — per-phase wall time of the pinned
  ``repro bench --smoke`` problems from a traced run (``--phases``
  also prints the table), sourced from the observability layer's span
  aggregates.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_runtime.py \
        [--full] [--profile] [--phases] [--force-workers N] \
        [--backend local|directory]
"""

import cProfile
import gc
import json
import os
import pstats
import shutil
import sys
import tempfile
import time
from pathlib import Path

try:
    from benchmarks.conftest import full_scale, graphs_per_point
except ModuleNotFoundError:
    # Invoked as `python benchmarks/bench_runtime.py`, or in a minimal
    # install without pytest (which conftest imports for its fixtures):
    # the benches only need the env-var scale knobs, mirrored here.
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    try:
        from benchmarks.conftest import full_scale, graphs_per_point
    except ModuleNotFoundError:
        def full_scale() -> bool:
            return os.environ.get("REPRO_BENCH_FULL", "") == "1"

        def graphs_per_point(reduced: int = 5, full: int = 60) -> int:
            return full if full_scale() else reduced
from repro import obs
from repro.analysis.experiments import run_runtime_comparison
from repro.analysis.reporting import format_runtime_comparison
from repro.baselines.hbp import schedule_hbp
from repro.campaign.merge import merge_stores
from repro.campaign.pool import cpu_affinity_count, default_worker_count
from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignSpec, WorkloadSpec
from repro.core.compile import compile_cache_stats, reset_compile_cache
from repro.core.ftbar import schedule_ftbar
from repro.core.options import SchedulerOptions
from repro.workloads.random_dag import RandomWorkloadConfig, generate_problem

_PROBLEM = generate_problem(
    RandomWorkloadConfig(operations=40, ccr=1.0, processors=4, npf=1, seed=2003)
)

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"
#: The seed engine: no incremental cache, no compiled kernel.
_LEGACY = SchedulerOptions(incremental=False, compiled=False)
#: The PR-1 engine: incremental cache on the object path.
_INCREMENTAL = SchedulerOptions(compiled=False)
#: This PR's engine: the compiled kernel (the default options).
_COMPILED = SchedulerOptions()
#: The compiled kernel with symmetry pruning disabled — the escape
#: hatch whose counters must match the object engine bit for bit.
_COMPILED_NOSYM = SchedulerOptions(symmetry=False)


def _best_of(function, problem, options, repeats: int) -> tuple[float, object]:
    """Min-of-``repeats`` wall time, with a warmup run and quiesced GC.

    Without the collect, the garbage of the *previous* measured
    configuration gets collected inside this one's timed region.
    """
    call = (
        (lambda: function(problem, options))
        if options is not None
        else (lambda: function(problem))
    )
    result = call()  # warmup, untimed
    best = float("inf")
    for _ in range(repeats):
        gc.collect()
        started = time.perf_counter()
        result = call()
        best = min(best, time.perf_counter() - started)
    return best, result


def _interleaved_best_of(problem, legs, repeats: int) -> dict[str, list]:
    """Min-of-``repeats`` per leg, with the legs interleaved.

    Timing each leg's repeats back-to-back lets slow host drift (thermal
    state, background load) land entirely on one leg and skew the ratio
    by tens of percent.  Alternating the legs inside a single repeat
    loop exposes every leg to the same mix of machine states, so the
    min-of-repeats ratio is stable.  Returns ``{name: [seconds, result]}``.
    """
    results: dict[str, list] = {}
    for name, options in legs:  # warmup, untimed
        results[name] = [float("inf"), schedule_ftbar(problem, options)]
    for _ in range(repeats):
        for name, options in legs:
            gc.collect()
            started = time.perf_counter()
            result = schedule_ftbar(problem, options)
            elapsed = time.perf_counter() - started
            entry = results[name]
            if elapsed < entry[0]:
                entry[0] = elapsed
            entry[1] = result
    return results


def run_incremental_sweep(full: bool = False, repeats: int = 5) -> dict:
    """Time FTBAR's incremental engine against the seed path per N."""
    counts = (40, 100, 200, 500) if full else (40, 100)
    sweep: dict[str, dict] = {}
    for n in counts:
        problem = generate_problem(
            RandomWorkloadConfig(
                operations=n, ccr=1.0, processors=4, npf=1, seed=2003
            )
        )
        incremental_s, incremental = _best_of(
            schedule_ftbar, problem, _INCREMENTAL, repeats
        )
        legacy_s, legacy = _best_of(schedule_ftbar, problem, _LEGACY, repeats)
        assert incremental.makespan == legacy.makespan, (
            f"engines diverge at N={n}"
        )
        sweep[str(n)] = {
            "incremental_s": incremental_s,
            "legacy_s": legacy_s,
            "speedup": legacy_s / incremental_s,
            "incremental_pressure_evaluations":
                incremental.stats.pressure_evaluations,
            "legacy_pressure_evaluations": legacy.stats.pressure_evaluations,
            "cache_hits": incremental.stats.cache_hits,
            "makespan": incremental.makespan,
        }
    return sweep


def run_compiled_sweep(full: bool = False, repeats: int = 5) -> dict:
    """Time the compiled kernel against the object incremental engine.

    Equivalence is asserted before recording — the kernel is a
    pure-performance change, so any divergence voids the measurement:

    * all four engines (compiled, compiled ``symmetry=False``,
      incremental, legacy) must produce the same makespan;
    * with symmetry pruning disabled the kernel probes exactly the
      candidate set the object engine does, so its work counters must
      match the incremental engine's bit for bit.  With pruning on the
      evaluation count is *lower* by construction; the gap is recorded
      as ``symmetry_pruned``.

    Each point also records the shared-compilation memo deltas: after
    the first run of a problem every later run (and every variant leg)
    reuses the memoized ``CompiledProblem`` core, which is where the
    repeat-loop hit counts come from.
    """
    counts = (40, 80, 120, 200, 300, 500, 800) if full else (40, 80)
    sweep: dict[str, dict] = {}
    for n in counts:
        problem = generate_problem(
            RandomWorkloadConfig(
                operations=n, ccr=1.0, processors=4, npf=1, seed=2003
            )
        )
        cache_before = compile_cache_stats()
        # Small problems schedule in milliseconds, so extra repeats are
        # cheap and tighten the min where relative noise is largest.
        leg_repeats = repeats if n >= 300 else repeats * 2
        legs = _interleaved_best_of(
            problem,
            (("compiled", _COMPILED), ("incremental", _INCREMENTAL)),
            leg_repeats,
        )
        compiled_s, compiled = legs["compiled"]
        incremental_s, incremental = legs["incremental"]
        legacy_s, legacy = _best_of(
            schedule_ftbar, problem, _LEGACY, max(1, repeats // 2)
        )
        nosym_s, nosym = _best_of(schedule_ftbar, problem, _COMPILED_NOSYM, 1)
        cache_after = compile_cache_stats()
        assert (
            compiled.makespan
            == nosym.makespan
            == incremental.makespan
            == legacy.makespan
        ), f"engines diverge at N={n}"
        assert (
            nosym.stats.pressure_evaluations,
            nosym.stats.cache_hits,
        ) == (
            incremental.stats.pressure_evaluations,
            incremental.stats.cache_hits,
        ), f"counters diverge at N={n}"
        assert (
            compiled.stats.pressure_evaluations
            + compiled.stats.symmetry_pruned
            >= nosym.stats.pressure_evaluations
        ), f"symmetry pruning lost work at N={n}"
        sweep[str(n)] = {
            "compiled_s": compiled_s,
            "compiled_nosym_s": nosym_s,
            "incremental_s": incremental_s,
            "legacy_s": legacy_s,
            "speedup": incremental_s / compiled_s,
            "speedup_vs_seed": legacy_s / compiled_s,
            "pressure_evaluations": compiled.stats.pressure_evaluations,
            "nosym_pressure_evaluations": nosym.stats.pressure_evaluations,
            "symmetry_pruned": compiled.stats.symmetry_pruned,
            "cache_hits": compiled.stats.cache_hits,
            "buffer_reuses": compiled.stats.buffer_reuses,
            "compile_cache_core_hits": (
                cache_after["core_hits"] - cache_before["core_hits"]
            ),
            "compile_cache_core_misses": (
                cache_after["core_misses"] - cache_before["core_misses"]
            ),
            "compile_cache_variant_hits": (
                cache_after["variant_hits"] - cache_before["variant_hits"]
            ),
            "makespan": compiled.makespan,
        }
    return sweep


#: The pinned ``repro bench --smoke`` problems (same configs, same
#: labels), so the phase breakdown lines up with the counter pins.
_SMOKE_CONFIGS = {
    "ftbar-N40-npf1": RandomWorkloadConfig(
        operations=40, ccr=1.0, processors=4, npf=1, seed=2003
    ),
    "ftbar-N24-npf2": RandomWorkloadConfig(
        operations=24, ccr=2.0, processors=4, npf=2, seed=7
    ),
}


def run_phase_breakdown() -> dict:
    """Trace the smoke problems; record where each run's time went.

    Each problem is scheduled once untraced (warmup + compile-memo
    fill), then once under an in-memory tracer.  The folded span totals
    — ``ftbar.compile``, per-step ``kernel.sweep`` / ``kernel.place``,
    the kernel-internal phase aggregates, ``kernel.materialize`` —
    become the ``phase_breakdown`` section of ``BENCH_runtime.json``,
    so perf PRs can point at the phase that moved instead of one
    opaque wall-time number.
    """
    breakdown: dict[str, dict] = {}
    for label, config in _SMOKE_CONFIGS.items():
        problem = generate_problem(config)
        reset_compile_cache()
        schedule_ftbar(problem)  # warmup, untimed
        exporter = obs.ListExporter()
        tracer = obs.Tracer(exporter, meta={"bench": label})
        with obs.scoped(tracer):
            result = schedule_ftbar(problem)
        tracer.close()
        phases = obs.aggregate_spans(exporter.lines)
        total = next(
            entry["total_s"] for entry in phases if entry["name"] == "ftbar.run"
        )
        breakdown[label] = {
            "operations": config.operations,
            "npf": config.npf,
            "seed": config.seed,
            "makespan": result.makespan,
            "total_s": round(total, 6),
            "phases": [
                {
                    "name": entry["name"],
                    "count": entry["count"],
                    "total_s": round(entry["total_s"], 6),
                    "share": round(entry["total_s"] / total, 4) if total else 0.0,
                }
                for entry in phases
                if entry["name"] != "ftbar.run"
            ],
        }
    reset_compile_cache()
    return breakdown


def run_profile(operations: int = 300, top: int = 20) -> dict:
    """cProfile one compiled scheduling run; record the top hotspots.

    Returns ``{"operations", "total_s", "hotspots": [...]}`` where each
    hotspot carries the cumulative-time ranking the ``profile_top`` key
    of ``BENCH_runtime.json`` stores — the before/after evidence a perf
    PR points at.
    """
    problem = generate_problem(
        RandomWorkloadConfig(
            operations=operations, ccr=1.0, processors=4, npf=1, seed=2003
        )
    )
    schedule_ftbar(problem)  # warmup, untimed
    profiler = cProfile.Profile()
    profiler.enable()
    schedule_ftbar(problem)
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    hotspots = []
    total = 0.0
    for function, (cc, ncalls, tottime, cumtime, _) in stats.stats.items():
        total = max(total, cumtime)
        hotspots.append({
            "function": "{}:{}:{}".format(*function),
            "ncalls": ncalls,
            "tottime_s": round(tottime, 6),
            "cumtime_s": round(cumtime, 6),
        })
    hotspots.sort(key=lambda h: -h["cumtime_s"])
    return {
        "operations": operations,
        "total_s": round(total, 6),
        "hotspots": hotspots[:top],
    }


def run_hbp_sweep(full: bool = False, repeats: int = 3) -> dict:
    """FTBAR vs HBP wall time on the shared E6 problems."""
    counts = (40, 80) if full else (40,)
    sweep: dict[str, dict] = {}
    for n in counts:
        problem = generate_problem(
            RandomWorkloadConfig(
                operations=n, ccr=1.0, processors=4, npf=1, seed=2003
            )
        )
        ftbar_s, _ = _best_of(schedule_ftbar, problem, None, repeats)
        hbp_s, hbp = _best_of(schedule_hbp, problem, None, repeats)
        sweep[str(n)] = {
            "ftbar_s": ftbar_s,
            "hbp_s": hbp_s,
            "hbp_pair_evaluations": hbp.stats.pair_evaluations,
            "hbp_pair_cache_hits": hbp.stats.pair_cache_hits,
        }
    return sweep


def run_campaign_jobs_sweep(
    full: bool = False, force_workers: int | None = None
) -> dict:
    """Wall-clock of one campaign at jobs=1 versus a worker pool.

    The campaign schedules ``graphs`` independent random problems —
    embarrassingly parallel work, so the worker pool's scaling shows up
    directly.  Both runs verify they produce identical record sets.

    On a single-CPU host both legs would take the same sequential path;
    without ``force_workers`` the entry is marked ``skipped`` with the
    reason.  ``force_workers`` oversubscribes the pool to that many
    processes regardless of CPU count, so the jobs=1-vs-jobs=N
    comparison always produces numbers — the honest ``workers`` and
    ``cpu_count`` fields record what actually ran (an ``oversubscribed``
    ratio near 1.0 on one CPU measures pool overhead, not scaling).
    """
    operations = 60 if full else 30
    graphs = 16 if full else 8
    cpu_workers = default_worker_count()
    workers = cpu_workers
    oversubscribed = False
    if force_workers is not None and force_workers > 1:
        workers = force_workers
        oversubscribed = force_workers > cpu_workers
    elif cpu_workers <= 1:
        return {
            "operations": operations,
            "graphs": graphs,
            "workers": cpu_workers,
            "cpu_count": os.cpu_count() or 1,
            "cpu_affinity": cpu_affinity_count(),
            "skipped": True,
            "reason": "only one CPU available — jobs=1 and jobs=cpu would "
            "run the same sequential path (pass --force-workers N to "
            "measure the oversubscribed pool anyway)",
        }
    spec = CampaignSpec(
        name="bench-campaign",
        workloads=(WorkloadSpec(family="random", size=operations),),
        seeds=tuple(2003 + 1000 * index for index in range(graphs)),
        measures=("ftbar", "non_ft"),
    )
    started = time.perf_counter()
    serial = run_campaign(spec, jobs=1)
    jobs1_s = time.perf_counter() - started
    started = time.perf_counter()
    parallel = run_campaign(spec, jobs=workers)
    jobs_cpu_s = time.perf_counter() - started
    assert serial.records == parallel.records, "worker counts diverge"
    return {
        "operations": operations,
        "graphs": graphs,
        "workers": workers,
        "cpu_count": os.cpu_count() or 1,
        "cpu_affinity": cpu_affinity_count(),
        "oversubscribed": oversubscribed,
        "jobs1_s": jobs1_s,
        "jobs_cpu_s": jobs_cpu_s,
        "speedup": jobs1_s / jobs_cpu_s,
        "skipped": False,
    }


def run_campaign_backend_scaling(
    full: bool = False,
    force_workers: int | None = None,
    backend: str = "directory",
) -> dict:
    """Scaling sweep of one campaign across backend worker counts.

    The same embarrassingly-parallel campaign (``graphs`` independent
    random problems) runs once on the serial in-process backend — the
    wall-clock *and* bit-exactness reference — then on ``backend`` at 1,
    2 and 4 workers.  Every leg gets a fresh campaign directory and
    store (a shared schedule cache would fake the scaling), the legs are
    interleaved across repeats (host drift lands on all of them
    equally), and each leg's canonically merged store is asserted
    byte-identical to the serial reference before its time is recorded:
    a speedup that changed the records would be worthless.

    On a single-CPU host the sweep would only measure oversubscription;
    without ``force_workers`` the entry is marked ``skipped`` with the
    reason, and both ``cpu_count`` and ``cpu_affinity`` are recorded so
    the skip is auditable (CI runners often confine the process to
    fewer CPUs than the machine has).
    """
    operations = 60 if full else 30
    graphs = 16 if full else 8
    repeats = 3 if full else 2
    cpu_workers = default_worker_count()
    affinity = cpu_affinity_count()
    worker_counts = [1, 2, 4]
    oversubscribed = False
    if force_workers is not None and force_workers > 1:
        worker_counts = [w for w in worker_counts if w <= force_workers]
        oversubscribed = max(worker_counts) > cpu_workers
    elif cpu_workers <= 1:
        return {
            "operations": operations,
            "graphs": graphs,
            "backend": backend,
            "cpu_count": os.cpu_count() or 1,
            "cpu_affinity": affinity,
            "skipped": True,
            "reason": "only one CPU available — every worker count would "
            "measure the same sequential path plus dispatch overhead "
            "(pass --force-workers N to record oversubscribed numbers "
            "anyway)",
        }
    else:
        worker_counts = [w for w in worker_counts if w <= cpu_workers]
    spec = CampaignSpec(
        name="bench-backend-scaling",
        workloads=(WorkloadSpec(family="random", size=operations),),
        seeds=tuple(2003 + 1000 * index for index in range(graphs)),
        measures=("ftbar", "non_ft"),
    )
    scratch = Path(tempfile.mkdtemp(prefix="bench-backend-scaling-"))
    try:
        serial_store = scratch / "serial.jsonl"
        started = time.perf_counter()
        serial = run_campaign(spec, backend="serial", store=serial_store)
        serial_s = time.perf_counter() - started
        assert serial.completed == serial.total_jobs, serial.summary()
        reference = scratch / "serial-canonical.jsonl"
        merge_stores([serial_store], reference)
        reference_bytes = reference.read_bytes()

        best: dict[int, float] = {w: float("inf") for w in worker_counts}
        leg = 0
        for _ in range(repeats):
            for workers in worker_counts:
                leg += 1
                root = scratch / f"leg-{leg}"
                gc.collect()
                started = time.perf_counter()
                report = run_campaign(
                    spec,
                    backend=backend,
                    jobs=workers,
                    directory=root if backend == "directory" else None,
                )
                elapsed = time.perf_counter() - started
                assert report.completed == report.total_jobs, report.summary()
                if backend == "directory":
                    merged = scratch / f"leg-{leg}-canonical.jsonl"
                    merge_stores([root], merged)
                    assert merged.read_bytes() == reference_bytes, (
                        f"{backend} backend at {workers} workers diverged "
                        "from the serial reference"
                    )
                    shutil.rmtree(root)
                else:
                    assert report.records == serial.records, (
                        f"{backend} backend at {workers} workers diverged"
                    )
                best[workers] = min(best[workers], elapsed)
        return {
            "operations": operations,
            "graphs": graphs,
            "backend": backend,
            "repeats": repeats,
            "cpu_count": os.cpu_count() or 1,
            "cpu_affinity": affinity,
            "oversubscribed": oversubscribed,
            "serial_s": serial_s,
            "skipped": False,
            "sweep": {
                str(workers): {
                    "elapsed_s": best[workers],
                    "speedup_vs_serial": serial_s / best[workers],
                }
                for workers in worker_counts
            },
        }
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def run_campaign_compile_reuse(full: bool = False) -> dict:
    """One campaign grid demonstrating shared-``CompiledProblem`` reuse.

    The grid sweeps npf x npl x ccr over one workload/seed.  Every
    variant of a problem shares the algorithm, architecture and
    execution-time tables — only npf/npl/ccr change — so the
    content-addressed compile memos serve the expensive core tables from
    cache for all but the first job of each workload.  The recorded
    hit/miss counts are the evidence: ``core_hits > 0`` means the core
    was built once and reused across the variants.
    """
    operations = 40 if full else 24
    spec = CampaignSpec(
        name="bench-compile-reuse",
        workloads=(WorkloadSpec(family="random", size=operations),),
        seeds=(2003,),
        npfs=(0, 1),
        npls=(0, 1),
        ccrs=(0.5, 1.0),
        measures=("ftbar",),
    )
    reset_compile_cache()
    started = time.perf_counter()
    report = run_campaign(spec, jobs=1)
    elapsed = time.perf_counter() - started
    stats = compile_cache_stats()
    reset_compile_cache()
    assert report.completed == report.total_jobs, report.summary()
    assert stats["core_hits"] > 0, (
        f"no shared-compilation reuse across the variant grid: {stats}"
    )
    return {
        "operations": operations,
        "grid": {"npfs": [0, 1], "npls": [0, 1], "ccrs": [0.5, 1.0]},
        "jobs": report.total_jobs,
        "elapsed_s": elapsed,
        "compile_cache": stats,
    }


def write_bench_json(
    full: bool = False,
    repeats: int = 5,
    profile: bool = False,
    force_workers: int | None = None,
    backend: str = "directory",
) -> dict:
    """Run the sweeps and record them in ``BENCH_runtime.json``.

    Keys owned by other benches (e.g. ``bench_reliability.py``'s
    certificate sweep) are preserved, so the file accumulates the whole
    perf trajectory regardless of which bench ran last.
    """
    payload = (
        json.loads(_RESULT_PATH.read_text()) if _RESULT_PATH.exists() else {}
    )
    payload.update(
        {
            "generated_by": "benchmarks/bench_runtime.py",
            "config": {
                "ccr": 1.0, "processors": 4, "npf": 1, "seed": 2003,
                "repeats": repeats, "full": full,
            },
            "ftbar_incremental_vs_legacy": run_incremental_sweep(full, repeats),
            "ftbar_compiled_vs_incremental": run_compiled_sweep(full, repeats),
            "ftbar_vs_hbp": run_hbp_sweep(full, repeats),
            "phase_breakdown": run_phase_breakdown(),
            "campaign_compile_reuse": run_campaign_compile_reuse(full),
            "campaign_jobs1_vs_cpu": run_campaign_jobs_sweep(
                full, force_workers
            ),
            "campaign_backend_scaling": run_campaign_backend_scaling(
                full, force_workers, backend
            ),
        }
    )
    if profile:
        payload["profile_top"] = run_profile()
    _RESULT_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return payload


def bench_runtime_ftbar(benchmark):
    """Time FTBAR on the shared N=40 problem."""
    result = benchmark(schedule_ftbar, _PROBLEM)
    assert result.makespan > 0


def bench_runtime_hbp(benchmark, record_result):
    """Time HBP on the same problem; record the sweep table."""
    result = benchmark(schedule_hbp, _PROBLEM)
    assert result.makespan > 0

    counts = (10, 20, 40, 60, 80) if full_scale() else (10, 20, 40)
    points = run_runtime_comparison(
        operation_counts=counts,
        graphs_per_point=max(2, graphs_per_point(3, 5)),
        seed=2003,
    )
    record_result(
        "runtime",
        "E6 — scheduler wall time, FTBAR vs HBP\n"
        + format_runtime_comparison(points),
    )
    # The headline claim: FTBAR schedules faster than HBP.
    for point in points:
        assert point.ftbar_seconds < point.hbp_seconds, point


def bench_runtime_incremental_vs_legacy(benchmark, record_result):
    """Time the incremental engine and record the JSON perf trajectory."""
    result = benchmark(schedule_ftbar, _PROBLEM)
    assert result.makespan > 0

    payload = write_bench_json(full=full_scale())
    lines = ["incremental engine vs legacy full-recompute path"]
    for n, point in sorted(
        payload["ftbar_incremental_vs_legacy"].items(), key=lambda kv: int(kv[0])
    ):
        lines.append(
            f"  N={n:>4}: {point['incremental_s']*1e3:8.1f} ms vs "
            f"{point['legacy_s']*1e3:8.1f} ms  ({point['speedup']:.2f}x, "
            f"{point['incremental_pressure_evaluations']} vs "
            f"{point['legacy_pressure_evaluations']} plans computed)"
        )
    record_result("runtime_incremental", "\n".join(lines))


def main(argv: list[str]) -> int:
    full = full_scale() or "--full" in argv
    profile = "--profile" in argv
    usage = (
        "usage: bench_runtime.py [--full] [--profile] [--phases] "
        "[--force-workers N] [--backend local|directory]"
    )
    force_workers = None
    if "--force-workers" in argv:
        try:
            force_workers = int(argv[argv.index("--force-workers") + 1])
        except (IndexError, ValueError):
            print(usage, file=sys.stderr)
            return 2
    backend = "directory"
    if "--backend" in argv:
        try:
            backend = argv[argv.index("--backend") + 1]
        except IndexError:
            print(usage, file=sys.stderr)
            return 2
        if backend not in ("local", "directory"):
            print(usage, file=sys.stderr)
            return 2
    payload = write_bench_json(
        full=full,
        profile=profile,
        force_workers=force_workers,
        backend=backend,
    )
    print(json.dumps(payload, indent=1, sort_keys=True))
    n100 = payload["ftbar_incremental_vs_legacy"].get("100")
    if n100 is not None:
        print(
            f"\nFTBAR N=100 speedup over non-incremental path: "
            f"{n100['speedup']:.2f}x",
            file=sys.stderr,
        )
    for n, point in sorted(
        payload["ftbar_compiled_vs_incremental"].items(),
        key=lambda kv: int(kv[0]),
    ):
        print(
            f"compiled kernel N={n}: {point['speedup']:.2f}x vs incremental, "
            f"{point['speedup_vs_seed']:.2f}x vs seed "
            f"({point['pressure_evaluations']} evaluations, "
            f"{point['symmetry_pruned']} symmetry-pruned, "
            f"{point['cache_hits']} cache hits, "
            f"{point['buffer_reuses']} buffer reuses)",
            file=sys.stderr,
        )
    if "--phases" in argv:
        for label, point in sorted(payload["phase_breakdown"].items()):
            print(
                f"phase breakdown {label} "
                f"({point['total_s']*1e3:.1f} ms total):",
                file=sys.stderr,
            )
            for phase in sorted(
                point["phases"], key=lambda entry: -entry["total_s"]
            ):
                print(
                    f"  {phase['name']:24s} {phase['total_s']*1e3:8.2f} ms "
                    f"x{phase['count']:<5d} {phase['share']*100:5.1f}%",
                    file=sys.stderr,
                )
    reuse = payload["campaign_compile_reuse"]
    print(
        f"campaign compile reuse ({reuse['jobs']} variant jobs): "
        f"{reuse['compile_cache']['core_hits']} core hits / "
        f"{reuse['compile_cache']['core_misses']} misses, "
        f"{reuse['compile_cache']['variant_hits']} variant hits",
        file=sys.stderr,
    )
    campaign = payload["campaign_jobs1_vs_cpu"]
    if campaign.get("skipped"):
        print(f"campaign pool bench skipped: {campaign['reason']}", file=sys.stderr)
    else:
        print(
            f"campaign {campaign['graphs']}xN={campaign['operations']} "
            f"jobs=1 vs jobs={campaign['workers']}: "
            f"{campaign['speedup']:.2f}x",
            file=sys.stderr,
        )
    scaling = payload["campaign_backend_scaling"]
    if scaling.get("skipped"):
        print(
            f"campaign backend scaling skipped: {scaling['reason']}",
            file=sys.stderr,
        )
    else:
        for workers, point in sorted(
            scaling["sweep"].items(), key=lambda kv: int(kv[0])
        ):
            print(
                f"{scaling['backend']} backend x{workers} workers: "
                f"{point['speedup_vs_serial']:.2f}x vs serial "
                f"({point['elapsed_s']:.2f}s)",
                file=sys.stderr,
            )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
