"""Pin the chaos-off overhead of the failpoint instrumentation.

The fault-injection layer promises an **off-by-default no-op fast
path**: with no plan configured, every ``failpoint(site, key=...)``
threaded through the campaign I/O stack costs one module-global load
plus a ``None`` check — the same discipline the obs layer's
``NOOP_SPAN`` fast path keeps (``bench_obs_overhead.py``).  This bench
turns that promise into a recorded, CI-enforced number:

1. time the exact disabled-path idiom in a tight loop for the per-site
   cost;
2. count the failpoint hits one pinned serial campaign actually makes,
   by running it once under an **empty-trigger** plan (every hit is
   counted, nothing fires);
3. project the disabled cost over those hits against the measured
   clean campaign run and assert the overhead stays **under 1 %**.

Results merge into ``BENCH_runtime.json`` under ``fault_overhead``;
CI's ``chaos-smoke`` job runs this module on every push::

    PYTHONPATH=src python benchmarks/bench_fault_overhead.py
"""

from __future__ import annotations

import gc
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.campaign import CampaignSpec, WorkloadSpec, run_campaign
from repro.faultinject import (
    configure,
    deconfigure,
    failpoint,
    hit_counts,
    is_active,
    plan_from_dict,
)

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"

#: Enforced ceiling on the projected chaos-off overhead of one campaign.
OVERHEAD_BOUND = 0.01

#: The pinned workload: four fast serial jobs through the full
#: store/cache/execute failpoint path.
_SPEC = CampaignSpec(
    name="fault-overhead",
    workloads=(
        WorkloadSpec(family="in_tree", size=3),
        WorkloadSpec(family="out_tree", size=3),
    ),
    processors=(2, 3),
    seeds=(0,),
    measures=("ftbar", "non_ft"),
)


def measure_disabled_site(
    iterations: int = 200_000, repeats: int = 5
) -> float:
    """Best-of per-site cost of a failpoint with injection disabled."""
    assert not is_active(), "overhead bench must run with injection off"
    best = float("inf")
    for _ in range(repeats):
        gc.collect()
        started = time.perf_counter()
        for _ in range(iterations):
            failpoint("bench.disabled.site", key="digest")
        best = min(best, time.perf_counter() - started)
    return best / iterations


def count_campaign_hits() -> int:
    """Failpoint hits of one campaign run (empty plan: count, fire nothing)."""
    configure(plan_from_dict({"seed": 0, "triggers": []}))
    try:
        with tempfile.TemporaryDirectory() as scratch:
            run_campaign(
                _SPEC,
                jobs=1,
                store=Path(scratch) / "results.jsonl",
                cache=Path(scratch) / "cache",
                backend="serial",
            )
        return sum(hit_counts().values())
    finally:
        deconfigure()


def measure_campaign(repeats: int = 5) -> float:
    """Best-of wall time of the clean (injection-off) campaign run."""
    best = float("inf")
    for _ in range(repeats):
        gc.collect()
        with tempfile.TemporaryDirectory() as scratch:
            started = time.perf_counter()
            run_campaign(
                _SPEC,
                jobs=1,
                store=Path(scratch) / "results.jsonl",
                cache=Path(scratch) / "cache",
                backend="serial",
            )
            best = min(best, time.perf_counter() - started)
    return best


def run_overhead_bench(repeats: int = 5) -> dict:
    """Measure, project, enforce; return the ``fault_overhead`` payload."""
    deconfigure()
    site_s = measure_disabled_site()
    hits = count_campaign_hits()
    run_s = measure_campaign(repeats)
    projected_s = hits * site_s
    overhead = projected_s / run_s
    payload = {
        "disabled_site_ns": round(site_s * 1e9, 2),
        "failpoint_hits_per_campaign": hits,
        "campaign_run_s": round(run_s, 6),
        "noop_overhead_projected": round(overhead, 6),
        "bound": OVERHEAD_BOUND,
        "jobs": 4,
    }
    assert overhead < OVERHEAD_BOUND, (
        f"chaos-off failpoint overhead {overhead:.4%} exceeds the "
        f"{OVERHEAD_BOUND:.0%} bound: {payload}"
    )
    return payload


def bench_fault_noop_overhead(benchmark):
    """pytest-benchmark entry: time the disabled site, enforce the bound."""
    deconfigure()
    per_call = benchmark(failpoint, "bench.disabled.site", "digest")
    assert per_call is None
    run_overhead_bench(repeats=2)


def main(argv: list[str]) -> int:
    repeats = 5
    if "--quick" in argv:
        repeats = 2
    payload = (
        json.loads(_RESULT_PATH.read_text()) if _RESULT_PATH.exists() else {}
    )
    payload["fault_overhead"] = run_overhead_bench(repeats)
    _RESULT_PATH.write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n"
    )
    section = payload["fault_overhead"]
    print(json.dumps(section, indent=1, sort_keys=True))
    print(
        f"\nchaos-off failpoints: {section['disabled_site_ns']:.0f} ns/site "
        f"x {section['failpoint_hits_per_campaign']} hits = "
        f"{section['noop_overhead_projected']:.4%} of a "
        f"{section['campaign_run_s']*1e3:.1f} ms campaign "
        f"(bound {section['bound']:.0%})",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
