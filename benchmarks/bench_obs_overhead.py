"""Pin the disabled-telemetry overhead of the observability layer.

The obs layer promises an **off-by-default no-op fast path**: with no
tracer installed, every instrumented site in the scheduler costs one
``None`` check plus (at the hottest per-step sites) entering and
exiting the shared :data:`repro.obs.NOOP_SPAN`.  This bench turns that
promise into a recorded, CI-enforced number:

1. time the exact hot-site idiom — ``tracer.span(...) if tracer is not
   None else obs.NOOP_SPAN`` with ``tracer = None`` — in a tight loop
   to get the per-site cost;
2. count the sites one pinned ``repro bench --smoke`` scheduling run
   executes (two per step — ``kernel.sweep`` and ``kernel.place`` —
   plus a handful of per-run spans and the ``tracer()`` lookups);
3. compare the projected total against the measured untraced run and
   assert the overhead stays **under 2 %** (with an order of magnitude
   to spare in practice);
4. cross-check the projection with a measured traced-vs-untraced run
   against an in-memory exporter (recorded, not asserted — enabling
   tracing is allowed to cost more than the no-op path).

Results merge into ``BENCH_runtime.json`` under ``obs_overhead``; CI's
``obs-smoke`` job runs this module on every push, so a future span
added inside a hot loop that breaks the bound fails loudly::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
"""

from __future__ import annotations

import gc
import json
import sys
import time
from pathlib import Path

from repro import obs
from repro.core.compile import reset_compile_cache
from repro.core.ftbar import schedule_ftbar
from repro.workloads.random_dag import RandomWorkloadConfig, generate_problem

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"

#: The pinned ``repro bench --smoke`` N=40 problem.
_SMOKE = RandomWorkloadConfig(
    operations=40, ccr=1.0, processors=4, npf=1, seed=2003
)

#: Enforced ceiling on the projected no-op overhead of one run.
OVERHEAD_BOUND = 0.02

#: Instrumented sites beyond the two per-step ones: ``ftbar.run`` /
#: ``ftbar.compile`` / ``kernel.materialize`` spans, the ``tracer()``
#: lookups, the post-run metrics publication guard.
_PER_RUN_SITES = 8


def measure_noop_site(iterations: int = 200_000, repeats: int = 5) -> float:
    """Best-of per-site cost of the disabled-tracing hot-path idiom."""
    tracer = obs.tracer()
    assert tracer is None, "overhead bench must run with tracing off"
    noop = obs.NOOP_SPAN
    best = float("inf")
    for _ in range(repeats):
        gc.collect()
        started = time.perf_counter()
        for _ in range(iterations):
            with (tracer.span("kernel.sweep") if tracer is not None else noop):
                pass
        best = min(best, time.perf_counter() - started)
    return best / iterations


def measure_run(problem, repeats: int = 5, tracer=None) -> tuple[float, object]:
    """Best-of wall time of one scheduling run (optionally traced)."""
    result = schedule_ftbar(problem)  # warmup, untimed
    best = float("inf")
    for _ in range(repeats):
        gc.collect()
        if tracer is not None:
            started = time.perf_counter()
            with obs.scoped(tracer):
                result = schedule_ftbar(problem)
            best = min(best, time.perf_counter() - started)
        else:
            started = time.perf_counter()
            result = schedule_ftbar(problem)
            best = min(best, time.perf_counter() - started)
    return best, result


def run_overhead_bench(repeats: int = 5) -> dict:
    """Measure, project, enforce; return the ``obs_overhead`` payload."""
    problem = generate_problem(_SMOKE)
    reset_compile_cache()
    site_s = measure_noop_site()
    untraced_s, result = measure_run(problem, repeats)
    sites = result.stats.steps * 2 + _PER_RUN_SITES
    projected_s = sites * site_s
    overhead = projected_s / untraced_s
    exporter = obs.ListExporter()
    traced_s, traced = measure_run(
        problem, repeats, tracer=obs.Tracer(exporter, meta={"bench": "obs"})
    )
    assert result.makespan == traced.makespan, "tracing changed the schedule"
    payload = {
        "noop_site_ns": round(site_s * 1e9, 2),
        "sites_per_run": sites,
        "run_untraced_s": round(untraced_s, 6),
        "noop_overhead_projected": round(overhead, 6),
        "bound": OVERHEAD_BOUND,
        # Informational: the cost of actually *enabling* tracing (an
        # in-memory exporter), which the < 2 % bound does not govern.
        "run_traced_s": round(traced_s, 6),
        "traced_ratio": round(traced_s / untraced_s, 4),
        "operations": _SMOKE.operations,
        "steps": result.stats.steps,
    }
    assert overhead < OVERHEAD_BOUND, (
        f"no-op telemetry overhead {overhead:.4%} exceeds the "
        f"{OVERHEAD_BOUND:.0%} bound: {payload}"
    )
    return payload


def bench_obs_noop_overhead(benchmark):
    """pytest-benchmark entry: time the untraced run, enforce the bound."""
    problem = generate_problem(_SMOKE)
    result = benchmark(schedule_ftbar, problem)
    assert result.makespan > 0
    run_overhead_bench(repeats=3)


def main(argv: list[str]) -> int:
    repeats = 5
    if "--quick" in argv:
        repeats = 2
    payload = (
        json.loads(_RESULT_PATH.read_text()) if _RESULT_PATH.exists() else {}
    )
    payload["obs_overhead"] = run_overhead_bench(repeats)
    _RESULT_PATH.write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n"
    )
    section = payload["obs_overhead"]
    print(json.dumps(section, indent=1, sort_keys=True))
    print(
        f"\nno-op telemetry: {section['noop_site_ns']:.0f} ns/site x "
        f"{section['sites_per_run']} sites = "
        f"{section['noop_overhead_projected']:.4%} of a "
        f"{section['run_untraced_s']*1e3:.1f} ms run "
        f"(bound {section['bound']:.0%}) — "
        f"traced run ratio {section['traced_ratio']:.2f}x",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
