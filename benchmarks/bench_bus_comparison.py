"""E9 — point-to-point links versus a shared bus (section 4.4).

"This solution is appropriate to an architecture where the
communication means are point-to-point links, which allow parallel
communications to take place.  For multi-point links, the overheads
introduced by the replication of comms may be too high because of
their serialization on a single link."

The bench schedules the same workloads on a fully connected
point-to-point architecture and on a single shared bus with identical
transfer durations; the fault-tolerant schedule is consistently longer
on the bus, and at high CCR its relative overhead overtakes the
point-to-point one.

The timed body is one FTBAR run on the bus variant.
"""

from benchmarks.conftest import graphs_per_point
from repro.analysis.experiments import _bus_variant, run_bus_comparison
from repro.analysis.reporting import format_bus_comparison
from repro.core.ftbar import schedule_ftbar
from repro.workloads.random_dag import RandomWorkloadConfig, generate_problem


def bench_bus_comparison(benchmark, record_result):
    """Regenerate the E9 table and time FTBAR on a bus architecture."""
    bus_problem = _bus_variant(
        generate_problem(
            RandomWorkloadConfig(
                operations=20, ccr=2.0, processors=4, npf=1, seed=2003
            )
        )
    )
    benchmark(schedule_ftbar, bus_problem)

    points = run_bus_comparison(
        ccrs=(0.5, 1.0, 2.0, 5.0),
        operations=20,
        processors=4,
        graphs_per_point=graphs_per_point(5, 20),
        seed=2003,
    )
    record_result(
        "bus_comparison",
        "E9 — point-to-point vs shared bus (Npf=1, P=4, N=20)\n"
        + format_bus_comparison(points),
    )
    # §4.4's claim: the serialized bus makes the FT schedule longer, at
    # every CCR.  (Only the absolute lengths are asserted: the *relative*
    # overhead divides by the bus's own non-FT baseline, which is itself
    # serialized, so the percentage comparison is statistically noisy.)
    for point in points:
        assert point.bus_makespan >= point.p2p_makespan - 1e-6, point
