"""Render the README performance table from ``BENCH_runtime.json``.

The repository's perf trajectory accumulates in ``BENCH_runtime.json``
(each bench merges its own keys); this script turns the recorded
sections into the Markdown tables the README's "Performance" section
embeds, so the published numbers are always regenerable from the
recorded data rather than hand-copied::

    PYTHONPATH=src python benchmarks/render_perf_table.py [path]

Covered sections, one table per engine-trajectory PR:

* ``ftbar_incremental_vs_legacy`` — PR 1's incremental engine vs seed;
* ``ftbar_compiled_vs_incremental`` — this PR's compiled kernel vs the
  incremental engine (and cumulatively vs seed);
* ``reliability_certificates`` — PR 3/4's batched scenario engine;
* ``reliability_sampled_vs_exhaustive`` — PR 8's adaptive sampled
  certification (bounds + confidence intervals past the enumeration
  cap, pinned against exhaustive truth on the small corpus);
* ``campaign_compile_reuse`` — PR 6's shared-compilation memo hits
  across a npf/npl/ccr variant grid;
* ``campaign_jobs1_vs_cpu`` — PR 2's worker pool;
* ``campaign_backend_scaling`` — PR 9's execution backends (serial
  reference vs the work-stealing directory backend at 1/2/4 workers,
  merged stores verified byte-identical before timing);
* ``phase_breakdown`` — PR 7's traced per-phase split of the smoke
  problems (where a scheduling run's wall time actually goes);
* ``obs_overhead`` — PR 7's pinned no-op cost of disabled telemetry.

Entries that are missing fields (interrupted bench, older schema,
partial sweep) are skipped with a visible note instead of crashing.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

_DEFAULT = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:,.1f} ms"


def _complete_rows(section: dict, required: tuple[str, ...]) -> tuple[list, list]:
    """Rows of a sweep section split into (renderable, skipped-Ns).

    A bench that was interrupted, ran on an older schema or merged a
    partial sweep leaves entries without some fields; those rows are
    skipped — with a visible note — instead of crashing the render.
    """
    rows, skipped = [], []
    for n, point in sorted(section.items(), key=lambda kv: int(kv[0])):
        if isinstance(point, dict) and all(key in point for key in required):
            rows.append((n, point))
        else:
            skipped.append(n)
    return rows, skipped


def _skip_note(skipped: list) -> list[str]:
    if not skipped:
        return []
    return [
        "",
        f"*(N = {', '.join(skipped)} skipped: entries incomplete in "
        "`BENCH_runtime.json` — rerun `benchmarks/bench_runtime.py --full`)*",
    ]


def render_incremental(section: dict) -> list[str]:
    rows, skipped = _complete_rows(
        section,
        (
            "legacy_s", "incremental_s", "speedup",
            "incremental_pressure_evaluations",
            "legacy_pressure_evaluations",
        ),
    )
    lines = [
        "### PR 1 — incremental engine vs seed full recompute",
        "",
        "| N | seed engine | incremental | speedup | plans computed (vs seed) |",
        "|---:|---:|---:|---:|---:|",
    ]
    for n, point in rows:
        lines.append(
            f"| {n} | {_fmt_ms(point['legacy_s'])} "
            f"| {_fmt_ms(point['incremental_s'])} "
            f"| {point['speedup']:.1f}x "
            f"| {point['incremental_pressure_evaluations']} vs "
            f"{point['legacy_pressure_evaluations']} |"
        )
    return lines + _skip_note(skipped) if rows else []


def render_compiled(section: dict) -> list[str]:
    rows, skipped = _complete_rows(
        section,
        ("incremental_s", "compiled_s", "speedup", "speedup_vs_seed"),
    )
    lines = [
        "### PR 5/6 — compiled kernel vs incremental engine",
        "",
        "| N | incremental | compiled kernel | speedup | vs seed "
        "| symmetry-pruned |",
        "|---:|---:|---:|---:|---:|---:|",
    ]
    for n, point in rows:
        pruned = point.get("symmetry_pruned")
        lines.append(
            f"| {n} | {_fmt_ms(point['incremental_s'])} "
            f"| {_fmt_ms(point['compiled_s'])} "
            f"| {point['speedup']:.1f}x "
            f"| {point['speedup_vs_seed']:.1f}x "
            f"| {'-' if pruned is None else pruned} |"
        )
    return lines + _skip_note(skipped) if rows else []


def render_compile_reuse(section: dict) -> list[str]:
    cache = section.get("compile_cache")
    if not isinstance(cache, dict) or "jobs" not in section:
        return []
    grid = section.get("grid", {})
    axes = ", ".join(
        f"{axis}={values}" for axis, values in sorted(grid.items())
    )
    return [
        "### PR 6 — shared compilation across a campaign grid",
        "",
        f"One campaign grid ({axes}) of {section['jobs']} variant jobs over "
        "a single workload: the content-addressed compile memos build the "
        f"core tables once ({cache.get('core_misses', '?')} miss) and serve "
        f"every other variant from cache — {cache.get('core_hits', '?')} "
        f"core hits, {cache.get('variant_hits', '?')} variant hits / "
        f"{cache.get('variant_misses', '?')} misses.",
    ]


def render_reliability(label: str, section: dict) -> list[str]:
    lines = [
        f"### PR 3/4 — batched scenario engine ({label})",
        "",
        "| P | per-scenario | batched | speedup |",
        "|---:|---:|---:|---:|",
    ]
    for processors, point in sorted(
        ((k, v) for k, v in section.items() if isinstance(v, dict)),
        key=lambda kv: int(kv[0]),
    ):
        if "batched_s" not in point:
            continue
        lines.append(
            f"| {processors} | {_fmt_ms(point['legacy_s'])} "
            f"| {_fmt_ms(point['batched_s'])} "
            f"| {point['speedup']:.1f}x |"
        )
    return lines


def render_sampled(section: dict) -> list[str]:
    lines = ["### PR 8 — sampled certification vs exhaustive enumeration", ""]
    p32 = section.get("p32")
    if isinstance(p32, dict) and "reliability_ci" in p32:
        lo, hi = p32["reliability_ci"]
        lines += [
            f"At P = {p32['processors']}, Npf = {p32['npf']} the "
            f"exhaustive reliability sum is "
            f"{p32['exhaustive_subsets']:,} subsets; the adaptive "
            f"certifier answers in "
            f"{p32['certificate_s'] + p32['reliability_s']:.2f} s — "
            f"certificate **{p32['certificate_verdict']}** "
            f"(large levels by closed-form bounds; forced sampling: "
            f"ci [{p32['sampled_certificate_ci'][0]:.4f}, "
            f"{p32['sampled_certificate_ci'][1]:.4f}] from "
            f"{p32['sampled_certificate_samples']} draws), reliability "
            f"{p32['reliability']:.6f} in [{lo:.6f}, {hi:.6f}] at "
            f"{p32['confidence']:.0%} confidence from "
            f"{p32['reliability_samples']} draws "
            f"({p32['evaluated_subsets']} subsets evaluated).",
            "",
        ]
    agreement = [
        entry
        for entry in section.get("agreement", ())
        if isinstance(entry, dict) and "sampled_ci" in entry
    ]
    if agreement:
        lines += [
            "| P | seed | exhaustive | sampled | reliability | sampled ci |"
            " agree |",
            "|---:|---:|:--|:--|---:|:--|:--|",
        ]
        for entry in agreement:
            lo, hi = entry["sampled_ci"]
            ok = (
                entry["verdicts_agree"]
                and entry["reliability_in_ci"]
                and entry["levels_in_ci"]
            )
            lines.append(
                f"| {entry['processors']} | {entry['seed']} "
                f"| {entry['exact_verdict']} | {entry['sampled_verdict']} "
                f"| {entry['exact_reliability']:.6f} "
                f"| [{lo:.6f}, {hi:.6f}] | {'yes' if ok else 'NO'} |"
            )
    if len(lines) <= 2:
        return []
    return lines


def render_campaign(section: dict) -> list[str]:
    lines = ["### PR 2 — campaign worker pool", ""]
    if section.get("skipped"):
        lines.append(
            f"Skipped on this host: "
            f"{section.get('reason', 'no reason recorded')}"
        )
        return lines
    if not all(
        key in section
        for key in ("graphs", "operations", "jobs1_s", "jobs_cpu_s",
                    "workers", "speedup")
    ):
        lines.append(
            "*(entry incomplete in `BENCH_runtime.json` — rerun "
            "`benchmarks/bench_runtime.py`)*"
        )
        return lines
    suffix = " (oversubscribed)" if section.get("oversubscribed") else ""
    lines += [
        "| jobs | graphs x N | wall clock | speedup |",
        "|---:|:--|---:|---:|",
        f"| 1 | {section['graphs']} x N={section['operations']} "
        f"| {_fmt_ms(section['jobs1_s'])} | 1.0x |",
        f"| {section['workers']}{suffix} "
        f"| {section['graphs']} x N={section['operations']} "
        f"| {_fmt_ms(section['jobs_cpu_s'])} "
        f"| {section['speedup']:.1f}x |",
    ]
    return lines


def render_backend_scaling(section: dict) -> list[str]:
    lines = ["### PR 9 — execution-backend scaling", ""]
    host = ""
    if "cpu_count" in section:
        affinity = section.get("cpu_affinity")
        host = (
            f" (host: {section['cpu_count']} CPUs"
            + (f", affinity {affinity}" if affinity is not None else "")
            + ")"
        )
    if section.get("skipped"):
        lines.append(
            f"Skipped on this host{host}: "
            f"{section.get('reason', 'no reason recorded')}"
        )
        return lines
    sweep = section.get("sweep")
    if not isinstance(sweep, dict) or "serial_s" not in section:
        lines.append(
            "*(entry incomplete in `BENCH_runtime.json` — rerun "
            "`benchmarks/bench_runtime.py`)*"
        )
        return lines
    suffix = " — oversubscribed" if section.get("oversubscribed") else ""
    lines += [
        f"Campaign of {section.get('graphs', '?')} x "
        f"N={section.get('operations', '?')} on the "
        f"`{section.get('backend', '?')}` backend{host}{suffix}; every leg's "
        "canonically merged store verified byte-identical to the serial "
        "reference.",
        "",
        "| backend | workers | wall clock | speedup vs serial |",
        "|:--|---:|---:|---:|",
        f"| serial | 1 | {_fmt_ms(section['serial_s'])} | 1.0x |",
    ]
    for workers, point in sorted(sweep.items(), key=lambda kv: int(kv[0])):
        if not isinstance(point, dict) or "elapsed_s" not in point:
            continue
        lines.append(
            f"| {section.get('backend', '?')} | {workers} "
            f"| {_fmt_ms(point['elapsed_s'])} "
            f"| {point['speedup_vs_serial']:.1f}x |"
        )
    return lines


def render_phase_breakdown(section: dict) -> list[str]:
    rows, skipped = [], []
    for label, point in sorted(section.items()):
        if isinstance(point, dict) and {"total_s", "phases"} <= set(point):
            rows.append((label, point))
        else:
            skipped.append(label)
    if not rows:
        return []
    lines = [
        "### PR 7 — per-phase breakdown of a traced scheduling run",
        "",
        "| problem | phase | calls | wall time | share |",
        "|:--|:--|---:|---:|---:|",
    ]
    for label, point in rows:
        name = f"{label} ({_fmt_ms(point['total_s'])} total)"
        for phase in sorted(point["phases"], key=lambda p: -p["total_s"]):
            lines.append(
                f"| {name} | `{phase['name']}` | {phase['count']} "
                f"| {_fmt_ms(phase['total_s'])} "
                f"| {phase['share']*100:.1f}% |"
            )
            name = ""
    if skipped:
        lines += [
            "",
            f"*({', '.join(skipped)} skipped: entries incomplete in "
            "`BENCH_runtime.json` — rerun `benchmarks/bench_runtime.py`)*",
        ]
    return lines


def render_obs_overhead(section: dict) -> list[str]:
    required = (
        "noop_site_ns", "sites_per_run", "run_untraced_s",
        "noop_overhead_projected", "bound",
    )
    if not all(key in section for key in required):
        return []
    lines = [
        "### PR 7 — telemetry overhead while disabled",
        "",
        f"One disabled instrumentation site costs "
        f"{section['noop_site_ns']:.0f} ns; the "
        f"{section['sites_per_run']} sites of a smoke scheduling run "
        f"project to {section['noop_overhead_projected']:.2%} of its "
        f"{_fmt_ms(section['run_untraced_s'])} wall time — enforced "
        f"below {section['bound']:.0%} by CI's obs-smoke job.",
    ]
    if "traced_ratio" in section:
        lines.append(
            f"With tracing *enabled* (in-memory exporter) the same run "
            f"costs {section['traced_ratio']:.2f}x."
        )
    return lines


def render(payload: dict) -> str:
    blocks: list[list[str]] = []
    if "ftbar_incremental_vs_legacy" in payload:
        blocks.append(render_incremental(payload["ftbar_incremental_vs_legacy"]))
    if "ftbar_compiled_vs_incremental" in payload:
        blocks.append(render_compiled(payload["ftbar_compiled_vs_incremental"]))
    for key, label in (
        (
            "reliability_certificate_batched_vs_scenario",
            "processor certificates",
        ),
        (
            "reliability_certificate_combined_npf_npl",
            "combined npf=1 + npl=1 certificates",
        ),
    ):
        if key in payload:
            rendered = render_reliability(label, payload[key])
            if len(rendered) > 4:
                blocks.append(rendered)
    if "reliability_sampled_vs_exhaustive" in payload:
        blocks.append(
            render_sampled(payload["reliability_sampled_vs_exhaustive"])
        )
    if "campaign_compile_reuse" in payload:
        blocks.append(render_compile_reuse(payload["campaign_compile_reuse"]))
    if "campaign_jobs1_vs_cpu" in payload:
        blocks.append(render_campaign(payload["campaign_jobs1_vs_cpu"]))
    if "campaign_backend_scaling" in payload:
        blocks.append(
            render_backend_scaling(payload["campaign_backend_scaling"])
        )
    if "phase_breakdown" in payload:
        blocks.append(render_phase_breakdown(payload["phase_breakdown"]))
    if "obs_overhead" in payload:
        blocks.append(render_obs_overhead(payload["obs_overhead"]))
    return "\n\n".join("\n".join(block) for block in blocks if block) + "\n"


def main(argv: list[str]) -> int:
    path = Path(argv[0]) if argv else _DEFAULT
    print(render(json.loads(path.read_text())), end="")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
