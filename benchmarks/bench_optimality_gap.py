"""E10 — FTBAR's distance to the best replica assignment.

"Finding an algorithm that gives the best fault-tolerant schedule
w.r.t. the execution times is a well-known NP-hard problem.  Instead,
we provide a heuristic that gives one scheduling, possibly not the
best."  On tiny instances the assignment space *can* be enumerated;
this bench quantifies how far the heuristic typically lands from the
best ``Npf + 1``-processor assignment (it can even do better, thanks to
LIP duplication adding extra replicas the enumeration does not try).

The timed body is one exhaustive search over a 5-operation instance.
"""

from benchmarks.conftest import graphs_per_point
from repro.analysis.experiments import run_optimality_gap
from repro.analysis.reporting import format_optimality_gap
from repro.baselines.exhaustive import schedule_exhaustive
from repro.workloads.random_dag import RandomWorkloadConfig, generate_problem

_PROBLEM = generate_problem(
    RandomWorkloadConfig(operations=5, ccr=1.0, processors=3, npf=1, seed=2003)
)


def bench_optimality_gap(benchmark, record_result):
    """Time one exhaustive search; record the gap table."""
    result = benchmark(schedule_exhaustive, _PROBLEM)
    assert result.exhaustive

    points = run_optimality_gap(
        operations=6,
        ccr=1.0,
        processors=3,
        instances=graphs_per_point(5, 15),
        seed=2003,
    )
    record_result(
        "optimality_gap",
        "E10 — FTBAR vs exhaustive best assignment "
        "(Npf=1, P=3, N=6, CCR=1)\n" + format_optimality_gap(points),
    )
    gaps = [p.gap_percent for p in points]
    assert sum(gaps) / len(gaps) < 25.0, "heuristic should be near-optimal"
