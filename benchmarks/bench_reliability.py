"""Reliability-certification throughput: batched vs per-scenario engine.

The section-5 guarantee is machine-checked by replaying every crash
subset; the batched engine (compile-once arrays, dirty-cone
re-decision, footprint-equivalence pruning) must give *bit-identical*
verdicts to the per-scenario executor while replaying far fewer (and
far cheaper) events.  This bench times ``fault_tolerance_certificate``
at t = 0 with both engines over P ∈ {4, 6, 8} processors (Npf = 1,
N = 20 operations, CCR = 1, seed 2003), records scenarios/sec and the
event-decision counts of both engines in ``BENCH_runtime.json``
(merging with the sweeps written by ``bench_runtime.py``), and asserts
the verdicts agree.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_reliability.py [--smoke]

``--smoke`` runs a reduced configuration (P = 4 only), checks the
engines agree, and does not touch ``BENCH_runtime.json`` — the CI
guard that keeps the batch path exercised.
"""

import gc
import json
import sys
import time
from pathlib import Path

try:
    from benchmarks.conftest import full_scale
except ModuleNotFoundError:  # invoked as `python benchmarks/bench_reliability.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.conftest import full_scale
from repro.analysis.reliability import fault_tolerance_certificate
from repro.core.ftbar import schedule_ftbar
from repro.simulation.batch import BatchScenarioEngine
from repro.simulation.executor import ScheduleSimulator
from repro.workloads.random_dag import RandomWorkloadConfig, generate_problem

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"
_OPERATIONS = 20
_NPF = 1
_NPL = 1
_SEED = 2003


def _certificate_problem(processors: int, npl: int = 0):
    problem = generate_problem(
        RandomWorkloadConfig(
            operations=_OPERATIONS,
            ccr=1.0,
            processors=processors,
            npf=_NPF,
            seed=_SEED,
        )
    )
    problem.npl = npl
    result = schedule_ftbar(problem)
    return result.schedule, result.expanded_algorithm


def _levels(certificate) -> list[tuple[int, int, int, int]]:
    return [
        (level.failures, level.link_failures,
         level.masked_subsets, level.total_subsets)
        for level in certificate.levels
    ]


def bench_certificate(processors: int, repeats: int = 5) -> dict:
    """Time both engines on one schedule; verify identical verdicts.

    Each repeat rebuilds its engine, so the batched time honestly
    includes the compile-once cost the engine amortizes per schedule.
    The work counters (scenarios replayed, event decisions) come from
    one dedicated fresh run per engine.
    """
    schedule, algorithm = _certificate_problem(processors)

    legacy_s = float("inf")
    for _ in range(repeats):
        gc.collect()
        started = time.perf_counter()
        legacy = fault_tolerance_certificate(schedule, algorithm, batched=False)
        legacy_s = min(legacy_s, time.perf_counter() - started)
    simulator = ScheduleSimulator(schedule, algorithm)
    fault_tolerance_certificate(
        schedule, algorithm, batched=False, engine=simulator
    )

    batched_s = float("inf")
    for _ in range(repeats):
        gc.collect()
        started = time.perf_counter()
        batched = fault_tolerance_certificate(schedule, algorithm)
        batched_s = min(batched_s, time.perf_counter() - started)
    engine = BatchScenarioEngine(schedule, algorithm)
    fault_tolerance_certificate(schedule, algorithm, engine=engine)

    assert _levels(legacy) == _levels(batched), (
        f"engines diverge at P={processors}"
    )
    assert legacy.breaking_subsets == batched.breaking_subsets
    stats = engine.stats
    return {
        "legacy_s": legacy_s,
        "batched_s": batched_s,
        "speedup": legacy_s / batched_s,
        "legacy_scenarios": simulator.runs,
        "legacy_scenarios_per_s": simulator.runs / legacy_s,
        "batched_scenarios": stats.scenarios,
        "batched_scenarios_per_s": stats.scenarios / batched_s,
        "batched_simulated": stats.simulated,
        "batched_pruned_nominal": stats.pruned_nominal,
        "batched_memo_hits": stats.memo_hits,
        "legacy_decisions": simulator.decisions,
        "batched_decisions": stats.decisions,
        "batched_copied": stats.copied,
        "certified": batched.certified,
    }


def bench_combined_certificate(processors: int, repeats: int = 5) -> dict:
    """Combined processor+link certification on an ``npl = 1`` schedule.

    Enumerates every (≤ Npf crash, ≤ Npl link) combined subset through
    both engines on the fully connected topology — the setting where
    route replication plus relay avoidance makes the joint verdict a
    guarantee — and records the timings next to the processor-only
    sweep.
    """
    schedule, algorithm = _certificate_problem(processors, npl=_NPL)

    legacy_s = float("inf")
    for _ in range(repeats):
        gc.collect()
        started = time.perf_counter()
        legacy = fault_tolerance_certificate(schedule, algorithm, batched=False)
        legacy_s = min(legacy_s, time.perf_counter() - started)

    batched_s = float("inf")
    for _ in range(repeats):
        gc.collect()
        started = time.perf_counter()
        batched = fault_tolerance_certificate(schedule, algorithm)
        batched_s = min(batched_s, time.perf_counter() - started)
    engine = BatchScenarioEngine(schedule, algorithm)
    fault_tolerance_certificate(schedule, algorithm, engine=engine)

    assert _levels(legacy) == _levels(batched), (
        f"combined engines diverge at P={processors}"
    )
    assert legacy.breaking_combined == batched.breaking_combined
    stats = engine.stats
    return {
        "npl": _NPL,
        "legacy_s": legacy_s,
        "batched_s": batched_s,
        "speedup": legacy_s / batched_s,
        "batched_scenarios": stats.scenarios,
        "batched_simulated": stats.simulated,
        "batched_decisions": stats.decisions,
        "certified": batched.certified,
    }


def run_reliability_sweep(
    processor_counts=(4, 6, 8), repeats: int = 5
) -> dict:
    """The recorded table: one certificate comparison per P."""
    sweep = {
        "operations": _OPERATIONS,
        "npf": _NPF,
        "seed": _SEED,
        "crash_times": 1,
    }
    for processors in processor_counts:
        sweep[str(processors)] = bench_certificate(processors, repeats)
    return sweep


def run_combined_sweep(processor_counts=(4, 6), repeats: int = 5) -> dict:
    """Combined processor+link certificates, one comparison per P."""
    sweep = {
        "operations": _OPERATIONS,
        "npf": _NPF,
        "npl": _NPL,
        "seed": _SEED,
        "crash_times": 1,
    }
    for processors in processor_counts:
        sweep[str(processors)] = bench_combined_certificate(processors, repeats)
    return sweep


def write_bench_json(repeats: int = 5) -> dict:
    """Merge the reliability sweeps into ``BENCH_runtime.json``."""
    payload = (
        json.loads(_RESULT_PATH.read_text()) if _RESULT_PATH.exists() else {}
    )
    payload["reliability_certificate_batched_vs_scenario"] = (
        run_reliability_sweep(repeats=repeats)
    )
    payload["reliability_certificate_combined_npf_npl"] = (
        run_combined_sweep(repeats=repeats)
    )
    _RESULT_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return payload


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv and not full_scale()
    if smoke:
        sweep = run_reliability_sweep(processor_counts=(4,), repeats=2)
        combined = run_combined_sweep(processor_counts=(4,), repeats=2)
    else:
        payload = write_bench_json()
        sweep = payload["reliability_certificate_batched_vs_scenario"]
        combined = payload["reliability_certificate_combined_npf_npl"]
    for key in sorted((k for k in sweep if k.isdigit()), key=int):
        point = sweep[key]
        print(
            f"P={key}: certificate {point['legacy_s']*1e3:8.2f} ms -> "
            f"{point['batched_s']*1e3:8.2f} ms  ({point['speedup']:.2f}x, "
            f"{point['legacy_scenarios_per_s']:.0f} -> "
            f"{point['batched_scenarios_per_s']:.0f} scenarios/s, "
            f"{point['legacy_decisions']} -> {point['batched_decisions']} "
            f"event decisions)"
        )
    for key in sorted((k for k in combined if k.isdigit()), key=int):
        point = combined[key]
        print(
            f"P={key} npl={point['npl']}: combined certificate "
            f"{point['legacy_s']*1e3:8.2f} ms -> "
            f"{point['batched_s']*1e3:8.2f} ms  ({point['speedup']:.2f}x, "
            f"{point['batched_scenarios']} combined scenario verdicts, "
            f"certified={point['certified']})"
        )
    if smoke:
        print("smoke ok: batched and per-scenario certificates bit-identical")
    else:
        print(f"recorded in {_RESULT_PATH}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
