"""Reliability-certification throughput: batched vs per-scenario engine.

The section-5 guarantee is machine-checked by replaying every crash
subset; the batched engine (compile-once arrays, dirty-cone
re-decision, footprint-equivalence pruning) must give *bit-identical*
verdicts to the per-scenario executor while replaying far fewer (and
far cheaper) events.  This bench times ``fault_tolerance_certificate``
at t = 0 with both engines over P ∈ {4, 6, 8} processors (Npf = 1,
N = 20 operations, CCR = 1, seed 2003), records scenarios/sec and the
event-decision counts of both engines in ``BENCH_runtime.json``
(merging with the sweeps written by ``bench_runtime.py``), and asserts
the verdicts agree.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_reliability.py [--smoke]

``--smoke`` runs a reduced configuration (P = 4 only), checks the
engines agree, and does not touch ``BENCH_runtime.json`` — the CI
guard that keeps the batch path exercised.
"""

import gc
import json
import sys
import time
from pathlib import Path

try:
    from benchmarks.conftest import full_scale
except ModuleNotFoundError:  # invoked as `python benchmarks/bench_reliability.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.conftest import full_scale
from repro.analysis.reliability import (
    fault_tolerance_certificate,
    schedule_reliability,
)
from repro.core.ftbar import schedule_ftbar
from repro.simulation.batch import BatchScenarioEngine
from repro.simulation.executor import ScheduleSimulator
from repro.workloads.random_dag import RandomWorkloadConfig, generate_problem

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"
_OPERATIONS = 20
_NPF = 1
_NPL = 1
_SEED = 2003


def _certificate_problem(processors: int, npl: int = 0):
    problem = generate_problem(
        RandomWorkloadConfig(
            operations=_OPERATIONS,
            ccr=1.0,
            processors=processors,
            npf=_NPF,
            seed=_SEED,
        )
    )
    problem.npl = npl
    result = schedule_ftbar(problem)
    return result.schedule, result.expanded_algorithm


def _levels(certificate) -> list[tuple[int, int, int, int]]:
    return [
        (level.failures, level.link_failures,
         level.masked_subsets, level.total_subsets)
        for level in certificate.levels
    ]


def bench_certificate(processors: int, repeats: int = 5) -> dict:
    """Time both engines on one schedule; verify identical verdicts.

    Each repeat rebuilds its engine, so the batched time honestly
    includes the compile-once cost the engine amortizes per schedule.
    The work counters (scenarios replayed, event decisions) come from
    one dedicated fresh run per engine.
    """
    schedule, algorithm = _certificate_problem(processors)

    legacy_s = float("inf")
    for _ in range(repeats):
        gc.collect()
        started = time.perf_counter()
        legacy = fault_tolerance_certificate(schedule, algorithm, batched=False)
        legacy_s = min(legacy_s, time.perf_counter() - started)
    simulator = ScheduleSimulator(schedule, algorithm)
    fault_tolerance_certificate(
        schedule, algorithm, batched=False, engine=simulator
    )

    batched_s = float("inf")
    for _ in range(repeats):
        gc.collect()
        started = time.perf_counter()
        batched = fault_tolerance_certificate(schedule, algorithm)
        batched_s = min(batched_s, time.perf_counter() - started)
    engine = BatchScenarioEngine(schedule, algorithm)
    fault_tolerance_certificate(schedule, algorithm, engine=engine)

    assert _levels(legacy) == _levels(batched), (
        f"engines diverge at P={processors}"
    )
    assert legacy.breaking_subsets == batched.breaking_subsets
    stats = engine.stats
    return {
        "legacy_s": legacy_s,
        "batched_s": batched_s,
        "speedup": legacy_s / batched_s,
        "legacy_scenarios": simulator.runs,
        "legacy_scenarios_per_s": simulator.runs / legacy_s,
        "batched_scenarios": stats.scenarios,
        "batched_scenarios_per_s": stats.scenarios / batched_s,
        "batched_simulated": stats.simulated,
        "batched_pruned_nominal": stats.pruned_nominal,
        "batched_memo_hits": stats.memo_hits,
        "legacy_decisions": simulator.decisions,
        "batched_decisions": stats.decisions,
        "batched_copied": stats.copied,
        "certified": batched.certified,
    }


def bench_combined_certificate(processors: int, repeats: int = 5) -> dict:
    """Combined processor+link certification on an ``npl = 1`` schedule.

    Enumerates every (≤ Npf crash, ≤ Npl link) combined subset through
    both engines on the fully connected topology — the setting where
    route replication plus relay avoidance makes the joint verdict a
    guarantee — and records the timings next to the processor-only
    sweep.
    """
    schedule, algorithm = _certificate_problem(processors, npl=_NPL)

    legacy_s = float("inf")
    for _ in range(repeats):
        gc.collect()
        started = time.perf_counter()
        legacy = fault_tolerance_certificate(schedule, algorithm, batched=False)
        legacy_s = min(legacy_s, time.perf_counter() - started)

    batched_s = float("inf")
    for _ in range(repeats):
        gc.collect()
        started = time.perf_counter()
        batched = fault_tolerance_certificate(schedule, algorithm)
        batched_s = min(batched_s, time.perf_counter() - started)
    engine = BatchScenarioEngine(schedule, algorithm)
    fault_tolerance_certificate(schedule, algorithm, engine=engine)

    assert _levels(legacy) == _levels(batched), (
        f"combined engines diverge at P={processors}"
    )
    assert legacy.breaking_combined == batched.breaking_combined
    stats = engine.stats
    return {
        "npl": _NPL,
        "legacy_s": legacy_s,
        "batched_s": batched_s,
        "speedup": legacy_s / batched_s,
        "batched_scenarios": stats.scenarios,
        "batched_simulated": stats.simulated,
        "batched_decisions": stats.decisions,
        "certified": batched.certified,
    }


def bench_sampled_certificate(
    processors: int = 32, npf: int = 2, budget: int = 4000
) -> dict:
    """A verdict-with-error-bars where exhaustive enumeration cannot go.

    One ``P = 32, Npf = 2`` schedule: the adaptive certificate resolves
    the small levels exactly, projects/samples the large ones (with a
    confidence interval), and the sampled reliability estimate covers a
    ``2^32``-subset exhaustive space — the ~10^9-enumeration the ROADMAP
    names — in seconds.
    """
    problem = generate_problem(
        RandomWorkloadConfig(
            operations=_OPERATIONS,
            ccr=1.0,
            processors=processors,
            npf=npf,
            seed=_SEED,
        )
    )
    result = schedule_ftbar(problem)
    schedule, algorithm = result.schedule, result.expanded_algorithm
    engine = BatchScenarioEngine(schedule, algorithm)

    gc.collect()
    started = time.perf_counter()
    certificate = fault_tolerance_certificate(
        schedule,
        algorithm,
        max_failures=npf + 2,  # push one level past the projection regime
        engine=engine,
        budget=budget,
    )
    certificate_s = time.perf_counter() - started

    # Auto resolves every large level by closed-form bounds here (no
    # draws at all); force the sampler for the error-bar demonstration.
    started = time.perf_counter()
    sampled_cert = fault_tolerance_certificate(
        schedule,
        algorithm,
        engine=engine,
        method="sampled",
        budget=budget,
    )
    sampled_cert_s = time.perf_counter() - started

    started = time.perf_counter()
    report = schedule_reliability(
        schedule,
        algorithm,
        {p: 0.01 for p in schedule.processor_names()},
        engine=engine,
        budget=budget,
    )
    reliability_s = time.perf_counter() - started

    assert report.method == "sampled" and report.ci is not None
    assert report.exhaustive_subsets == 2 ** processors
    assert sampled_cert.ci is not None and sampled_cert.samples > 0
    return {
        "processors": processors,
        "operations": _OPERATIONS,
        "npf": npf,
        "seed": _SEED,
        "budget": budget,
        "certificate_s": certificate_s,
        "certificate_verdict": certificate.verdict,
        "certificate_method": certificate.method,
        "certificate_samples": certificate.samples,
        "certificate_ci": (
            list(certificate.ci) if certificate.ci is not None else None
        ),
        "level_methods": {
            str(level.failures): level.method for level in certificate.levels
        },
        "level_populations": {
            str(level.failures): level.population or level.total_subsets
            for level in certificate.levels
        },
        "sampled_certificate_s": sampled_cert_s,
        "sampled_certificate_verdict": sampled_cert.verdict,
        "sampled_certificate_samples": sampled_cert.samples,
        "sampled_certificate_ci": list(sampled_cert.ci),
        "reliability_s": reliability_s,
        "reliability": report.reliability,
        "reliability_ci": list(report.ci),
        "confidence": report.confidence,
        "reliability_samples": report.samples,
        "evaluated_subsets": report.evaluated_subsets,
        "exhaustive_subsets": report.exhaustive_subsets,
        "guaranteed_lower_bound": report.guaranteed_lower_bound,
    }


def bench_agreement(processors: int, seed: int) -> dict:
    """Exhaustive vs forced-sampled agreement on one small instance.

    The sampled machinery must land on the exhaustive truth: same
    refuted-or-not verdict, and the exhaustive reliability inside the
    sampled confidence interval.
    """
    problem = generate_problem(
        RandomWorkloadConfig(
            operations=12, ccr=1.0, processors=processors, npf=1, seed=seed
        )
    )
    result = schedule_ftbar(problem)
    schedule, algorithm = result.schedule, result.expanded_algorithm
    engine = BatchScenarioEngine(schedule, algorithm)
    probabilities = {p: 0.05 for p in schedule.processor_names()}

    exact_cert = fault_tolerance_certificate(
        schedule, algorithm, method="exact", engine=engine
    )
    sampled_cert = fault_tolerance_certificate(
        schedule, algorithm, method="sampled", engine=engine
    )
    exact_rel = schedule_reliability(
        schedule, algorithm, probabilities, method="exact", engine=engine
    )
    sampled_rel = schedule_reliability(
        schedule, algorithm, probabilities, method="sampled", engine=engine
    )

    verdicts_agree = (exact_cert.verdict == "refuted") == (
        sampled_cert.verdict == "refuted"
    )
    lo, hi = sampled_rel.ci
    reliability_in_ci = lo - 1e-12 <= exact_rel.reliability <= hi + 1e-12
    levels_in_ci = all(
        level.ci[0] - 1e-12
        <= exact_cert.level(level.failures, level.link_failures).masked_fraction
        <= level.ci[1] + 1e-12
        for level in sampled_cert.levels
        if level.ci is not None
    )
    assert verdicts_agree, (
        f"P={processors} seed={seed}: sampled verdict "
        f"{sampled_cert.verdict!r} contradicts exhaustive "
        f"{exact_cert.verdict!r}"
    )
    assert reliability_in_ci, (
        f"P={processors} seed={seed}: exhaustive reliability "
        f"{exact_rel.reliability} outside sampled ci {sampled_rel.ci}"
    )
    assert levels_in_ci, (
        f"P={processors} seed={seed}: an exhaustive level fraction "
        f"escaped its sampled ci"
    )
    return {
        "processors": processors,
        "seed": seed,
        "exact_verdict": exact_cert.verdict,
        "sampled_verdict": sampled_cert.verdict,
        "verdicts_agree": verdicts_agree,
        "exact_reliability": exact_rel.reliability,
        "sampled_reliability": sampled_rel.reliability,
        "sampled_ci": list(sampled_rel.ci),
        "reliability_in_ci": reliability_in_ci,
        "levels_in_ci": levels_in_ci,
        "sampled_draws": sampled_rel.samples + sampled_cert.samples,
    }


def run_sampled_sweep(
    agreement_processors=(3, 4, 5, 6), smoke: bool = False
) -> dict:
    """The ``reliability_sampled_vs_exhaustive`` BENCH section."""
    section: dict = {
        "agreement": [
            bench_agreement(processors, seed)
            for processors in agreement_processors
            for seed in ((2003,) if smoke else (2003, 7))
        ],
    }
    if not smoke:
        section["p32"] = bench_sampled_certificate()
    return section


def run_reliability_sweep(
    processor_counts=(4, 6, 8), repeats: int = 5
) -> dict:
    """The recorded table: one certificate comparison per P."""
    sweep = {
        "operations": _OPERATIONS,
        "npf": _NPF,
        "seed": _SEED,
        "crash_times": 1,
    }
    for processors in processor_counts:
        sweep[str(processors)] = bench_certificate(processors, repeats)
    return sweep


def run_combined_sweep(processor_counts=(4, 6), repeats: int = 5) -> dict:
    """Combined processor+link certificates, one comparison per P."""
    sweep = {
        "operations": _OPERATIONS,
        "npf": _NPF,
        "npl": _NPL,
        "seed": _SEED,
        "crash_times": 1,
    }
    for processors in processor_counts:
        sweep[str(processors)] = bench_combined_certificate(processors, repeats)
    return sweep


def write_bench_json(repeats: int = 5) -> dict:
    """Merge the reliability sweeps into ``BENCH_runtime.json``."""
    payload = (
        json.loads(_RESULT_PATH.read_text()) if _RESULT_PATH.exists() else {}
    )
    payload["reliability_certificate_batched_vs_scenario"] = (
        run_reliability_sweep(repeats=repeats)
    )
    payload["reliability_certificate_combined_npf_npl"] = (
        run_combined_sweep(repeats=repeats)
    )
    payload["reliability_sampled_vs_exhaustive"] = run_sampled_sweep()
    _RESULT_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return payload


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv and not full_scale()
    if smoke:
        sweep = run_reliability_sweep(processor_counts=(4,), repeats=2)
        combined = run_combined_sweep(processor_counts=(4,), repeats=2)
        sampled = run_sampled_sweep(agreement_processors=(4,), smoke=True)
    else:
        payload = write_bench_json()
        sweep = payload["reliability_certificate_batched_vs_scenario"]
        combined = payload["reliability_certificate_combined_npf_npl"]
        sampled = payload["reliability_sampled_vs_exhaustive"]
    for key in sorted((k for k in sweep if k.isdigit()), key=int):
        point = sweep[key]
        print(
            f"P={key}: certificate {point['legacy_s']*1e3:8.2f} ms -> "
            f"{point['batched_s']*1e3:8.2f} ms  ({point['speedup']:.2f}x, "
            f"{point['legacy_scenarios_per_s']:.0f} -> "
            f"{point['batched_scenarios_per_s']:.0f} scenarios/s, "
            f"{point['legacy_decisions']} -> {point['batched_decisions']} "
            f"event decisions)"
        )
    for key in sorted((k for k in combined if k.isdigit()), key=int):
        point = combined[key]
        print(
            f"P={key} npl={point['npl']}: combined certificate "
            f"{point['legacy_s']*1e3:8.2f} ms -> "
            f"{point['batched_s']*1e3:8.2f} ms  ({point['speedup']:.2f}x, "
            f"{point['batched_scenarios']} combined scenario verdicts, "
            f"certified={point['certified']})"
        )
    for entry in sampled["agreement"]:
        print(
            f"P={entry['processors']} seed={entry['seed']}: "
            f"exhaustive {entry['exact_verdict']} vs sampled "
            f"{entry['sampled_verdict']} — agree={entry['verdicts_agree']}, "
            f"reliability {entry['exact_reliability']:.6f} in "
            f"[{entry['sampled_ci'][0]:.6f}, {entry['sampled_ci'][1]:.6f}]"
        )
    if "p32" in sampled:
        p32 = sampled["p32"]
        print(
            f"P={p32['processors']} npf={p32['npf']}: sampled certificate "
            f"{p32['certificate_s']:.2f} s ({p32['certificate_verdict']}, "
            f"{p32['certificate_samples']} draws), reliability "
            f"{p32['reliability']:.6f} ci [{p32['reliability_ci'][0]:.6f}, "
            f"{p32['reliability_ci'][1]:.6f}] in {p32['reliability_s']:.2f} s "
            f"over a {p32['exhaustive_subsets']}-subset exhaustive space"
        )
    if smoke:
        print(
            "smoke ok: batched and per-scenario certificates bit-identical, "
            "sampled verdicts agree with exhaustive on the small corpus"
        )
    else:
        print(f"recorded in {_RESULT_PATH}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
