"""An electric autonomous vehicle on a 5-processor architecture.

The paper's conclusion announces exactly this experiment: "We also plan
to experiment our method on an electric autonomous vehicle, with a
5-processor distributed architecture."  This example builds a plausible
vehicle control application — sensor acquisition, fusion, localisation,
trajectory planning and actuation — on five heterogeneous processors
(two of them I/O-capable controllers, three compute nodes), and studies
the cost of tolerating one and two processor failures.

Run with::

    python examples/autonomous_vehicle.py
"""

from repro import (
    InfeasibleReplicationError,
    ProblemSpec,
    RealTimeConstraints,
    schedule_ftbar,
    schedule_non_fault_tolerant,
    simulate,
)
from repro.analysis import degraded_lengths, overhead_percent, replication_profile
from repro.graphs import AlgorithmGraphBuilder
from repro.hardware import fully_connected
from repro.simulation import FailureScenario
from repro.timing import CommunicationTimes, ExecutionTimes, FORBIDDEN


def build_vehicle_problem(npf: int, io_capable_compute: bool = False) -> ProblemSpec:
    """The control cycle of the vehicle: sense -> fuse -> plan -> act.

    With ``io_capable_compute`` the compute node P3 also gets an I/O
    bus, which is the "add more hardware" remedy the paper prescribes
    when the distribution constraints make ``Npf + 1`` replication
    infeasible.
    """
    algorithm = (
        AlgorithmGraphBuilder("autonomous-vehicle")
        # sensors
        .external_io("lidar", "camera", "odometry", "gps")
        # processing pipeline
        .computation(
            "lidar_filter",
            "vision_detect",
            "fusion",
            "localize",
            "trajectory",
            "speed_ctrl",
            "steer_ctrl",
        )
        # actuators
        .external_io("throttle", "steering")
        .feeds("lidar", into=["lidar_filter"], data_size=8.0)
        .feeds("camera", into=["vision_detect"], data_size=16.0)
        .depends("fusion", on=["lidar_filter", "vision_detect"], data_size=4.0)
        .depends("localize", on=["odometry", "gps", "fusion"], data_size=2.0)
        .depends("trajectory", on=["fusion", "localize"], data_size=2.0)
        .depends("speed_ctrl", on=["trajectory"], data_size=1.0)
        .depends("steer_ctrl", on=["trajectory", "localize"], data_size=1.0)
        .feeds("speed_ctrl", into=["throttle"], data_size=0.5)
        .feeds("steer_ctrl", into=["steering"], data_size=0.5)
        .build()
    )

    architecture = fully_connected(5, name="vehicle-5cpu")

    # P1/P2 are I/O controllers (slow compute, own the sensor/actuator
    # buses); P3-P5 are compute nodes (fast, no direct I/O).
    io_controllers = ("P1", "P2")
    compute_nodes = ("P3", "P4", "P5")
    exec_times = ExecutionTimes()
    compute_cost = {
        "lidar_filter": 4.0,
        "vision_detect": 6.0,
        "fusion": 3.0,
        "localize": 2.5,
        "trajectory": 5.0,
        "speed_ctrl": 1.0,
        "steer_ctrl": 1.0,
    }
    for operation, cost in compute_cost.items():
        for processor in io_controllers:
            exec_times.set(operation, processor, cost * 2.0)  # slow cores
        for processor in compute_nodes:
            exec_times.set(operation, processor, cost)
    for io_operation in ("lidar", "camera", "odometry", "gps", "throttle", "steering"):
        for processor in io_controllers:
            exec_times.set(io_operation, processor, 0.5)
        for processor in compute_nodes:
            if io_capable_compute and processor == "P3":
                exec_times.set(io_operation, processor, 0.8)  # added I/O bus
            else:
                exec_times.set(io_operation, processor, FORBIDDEN)  # no I/O bus

    comm_times = CommunicationTimes.from_bandwidth(
        {
            edge: algorithm.data_size(*edge)
            for edge in algorithm.dependencies()
        },
        bandwidths={link: 4.0 for link in architecture.link_names()},
        latencies={link: 0.2 for link in architecture.link_names()},
    )

    return ProblemSpec(
        algorithm=algorithm,
        architecture=architecture,
        exec_times=exec_times,
        comm_times=comm_times,
        npf=npf,
        rtc=RealTimeConstraints(global_deadline=40.0),
        name=f"vehicle-npf{npf}",
    )


def main() -> None:
    non_ft_length = None
    for npf in (0, 1, 2):
        problem = build_vehicle_problem(npf)
        try:
            result = schedule_ftbar(problem)
        except InfeasibleReplicationError as error:
            # Npf = 2 needs 3 replicas of every sensor/actuator, but only
            # two processors have I/O buses.  The paper's remedy: "it is
            # the responsibility of the user to add more hardware".
            print(f"--- Npf = {npf} ---")
            print(f"infeasible as specified: {error}")
            print("adding an I/O bus to compute node P3 and retrying...")
            problem = build_vehicle_problem(npf, io_capable_compute=True)
            result = schedule_ftbar(problem)
        if npf == 0:
            non_ft_length = schedule_non_fault_tolerant(problem).makespan
        profile = replication_profile(result.schedule)
        print(f"--- Npf = {npf} ---")
        print(result.schedule.summary())
        print(
            f"replicas/op: {profile.average_replication:.2f}, "
            f"duplicated: {profile.duplicated}, comms: {profile.comms}"
        )
        print(
            f"overhead vs non-FT: "
            f"{overhead_percent(result.makespan, non_ft_length):.1f} %"
        )
        print(result.rtc_report)
        if npf >= 1:
            lengths = degraded_lengths(result.schedule, result.expanded_algorithm)
            worst = max(lengths, key=lengths.get)
            print(
                f"worst single crash: {worst} -> length {lengths[worst]:g} "
                f"({'within' if lengths[worst] <= 40.0 else 'MISSES'} Rtc)"
            )
        if npf == 2:
            # The hypothesis covers double faults: both I/O controllers
            # failing is the worst realistic case.
            trace = simulate(
                result.schedule,
                result.expanded_algorithm,
                FailureScenario.crashes(["P3", "P4"]),
            )
            completion = trace.outputs_completion(result.expanded_algorithm)
            print(
                f"P3+P4 crash at t=0 -> actuators served at {completion:g} "
                f"(schedule length {trace.makespan():g})"
            )
        print()


if __name__ == "__main__":
    main()
