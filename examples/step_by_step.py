"""Watch FTBAR take its decisions on the worked example (Figures 5-6).

Section 4.3 walks through the first scheduling steps: after step 2 the
replicas of I and A are placed (Figure 5); at step 3 operation C is
considered, the pressures of C on P1/P2/P3 are compared, and the LIP
duplication of A onto P3 cuts C's pressure (Figure 6).  This example
registers a step observer on the scheduler and prints, per macro-step,
the candidates, their pressures, the selected operation and the
schedule state — the textual equivalent of those figures.

Run with::

    python examples/step_by_step.py
"""

from repro import schedule_ftbar
from repro.core import StepRecord
from repro.schedule import render_gantt
from repro.workloads import build_problem

records: list[StepRecord] = []


def main() -> None:
    problem = build_problem()
    result = schedule_ftbar(problem, observer=records.append)

    for record in records:
        print(f"=== step {record.step} " + "=" * 48)
        print(f"candidates: {', '.join(record.candidates)}")
        for operation in record.candidates:
            sigmas = ", ".join(
                f"{processor}:{record.pressures[(operation, processor)]:g}"
                for processor in ("P1", "P2", "P3")
                if (operation, processor) in record.pressures
            )
            marker = "  <- selected" if operation == record.operation else ""
            print(f"  sigma({operation}) = {{{sigmas}}}{marker}")
        print(
            f"placed {record.operation} on {', '.join(record.processors)} "
            f"(urgency {record.urgency:g}); schedule now ends at "
            f"{record.makespan:g}"
        )
        print()

    print("final schedule (compare with Figure 7):")
    print(render_gantt(result.schedule, width=100))
    print(f"\ntotal time {result.makespan:g} < Rtc = 16: {result.rtc_satisfied}")


if __name__ == "__main__":
    main()
