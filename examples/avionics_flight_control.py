"""A flight-control loop with internal state (memory operations).

Critical avionics is the paper's motivating domain.  This example
models a classic PID-style control loop: sensor inputs, a control law
that keeps internal state in ``mem`` registers (integrator and previous
error), and actuator outputs.  It shows:

* how ``mem`` operations (output precedes input, like a register) are
  expanded into pinned read/write halves and replicated consistently;
* per-operation deadlines (``Rtc`` on individual sub-tasks, section
  3.1: "a deadline on the completion date of a particular sub-task");
* that the registers stay consistent under any single processor crash.

Run with::

    python examples/avionics_flight_control.py
"""

from repro import (
    ProblemSpec,
    RealTimeConstraints,
    schedule_ftbar,
    simulate,
)
from repro.graphs import AlgorithmGraphBuilder
from repro.hardware import fully_connected
from repro.schedule import schedule_table
from repro.simulation import FailureScenario
from repro.timing import CommunicationTimes, ExecutionTimes


def build_flight_control_problem() -> ProblemSpec:
    algorithm = (
        AlgorithmGraphBuilder("flight-control")
        .external_io("attitude_sensor", "airspeed_sensor")
        .computation("estimate", "error", "pid", "limiter")
        .memory("integrator", "prev_error")  # controller state registers
        .external_io("elevator", "aileron")
        .depends("estimate", on=["attitude_sensor", "airspeed_sensor"])
        .depends("error", on=["estimate"])
        # The PID reads the registers (their output precedes their input)
        .depends("pid", on=["error", "integrator", "prev_error"])
        # ... and writes them back for the next iteration.
        .feeds("error", into=["prev_error"])
        .feeds("pid", into=["integrator"])
        .depends("limiter", on=["pid"])
        .feeds("limiter", into=["elevator", "aileron"])
        .build()
    )

    architecture = fully_connected(3, name="flight-control-3cpu")
    exec_times = ExecutionTimes()
    costs = {
        "attitude_sensor": 0.4,
        "airspeed_sensor": 0.4,
        "estimate": 1.2,
        "error": 0.6,
        "integrator": 0.2,
        "prev_error": 0.2,
        "pid": 1.5,
        "limiter": 0.5,
        "elevator": 0.4,
        "aileron": 0.4,
    }
    # Mildly heterogeneous processors (P3 is 25 % faster).
    for operation, cost in costs.items():
        exec_times.set(operation, "P1", cost)
        exec_times.set(operation, "P2", cost * 1.1)
        exec_times.set(operation, "P3", cost * 0.75)

    comm_times = CommunicationTimes.uniform(
        algorithm.dependencies(), architecture.link_names(), 0.3
    )

    rtc = RealTimeConstraints(
        global_deadline=12.0,
        operation_deadlines={
            # The actuators must be served early in the period...
            "elevator": 10.0,
            "aileron": 10.0,
            # ...and the integrator state must be stored by end of period.
            "integrator": 12.0,
        },
    )
    return ProblemSpec(
        algorithm=algorithm,
        architecture=architecture,
        exec_times=exec_times,
        comm_times=comm_times,
        npf=1,
        rtc=rtc,
        name="flight-control",
    )


def main() -> None:
    problem = build_flight_control_problem()
    result = schedule_ftbar(problem)
    print(result.schedule.summary())
    print(result.rtc_report)
    print()

    # The register halves: reads are sources, writes are sinks, and the
    # scheduler pins each write onto the processors of its read.
    for register in ("integrator", "prev_error"):
        read, write = result.memory_pairs[register]
        read_procs = sorted(
            r.processor for r in result.schedule.replicas_of(read)
        )
        write_procs = sorted(
            r.processor for r in result.schedule.replicas_of(write)
        )
        print(
            f"register {register}: read on {read_procs}, write on {write_procs}"
        )
    print()
    print(schedule_table(result.schedule))

    print("\nsingle crashes (registers must still be stored somewhere):")
    for processor in problem.architecture.processor_names():
        trace = simulate(
            result.schedule,
            result.expanded_algorithm,
            FailureScenario.crash(processor),
        )
        stored = all(
            trace.first_completion(result.memory_pairs[reg][1]) is not None
            for reg in ("integrator", "prev_error")
        )
        actuated = all(
            trace.first_completion(op) is not None
            for op in ("elevator", "aileron")
        )
        print(
            f"  {processor} crashes -> actuators {'OK' if actuated else 'LOST'}, "
            f"registers {'stored' if stored else 'LOST'}, "
            f"length {trace.makespan():g}"
        )


if __name__ == "__main__":
    main()
