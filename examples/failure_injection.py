"""Failure injection: permanent vs intermittent crashes, both detectors.

Section 5 of the paper describes two runtime options:

1. *no failure detection* — healthy processors keep sending to faulty
   ones; the medium carries useless traffic but an intermittent
   processor can recover and resume producing results;
2. *timeout array* — every processor learns that a sender is faulty
   when an expected comm misses its static date, and stops sending to
   it; links are relieved but a recovered processor stays excluded.

This example injects a permanent crash, a transient failure and a
double fault into one schedule and compares the two options.

Run with::

    python examples/failure_injection.py
"""

from repro import schedule_ftbar, simulate
from repro.simulation import (
    DetectionPolicy,
    FailureScenario,
    ProcessorFailure,
    simulate_iterations,
)
from repro.workloads import RandomWorkloadConfig, generate_problem


def describe(trace, algorithm, label: str) -> None:
    completion = trace.outputs_completion(algorithm)
    outputs = f"outputs at {completion:g}" if completion is not None else "OUTPUTS LOST"
    print(f"  {label:<28} {trace.summary()}  {outputs}")


def main() -> None:
    problem = generate_problem(
        RandomWorkloadConfig(operations=16, ccr=1.0, processors=4, npf=1, seed=42)
    )
    result = schedule_ftbar(problem)
    algorithm = result.expanded_algorithm
    print(result.schedule.summary())
    nominal = simulate(result.schedule, algorithm)
    print(f"nominal makespan: {nominal.makespan():g}\n")

    scenarios = {
        "P1 permanent crash at t=0": FailureScenario.crash("P1"),
        "P2 crash mid-iteration": FailureScenario.crash(
            "P2", at=nominal.makespan() / 2
        ),
        "P1 transient [10%..40%]": FailureScenario.intermittent(
            "P1", 0.1 * nominal.makespan(), 0.4 * nominal.makespan()
        ),
        "P1+P3 double fault (>Npf)": FailureScenario(
            [ProcessorFailure("P1", 0.0), ProcessorFailure("P3", 0.0)]
        ),
    }

    for policy in (DetectionPolicy.NONE, DetectionPolicy.TIMEOUT_ARRAY):
        print(f"--- detection: {policy.value} ---")
        for label, scenario in scenarios.items():
            trace = simulate(result.schedule, algorithm, scenario, policy)
            describe(trace, algorithm, label)
        print()

    # Show the knowledge the timeout-array detector accumulates.
    trace = simulate(
        result.schedule,
        algorithm,
        FailureScenario.crash("P1"),
        DetectionPolicy.TIMEOUT_ARRAY,
    )
    print("timeout-array knowledge after 'P1 permanent crash':")
    for observer, known in sorted(trace.detections.items()):
        for faulty, at in sorted(known.items()):
            print(f"  {observer} learned {faulty} is faulty at t={at:g}")

    # ------------------------------------------------------------------
    # Cyclic execution: the schedule runs once per input event (§5).
    # ------------------------------------------------------------------
    print("\ncyclic execution, 4 iterations, P1 crashes during iteration 2:")
    crash_at = 1.5 * nominal.makespan()
    for policy in (DetectionPolicy.NONE, DetectionPolicy.TIMEOUT_ARRAY):
        run = simulate_iterations(
            result.schedule,
            algorithm,
            iterations=4,
            scenario=FailureScenario.crash("P1", at=crash_at),
            detection=policy,
        )
        skipped_last = sum(
            1
            for c in run.iterations[-1].trace.comms
            if c.target_processor == "P1" and c.status.value == "skipped"
        )
        print(
            f"  {policy.value:<14} {run.summary()}  "
            f"(comms toward P1 skipped in last iteration: {skipped_last})"
        )


if __name__ == "__main__":
    main()
