"""Quickstart: the paper's worked example, end to end.

Builds the Figure 2 problem (9 operations, 3 processors, Tables 1-2),
runs FTBAR with ``Npf = 1`` and ``Rtc = 16``, validates the schedule,
prints the Gantt chart, and replays the schedule with each processor
crashing at t=0 to show failure masking.

Run with::

    python examples/quickstart.py
"""

from repro import schedule_basic, schedule_ftbar, simulate
from repro.schedule import render_gantt, schedule_table, validate_schedule
from repro.simulation import FailureScenario
from repro.workloads import build_problem


def main() -> None:
    problem = build_problem()
    print(f"Problem: {problem!r}")
    print(f"Rtc: complete within {problem.rtc.global_deadline} time units\n")

    # ------------------------------------------------------------------
    # 1. the fault-tolerant schedule
    # ------------------------------------------------------------------
    result = schedule_ftbar(problem)
    print(result.schedule.summary())
    print(result.rtc_report)
    print()
    print(render_gantt(result.schedule, width=100))
    print()
    print(schedule_table(result.schedule))

    # ------------------------------------------------------------------
    # 2. independent validation of the invariants
    # ------------------------------------------------------------------
    report = validate_schedule(
        result.schedule,
        result.expanded_algorithm,
        problem.architecture,
        problem.exec_times,
        problem.comm_times,
        require_direct_links=True,
    )
    print(f"\nvalidation: {report}")

    # ------------------------------------------------------------------
    # 3. comparison with the non-fault-tolerant baseline
    # ------------------------------------------------------------------
    basic = schedule_basic(problem)
    print(
        f"\nnon-fault-tolerant (SynDEx-like) length: {basic.makespan:g} "
        f"(paper: 10.7); fault-tolerance overhead: "
        f"{result.makespan - basic.makespan:g} (paper: 4.35)"
    )

    # ------------------------------------------------------------------
    # 4. failure masking: crash each processor at t=0 (Figure 8)
    # ------------------------------------------------------------------
    print("\nfail-silent crashes at t=0 (paper: 15.35 / 15.05 / 12.6):")
    for processor in problem.architecture.processor_names():
        trace = simulate(
            result.schedule,
            result.expanded_algorithm,
            FailureScenario.crash(processor),
        )
        completion = trace.outputs_completion(result.expanded_algorithm)
        print(
            f"  {processor} crashes -> schedule length {trace.makespan():g}, "
            f"outputs delivered at {completion:g}, "
            f"Rtc {'OK' if trace.makespan() < problem.rtc.global_deadline else 'MISSED'}"
        )


if __name__ == "__main__":
    main()
