"""Reliability analysis of a fault-tolerant schedule.

The paper's conclusion lists reliability as ongoing work.  Because the
schedule is static, its masking behaviour can be analysed exhaustively:
this example builds an ``Npf = 1`` schedule, machine-checks the masking
claim under *every* crash subset (also beyond the hypothesis), converts
per-processor failure probabilities into a per-iteration reliability
figure, and probes the declared limitation — link failures.

Run with::

    python examples/reliability_analysis.py
"""

from repro import schedule_ftbar, simulate
from repro.analysis import (
    event_boundary_times,
    fault_tolerance_certificate,
    mean_time_to_failure_iterations,
    schedule_reliability,
)
from repro.simulation import FailureScenario
from repro.workloads import build_problem


def main() -> None:
    problem = build_problem()  # the paper's example, Npf = 1
    result = schedule_ftbar(problem)
    algorithm = result.expanded_algorithm
    print(result.schedule.summary())

    # ------------------------------------------------------------------
    # 1. exhaustive masking certificate, crashes at t=0
    # ------------------------------------------------------------------
    print("\ncrashes at t=0:")
    print(fault_tolerance_certificate(result.schedule, algorithm, max_failures=3))

    # ------------------------------------------------------------------
    # 2. the same, crashing at every static event boundary
    # ------------------------------------------------------------------
    times = event_boundary_times(result.schedule, limit=16)
    print(f"\ncrashes at {len(times)} event boundaries:")
    print(
        fault_tolerance_certificate(
            result.schedule, algorithm, crash_times=times
        )
    )

    # ------------------------------------------------------------------
    # 3. reliability from per-processor failure probabilities
    # ------------------------------------------------------------------
    print("\nper-iteration reliability (independent fail-silent processors):")
    for probability in (0.001, 0.01, 0.05, 0.1):
        report = schedule_reliability(
            result.schedule,
            algorithm,
            {p: probability for p in result.schedule.processor_names()},
        )
        mttf = mean_time_to_failure_iterations(report.reliability)
        print(
            f"  q={probability:<6} reliability={report.reliability:.6f} "
            f"(guaranteed >= {report.guaranteed_lower_bound:.6f}), "
            f"MTTF ~ {mttf:,.0f} iterations"
        )

    # ------------------------------------------------------------------
    # 4. the declared limitation: link failures are not guaranteed
    # ------------------------------------------------------------------
    print("\nlink failures (future work in the paper — no guarantee):")
    for link in problem.architecture.link_names():
        trace = simulate(
            result.schedule, algorithm, FailureScenario.link_down(link)
        )
        delivered = trace.all_operations_delivered(algorithm)
        print(
            f"  {link} down from t=0 -> "
            f"{'masked (incidentally)' if delivered else 'OUTPUTS LOST'}"
        )


if __name__ == "__main__":
    main()
