"""Mini exploration of the paper's evaluation space (Figures 9 and 10).

Generates small random workloads per section 6.1, compares FTBAR
against HBP over N and CCR, and prints the overhead curves as tables
and ASCII plots — a fast, laptop-friendly version of the two figures
(the full-scale version lives in ``benchmarks/``).

Run with::

    python examples/random_exploration.py
"""

from repro.analysis import (
    ascii_plot,
    format_overhead_sweep,
    run_overhead_vs_ccr,
    run_overhead_vs_operations,
)


def main() -> None:
    print("sweeping N (CCR = 5, P = 4, Npf = 1, 3 graphs/point)...\n")
    by_n = run_overhead_vs_operations(
        operation_counts=(10, 20, 30, 40),
        ccr=5.0,
        graphs_per_point=3,
        seed=7,
    )
    print(format_overhead_sweep(by_n, "Figure 9 (mini): overhead vs N"))
    print()
    print(
        ascii_plot(
            [p.x for p in by_n.points],
            {
                "ftbar": [p.ftbar_absence for p in by_n.points],
                "hbp": [p.hbp_absence for p in by_n.points],
            },
        )
    )

    print("\nsweeping CCR (N = 25, P = 4, Npf = 1, 3 graphs/point)...\n")
    by_ccr = run_overhead_vs_ccr(
        ccrs=(0.1, 0.5, 1.0, 2.0, 5.0, 10.0),
        operations=25,
        graphs_per_point=3,
        seed=7,
    )
    print(format_overhead_sweep(by_ccr, "Figure 10 (mini): overhead vs CCR"))
    print()
    print(
        ascii_plot(
            [p.x for p in by_ccr.points],
            {
                "ftbar": [p.ftbar_absence for p in by_ccr.points],
                "hbp": [p.hbp_absence for p in by_ccr.points],
            },
        )
    )

    high_ccr = by_ccr.points[-1]
    print(
        f"\nheadline check at CCR={high_ccr.x:g}: FTBAR "
        f"{high_ccr.ftbar_absence:.1f} % vs HBP {high_ccr.hbp_absence:.1f} % "
        f"-> FTBAR wins by {high_ccr.hbp_absence - high_ccr.ftbar_absence:.1f} points"
    )


if __name__ == "__main__":
    main()
