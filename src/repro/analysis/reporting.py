"""Text rendering of experiment results.

The benchmarks print "the same rows/series the paper reports": one table
per figure, plus a tiny ASCII plot helper for eyeballing curve shapes in
a terminal.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.experiments import (
    AblationPoint,
    BusComparisonPoint,
    NpfPoint,
    OptimalityGapPoint,
    OverheadSweep,
    PaperExampleResults,
    RuntimePoint,
)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Align a list of rows under headers, numbers rendered with %g."""
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    grid = [list(headers)] + [[render(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in grid) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(grid):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_overhead_sweep(sweep: OverheadSweep, title: str) -> str:
    """Render a Figure 9/10-style sweep as two tables (absence/presence)."""
    absence_rows = [
        (point.x, point.ftbar_absence, point.hbp_absence, point.graphs)
        for point in sweep.points
    ]
    presence_rows = [
        (point.x, point.ftbar_presence, point.hbp_presence, point.graphs)
        for point in sweep.points
    ]
    parts = [
        title,
        "",
        "(a) average overheads [%] in the ABSENCE of failure",
        format_table(
            (sweep.parameter, "FTBAR", "HBP", "graphs"), absence_rows
        ),
        "",
        "(b) average overheads [%] in the PRESENCE of one failure "
        "(max over crashed processors)",
        format_table(
            (sweep.parameter, "FTBAR", "HBP", "graphs"), presence_rows
        ),
    ]
    return "\n".join(parts)


def format_paper_example(results: PaperExampleResults, references: dict) -> str:
    """Render the E1 reproduction next to the paper's reference numbers."""
    rows = [
        ("fault-tolerant schedule length", f"{results.ft_length:.2f}",
         f"{references['ft_length']:.2f}"),
        ("basic (SynDEx-like) schedule length", f"{results.basic_length:.2f}",
         f"{references['basic_length']:.2f}"),
        ("fault-tolerance overhead", f"{results.overhead:.2f}",
         f"{references['overhead']:.2f}"),
        ("Rtc = 16 satisfied", str(results.rtc_satisfied), "True"),
    ]
    for processor in sorted(results.degraded):
        rows.append(
            (
                f"degraded length, {processor} crashes at t=0",
                f"{results.degraded[processor]:.2f}",
                f"{references['degraded'][processor]:.2f}",
            )
        )
    return format_table(("quantity", "measured", "paper"), rows)


def format_npf_sweep(points: list[NpfPoint]) -> str:
    """Render the E7 Npf sweep."""
    rows = [(p.npf, p.overhead, p.makespan, p.graphs) for p in points]
    return format_table(("Npf", "overhead %", "makespan", "graphs"), rows)


def format_runtime_comparison(points: list[RuntimePoint]) -> str:
    """Render the E6 scheduling-time comparison."""
    rows = [
        (
            p.operations,
            p.ftbar_seconds * 1000.0,
            p.hbp_seconds * 1000.0,
            (p.hbp_seconds / p.ftbar_seconds) if p.ftbar_seconds else float("nan"),
            p.graphs,
        )
        for p in points
    ]
    return format_table(
        ("N", "FTBAR [ms]", "HBP [ms]", "HBP/FTBAR", "graphs"), rows
    )


def format_bus_comparison(points: list[BusComparisonPoint]) -> str:
    """Render the E9 point-to-point-versus-bus table."""
    rows = [
        (
            p.ccr,
            p.p2p_overhead,
            p.bus_overhead,
            p.p2p_makespan,
            p.bus_makespan,
            p.graphs,
        )
        for p in points
    ]
    return format_table(
        (
            "CCR",
            "p2p overhead %",
            "bus overhead %",
            "p2p makespan",
            "bus makespan",
            "graphs",
        ),
        rows,
    )


def format_ablation(points: list[AblationPoint]) -> str:
    """Render the E8 ablation table."""
    rows = [(p.label, p.makespan, p.overhead, p.graphs) for p in points]
    return format_table(("variant", "makespan", "overhead %", "graphs"), rows)


def format_optimality_gap(points: list[OptimalityGapPoint]) -> str:
    """Render the E10 optimality-gap table."""
    rows = [
        (
            p.seed,
            p.ftbar_makespan,
            p.best_makespan,
            p.gap_percent,
            p.assignments,
        )
        for p in points
    ]
    table = format_table(
        ("seed", "FTBAR", "best assignment", "gap %", "assignments"), rows
    )
    gaps = [p.gap_percent for p in points]
    if gaps:
        summary = (
            f"\nmean gap {sum(gaps) / len(gaps):.2f} %, "
            f"worst {max(gaps):.2f} %, best {min(gaps):.2f} %"
        )
    else:
        summary = ""
    return table + summary


def ascii_plot(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 60,
    height: int = 12,
) -> str:
    """A tiny ASCII scatter of several named series (for terminals).

    Each series is plotted with its own marker (first letter of its
    name); axes are scaled to the data range.
    """
    if not xs or not series:
        return "(no data)"
    all_ys = [y for ys in series.values() for y in ys]
    y_low, y_high = min(all_ys), max(all_ys)
    x_low, x_high = min(xs), max(xs)
    y_span = (y_high - y_low) or 1.0
    x_span = (x_high - x_low) or 1.0
    canvas = [[" "] * width for _ in range(height)]
    for name, ys in sorted(series.items()):
        marker = name[0].upper()
        for x, y in zip(xs, ys):
            column = int((x - x_low) / x_span * (width - 1))
            row = height - 1 - int((y - y_low) / y_span * (height - 1))
            canvas[row][column] = marker
    lines = [f"{y_high:10.2f} |" + "".join(canvas[0])]
    for row in canvas[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{y_low:10.2f} |" + "".join(canvas[-1]))
    lines.append(" " * 12 + f"{x_low:<10.3g}" + " " * max(0, width - 20) + f"{x_high:>10.3g}")
    legend = ", ".join(f"{name[0].upper()}={name}" for name in sorted(series))
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
