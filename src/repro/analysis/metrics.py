"""Evaluation metrics of section 6.2.

The central measure is the *fault-tolerance overhead*::

    Overheads = (FTSL - nonFTSL) / FTSL * 100

where ``FTSL`` is the fault-tolerant schedule length (possibly measured
in the presence of a failure, via the simulator) and ``nonFTSL`` is the
length produced by FTBAR with ``Npf = 0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.exceptions import SimulationError
from repro.graphs.algorithm import AlgorithmGraph
from repro.schedule.schedule import Schedule
from repro.simulation.executor import DetectionPolicy, ScheduleSimulator
from repro.simulation.failures import FailureScenario


def overhead_percent(ft_length: float, non_ft_length: float) -> float:
    """The paper's overhead formula, as a percentage of the FT length."""
    if ft_length <= 0:
        raise ValueError(f"fault-tolerant length must be positive, got {ft_length}")
    return (ft_length - non_ft_length) / ft_length * 100.0


@dataclass(frozen=True)
class ReplicationProfile:
    """How much redundancy a schedule carries."""

    operations: int
    replicas: int
    duplicated: int
    comms: int

    @property
    def average_replication(self) -> float:
        """Mean number of replicas per operation."""
        return self.replicas / self.operations if self.operations else 0.0


def replication_profile(schedule: Schedule) -> ReplicationProfile:
    """Measure the redundancy of a schedule."""
    return ReplicationProfile(
        operations=len(schedule.scheduled_operations()),
        replicas=schedule.replica_count(),
        duplicated=schedule.duplicated_count(),
        comms=schedule.comm_count(),
    )


def degraded_lengths(
    schedule: Schedule,
    algorithm: AlgorithmGraph,
    at: float = 0.0,
    detection: DetectionPolicy = DetectionPolicy.NONE,
    require_delivery: bool = True,
) -> dict[str, float]:
    """Schedule length when each processor crashes alone at ``at``.

    Returns ``{processor: makespan}``; the paper's Figure 8 experiment.
    With ``require_delivery`` (default) a missing output raises — under
    the schedule's failure hypothesis every single crash must be masked.
    """
    simulator = ScheduleSimulator(schedule, algorithm, detection)
    lengths: dict[str, float] = {}
    for processor in schedule.processor_names():
        trace = simulator.run(FailureScenario.crash(processor, at))
        if require_delivery and trace.outputs_completion(algorithm) is None:
            raise SimulationError(
                f"crash of {processor!r} at {at} is not masked by the schedule"
            )
        lengths[processor] = trace.makespan()
    return lengths


def worst_degraded_length(
    schedule: Schedule,
    algorithm: AlgorithmGraph,
    at: float = 0.0,
    detection: DetectionPolicy = DetectionPolicy.NONE,
) -> float:
    """Worst single-crash schedule length (max over processors)."""
    lengths = degraded_lengths(schedule, algorithm, at, detection)
    return max(lengths.values())


def presence_overheads(
    schedule: Schedule,
    algorithm: AlgorithmGraph,
    non_ft_length: float,
    at: float = 0.0,
    detection: DetectionPolicy = DetectionPolicy.NONE,
) -> dict[str, float]:
    """Per-crashed-processor overhead in the presence of one failure."""
    return {
        processor: overhead_percent(length, non_ft_length)
        for processor, length in degraded_lengths(
            schedule, algorithm, at, detection
        ).items()
    }


@dataclass(frozen=True)
class OutputLatency:
    """Reaction latency of one output operation (sensor-to-actuator)."""

    operation: str
    nominal: float
    worst_single_crash: float
    worst_crashed_processor: str | None

    @property
    def degradation(self) -> float:
        """Extra latency the worst single crash costs."""
        return self.worst_single_crash - self.nominal


def output_latencies(
    schedule: Schedule,
    algorithm: AlgorithmGraph,
    detection: DetectionPolicy = DetectionPolicy.NONE,
) -> dict[str, OutputLatency]:
    """Per-output first-delivery latency, nominal and under one crash.

    For every sink of the algorithm: when does its *first* replica
    complete, in the nominal run and in the worst single-processor-crash
    run?  This is the end-to-end reaction latency a control engineer
    cares about (the paper's per-sub-task ``Rtc``), as opposed to the
    schedule length which also counts straggler replicas.
    """
    simulator = ScheduleSimulator(schedule, algorithm, detection)
    nominal = simulator.run(FailureScenario.none())
    results: dict[str, OutputLatency] = {}
    crash_traces = {
        processor: simulator.run(FailureScenario.crash(processor))
        for processor in schedule.processor_names()
    }
    for sink in algorithm.sinks():
        base = nominal.first_completion(sink)
        if base is None:  # pragma: no cover - nominal runs always complete
            raise SimulationError(f"output {sink!r} never completes nominally")
        worst = base
        culprit: str | None = None
        for processor, trace in crash_traces.items():
            first = trace.first_completion(sink)
            if first is None:
                raise SimulationError(
                    f"crash of {processor!r} loses output {sink!r}"
                )
            if first > worst:
                worst = first
                culprit = processor
        results[sink] = OutputLatency(
            operation=sink,
            nominal=base,
            worst_single_crash=worst,
            worst_crashed_processor=culprit,
        )
    return results


@dataclass(frozen=True)
class LoadProfile:
    """Resource occupation of a schedule."""

    processor_busy: Mapping[str, float]
    link_busy: Mapping[str, float]
    makespan: float

    def processor_utilization(self, processor: str) -> float:
        """Busy fraction of one processor over the schedule length."""
        if self.makespan == 0:
            return 0.0
        return self.processor_busy[processor] / self.makespan

    def link_utilization(self, link: str) -> float:
        """Busy fraction of one link over the schedule length."""
        if self.makespan == 0:
            return 0.0
        return self.link_busy[link] / self.makespan

    @property
    def balance(self) -> float:
        """Load balance: min/max processor busy time (1.0 = perfect)."""
        busiest = max(self.processor_busy.values(), default=0.0)
        if busiest == 0:
            return 1.0
        return min(self.processor_busy.values()) / busiest


def load_profile(schedule: Schedule) -> LoadProfile:
    """Measure busy time per processor and per link."""
    processor_busy = {
        processor: sum(e.duration for e in schedule.operations_on(processor))
        for processor in schedule.processor_names()
    }
    link_busy = {
        link: sum(c.duration for c in schedule.comms_on(link))
        for link in schedule.link_names()
    }
    return LoadProfile(
        processor_busy=processor_busy,
        link_busy=link_busy,
        makespan=schedule.makespan(),
    )
