"""Structural comparison of two schedules.

When an option flips (duplication, pressure variant, link insertion)
the interesting question is *what moved*: which operations changed
hosts, which replicas appeared or vanished, how the makespan reacted.
:func:`diff_schedules` answers it; :func:`format_schedule_diff` renders
the answer for terminals and ablation reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.schedule.schedule import Schedule


@dataclass
class ScheduleDiff:
    """What changed between schedule ``a`` (before) and ``b`` (after)."""

    makespan_before: float
    makespan_after: float
    replicas_before: int
    replicas_after: int
    comms_before: int
    comms_after: int
    #: Operations whose replica hosts gained a processor in ``b``.
    added_hosts: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: Operations whose replica hosts lost a processor in ``b``.
    removed_hosts: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: Operations scheduled on the same hosts but at different dates.
    retimed: dict[str, float] = field(default_factory=dict)

    @property
    def makespan_delta(self) -> float:
        """Positive when ``b`` is longer."""
        return self.makespan_after - self.makespan_before

    @property
    def identical(self) -> bool:
        """True when nothing moved at all."""
        return (
            not self.added_hosts
            and not self.removed_hosts
            and not self.retimed
            and self.makespan_delta == 0.0
            and self.replicas_before == self.replicas_after
            and self.comms_before == self.comms_after
        )


def diff_schedules(before: Schedule, after: Schedule) -> ScheduleDiff:
    """Compare two schedules of the same algorithm.

    Replicas are matched by (operation, processor) — replica indices are
    placement-order artefacts and do not identify anything stable.
    """
    diff = ScheduleDiff(
        makespan_before=before.makespan(),
        makespan_after=after.makespan(),
        replicas_before=before.replica_count(),
        replicas_after=after.replica_count(),
        comms_before=before.comm_count(),
        comms_after=after.comm_count(),
    )
    operations = set(before.scheduled_operations()) | set(
        after.scheduled_operations()
    )
    for operation in sorted(operations):
        hosts_before = {
            r.processor: r for r in before.replicas_of(operation)
        }
        hosts_after = {
            r.processor: r for r in after.replicas_of(operation)
        }
        added = tuple(sorted(set(hosts_after) - set(hosts_before)))
        removed = tuple(sorted(set(hosts_before) - set(hosts_after)))
        if added:
            diff.added_hosts[operation] = added
        if removed:
            diff.removed_hosts[operation] = removed
        shift = 0.0
        for processor in set(hosts_before) & set(hosts_after):
            shift = max(
                shift,
                abs(hosts_after[processor].start - hosts_before[processor].start),
            )
        if shift > 1e-9:
            diff.retimed[operation] = shift
    return diff


def format_schedule_diff(diff: ScheduleDiff) -> str:
    """Human-readable rendering of a schedule diff."""
    if diff.identical:
        return "schedules identical"
    lines = [
        f"makespan {diff.makespan_before:g} -> {diff.makespan_after:g} "
        f"({diff.makespan_delta:+g})",
        f"replicas {diff.replicas_before} -> {diff.replicas_after}, "
        f"comms {diff.comms_before} -> {diff.comms_after}",
    ]
    for operation in sorted(diff.added_hosts):
        lines.append(
            f"  + {operation} now also on {', '.join(diff.added_hosts[operation])}"
        )
    for operation in sorted(diff.removed_hosts):
        lines.append(
            f"  - {operation} no longer on {', '.join(diff.removed_hosts[operation])}"
        )
    for operation in sorted(diff.retimed):
        lines.append(
            f"  ~ {operation} shifted by up to {diff.retimed[operation]:g}"
        )
    return "\n".join(lines)
