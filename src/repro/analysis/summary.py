"""One-call audit report of a fault-tolerant schedule.

Bundles everything a reviewer asks about a produced schedule — length,
Rtc verdict, redundancy, per-resource load, output latencies, and the
exhaustive masking certificate — into one structure with a text
rendering.  Exposed on the CLI as ``ftbar report``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import (
    LoadProfile,
    OutputLatency,
    ReplicationProfile,
    load_profile,
    output_latencies,
    replication_profile,
)
from repro.analysis.reliability import (
    FaultToleranceCertificate,
    fault_tolerance_certificate,
)
from repro.core.ftbar import FTBARResult
from repro.timing.constraints import RtcReport


@dataclass
class ScheduleReport:
    """Everything worth knowing about one produced schedule."""

    name: str
    npf: int
    makespan: float
    rtc: RtcReport
    replication: ReplicationProfile
    load: LoadProfile
    latencies: dict[str, OutputLatency]
    certificate: FaultToleranceCertificate

    @property
    def healthy(self) -> bool:
        """True when Rtc holds and the masking claim is certified."""
        return self.rtc.satisfied and self.certificate.certified


def audit_schedule(result: FTBARResult) -> ScheduleReport:
    """Run every analysis on one FTBAR result."""
    schedule = result.schedule
    algorithm = result.expanded_algorithm
    return ScheduleReport(
        name=schedule.name,
        npf=schedule.npf,
        makespan=schedule.makespan(),
        rtc=result.rtc_report,
        replication=replication_profile(schedule),
        load=load_profile(schedule),
        latencies=output_latencies(schedule, algorithm),
        certificate=fault_tolerance_certificate(schedule, algorithm),
    )


def format_schedule_report(report: ScheduleReport) -> str:
    """Terminal rendering of an audit report."""
    lines = [
        f"schedule {report.name!r} — npf={report.npf}, "
        f"makespan {report.makespan:g}",
        str(report.rtc),
        (
            f"redundancy: {report.replication.replicas} replicas of "
            f"{report.replication.operations} operations "
            f"(avg {report.replication.average_replication:.2f}/op, "
            f"{report.replication.duplicated} duplicated), "
            f"{report.replication.comms} comms"
        ),
        "processor load:",
    ]
    for processor in sorted(report.load.processor_busy):
        utilization = report.load.processor_utilization(processor)
        lines.append(
            f"  {processor}: busy {report.load.processor_busy[processor]:g} "
            f"({utilization:.0%})"
        )
    if report.load.link_busy:
        lines.append("link load:")
        for link in sorted(report.load.link_busy):
            lines.append(
                f"  {link}: busy {report.load.link_busy[link]:g} "
                f"({report.load.link_utilization(link):.0%})"
            )
    lines.append("output latencies (first delivery):")
    for sink in sorted(report.latencies):
        entry = report.latencies[sink]
        worst = (
            f", worst single crash {entry.worst_single_crash:g}"
            f" (crash of {entry.worst_crashed_processor})"
            if entry.worst_crashed_processor
            else ""
        )
        lines.append(f"  {sink}: nominal {entry.nominal:g}{worst}")
    lines.append(str(report.certificate))
    lines.append(f"verdict: {'HEALTHY' if report.healthy else 'NEEDS ATTENTION'}")
    return "\n".join(lines)
