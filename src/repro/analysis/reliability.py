"""Reliability analysis of fault-tolerant schedules.

The paper guarantees masking of up to ``Npf`` fail-silent processor
failures; its conclusion lists reliability as ongoing work.  This
module quantifies both:

* :func:`fault_tolerance_certificate` exhaustively replays the schedule
  under **every** crash subset up to a given size (and at a set of
  crash instants) and reports which subsets are masked — an independent
  machine-checked version of the paper's correctness claim, which also
  reveals *partial* tolerance beyond ``Npf`` (many ``Npf + 1``-subsets
  are masked by luck of placement).  For link-tolerant schedules
  (``npl >= 1``) the enumeration is *combined*: every (processor
  subset, link subset) pair within the joint hypothesis is replayed
  and the verdict covers both failure modes at once;
* :func:`schedule_reliability` turns per-processor failure
  probabilities into the probability that one iteration delivers all
  its outputs, by exact enumeration over the ``2^P`` crash subsets.

Past the exhaustive regime (``P > 12`` or ``L > 12``) both switch to
the adaptive machinery of :mod:`repro.analysis.sampling`: closed-form
fault bounds, involved-set projection, and seeded stratified sampling
with confidence intervals — a quantified verdict-with-error-bars where
the legacy path could only cap its enumeration
(``method="exact"`` keeps that path, and its
:class:`CertificationCapWarning`, available).

Both run on the batched scenario engine by default
(:class:`~repro.simulation.batch.BatchScenarioEngine`: compile-once
replay, dirty-cone re-decision, footprint-equivalence pruning) and are
bit-identical to the legacy one-simulation-per-scenario path, which
``batched=False`` keeps available as the independent cross-check.
"""

from __future__ import annotations

import itertools
import math
import warnings
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro import obs
from repro.analysis import sampling
from repro.exceptions import SimulationError
from repro.graphs.algorithm import AlgorithmGraph
from repro.schedule.schedule import Schedule
from repro.schedule.serialization import schedule_content_hash
from repro.simulation.batch import BatchScenarioEngine
from repro.simulation.executor import DetectionPolicy, ScheduleSimulator
from repro.simulation.failures import FailureScenario


#: Beyond this many processors (or links) the per-level subset
#: enumeration leaves the regime the exhaustive certifier was designed
#: for; levels are then capped at :data:`MAX_SUBSETS_PER_LEVEL` subsets
#: (taken in canonical order, deterministically) and the analysis emits
#: a :class:`CertificationCapWarning` naming the cap and the enumerated
#: fraction — never a silent weakening of the verdict.
ENUMERATION_CAP = 12

#: Per-(crash size, link size) level ceiling once a cap is exceeded.
MAX_SUBSETS_PER_LEVEL = 4096


class CertificationCapWarning(UserWarning):
    """The certificate sampled its subset enumeration instead of
    sweeping it exhaustively.

    Structured: ``resources`` names what exceeded the cap
    (``"processors"`` and/or ``"links"``), ``cap`` the threshold,
    ``enumerated_subsets`` / ``total_subsets`` the coverage and
    ``sampled_fraction`` their ratio.  A capped certificate's
    ``certified`` verdict only vouches for the enumerated subsets.
    """

    def __init__(
        self,
        resources: tuple[str, ...],
        cap: int,
        enumerated_subsets: int,
        total_subsets: int,
    ) -> None:
        self.resources = resources
        self.cap = cap
        self.enumerated_subsets = enumerated_subsets
        self.total_subsets = total_subsets
        self.sampled_fraction = (
            enumerated_subsets / total_subsets if total_subsets else 1.0
        )
        super().__init__(
            f"certification enumeration capped: {' and '.join(resources)} "
            f"exceed the cap of {cap}; enumerated "
            f"{enumerated_subsets}/{total_subsets} subsets "
            f"({self.sampled_fraction:.2%}) in canonical order — the "
            f"verdict only vouches for the enumerated fraction"
        )


@dataclass(frozen=True)
class ToleranceLevel:
    """Masking statistics for one combined crash-subset size.

    ``failures`` counts crashed processors, ``link_failures`` broken
    links (0 for the paper's processor-only levels).  ``method`` names
    how the level was resolved:

    * ``"exact"`` — every subset enumerated; the counts are the truth.
    * ``"projected"`` — exact counts at arbitrary ``P`` via involved-set
      projection (only the involved core was enumerated, uninvolved
      paddings marginalize out analytically).
    * ``"bounds"`` — refuted by a closed-form witness (minimum replica
      placement or an uncovered link cut) without simulation;
      ``masked_subsets``/``total_subsets`` report the witness evidence
      (``0/1``).
    * ``"sampled"`` — statistically estimated; ``masked_subsets`` /
      ``total_subsets`` then honestly count the *samples* (masked /
      drawn), the true population is in ``population`` and the
      estimate carries a confidence interval.
    """

    failures: int
    masked_subsets: int
    total_subsets: int
    link_failures: int = 0
    method: str = "exact"
    #: True subset count of the level (== ``total_subsets`` for exact
    #: levels; the astronomically larger denominator for sampled ones).
    population: int | None = None
    samples: int = 0
    estimate: float | None = None
    ci: tuple[float, float] | None = None
    #: A breaking subset was observed at this level (exact enumeration,
    #: bounds witness, break hunt or random draw).
    breaking_found: bool = False

    @property
    def fully_masked(self) -> bool:
        """True when *provably* every subset of this size is masked.

        Sampled levels can never prove full masking (only estimate the
        masked fraction), bounds levels are refuted by construction —
        both answer False.
        """
        if self.method in ("exact", "projected"):
            return self.masked_subsets == self.total_subsets
        return False

    @property
    def refuted(self) -> bool:
        """True when at least one subset of this size provably breaks."""
        if self.method in ("exact", "projected"):
            return self.masked_subsets < self.total_subsets
        if self.method == "bounds":
            return True
        return self.breaking_found

    @property
    def masked_fraction(self) -> float:
        """Share of masked subsets (estimated for sampled levels)."""
        if self.method == "sampled" and self.estimate is not None:
            return self.estimate
        if self.total_subsets == 0:
            return 1.0
        return self.masked_subsets / self.total_subsets


@dataclass
class FaultToleranceCertificate:
    """Outcome of the exhaustive (combined) crash-subset replay.

    With ``npl = 0`` and no link levels requested this is exactly the
    paper-era processor certificate; combined certification additionally
    enumerates link-failure subsets and reports the joint verdict.
    """

    npf: int
    crash_times: tuple[float, ...]
    levels: list[ToleranceLevel] = field(default_factory=list)
    breaking_subsets: list[frozenset[str]] = field(default_factory=list)
    #: The link-failure hypothesis this certificate actually *verified*
    #: — ``min(schedule.npl, max_link_failures)`` when the enumeration
    #: was capped, so an under-enumerated run can never claim the
    #: schedule's full ``npl`` promise vacuously.
    npl: int = 0
    #: Combined ``(processors, links)`` subsets within the hypothesis
    #: that broke the schedule (link-involving ones only; pure processor
    #: breaks stay in ``breaking_subsets``).
    breaking_combined: list[tuple[frozenset[str], frozenset[str]]] = field(
        default_factory=list
    )
    #: ``"exact"`` when every level was resolved by (projected)
    #: enumeration; ``"sampled"`` when any level carries a statistical
    #: estimate or a bounds refutation.
    method: str = "exact"
    #: Confidence of the sampled levels' intervals (None for exact runs).
    confidence: float | None = None
    #: Total random samples drawn across all sampled levels.
    samples: int = 0
    #: User seed the RNG streams were derived from (None for exact runs).
    seed: int | None = None

    @property
    def certified(self) -> bool:
        """True when every subset within the joint hypothesis is
        *provably* masked.

        The hypothesis is ≤ ``npf`` processor crashes *and* ≤ ``npl``
        link failures combined.  Sampled in-hypothesis levels can never
        certify (see :attr:`verdict` for the three-way answer).
        """
        return all(
            level.fully_masked
            for level in self.levels
            if level.failures <= self.npf and level.link_failures <= self.npl
        )

    @property
    def verdict(self) -> str:
        """Three-way verdict over the joint hypothesis.

        ``"certified"`` — every in-hypothesis level proven fully masked
        (exact or projected enumeration); ``"refuted"`` — a concrete
        in-hypothesis breaking subset exists (enumerated, hunted,
        sampled, or a closed-form bounds witness); ``"estimated"`` —
        neither proof: the in-hypothesis levels carry estimates with
        confidence intervals instead.
        """
        in_hypothesis = [
            level
            for level in self.levels
            if level.failures <= self.npf and level.link_failures <= self.npl
        ]
        if any(level.refuted for level in in_hypothesis):
            return "refuted"
        if all(level.fully_masked for level in in_hypothesis):
            return "certified"
        return "estimated"

    @property
    def ci(self) -> tuple[float, float] | None:
        """CI of the weakest sampled level (lowest lower bound), if any."""
        intervals = [
            level.ci for level in self.levels if level.ci is not None
        ]
        return min(intervals) if intervals else None

    def to_dict(self) -> dict:
        """JSON-compatible certificate document (CLI and campaign records)."""
        document: dict = {
            "certified": self.certified,
            "verdict": self.verdict,
            "npf": self.npf,
            "npl": self.npl,
            "method": self.method,
            "crash_times": list(self.crash_times),
            "levels": [
                {
                    "failures": level.failures,
                    "link_failures": level.link_failures,
                    "masked": level.masked_subsets,
                    "total": level.total_subsets,
                    "method": level.method,
                    **(
                        {"population": level.population}
                        if level.population is not None
                        and level.population != level.total_subsets
                        else {}
                    ),
                    **(
                        {"samples": level.samples} if level.samples else {}
                    ),
                    **(
                        {"estimate": level.estimate}
                        if level.estimate is not None
                        else {}
                    ),
                    **(
                        {"ci": list(level.ci)} if level.ci is not None else {}
                    ),
                }
                for level in self.levels
            ],
            "breaking_subsets": [
                sorted(subset) for subset in self.breaking_subsets
            ],
            "breaking_combined": [
                [sorted(procs), sorted(links)]
                for procs, links in self.breaking_combined
            ],
        }
        if self.method == "sampled":
            document["confidence"] = self.confidence
            document["samples"] = self.samples
            document["seed"] = self.seed
            document["ci"] = list(self.ci) if self.ci is not None else None
        return document

    def level(self, failures: int, link_failures: int = 0) -> ToleranceLevel:
        """The statistics for one exact combined subset size."""
        for entry in self.levels:
            if (
                entry.failures == failures
                and entry.link_failures == link_failures
            ):
                return entry
        raise KeyError((failures, link_failures))

    def __str__(self) -> str:
        hypothesis = f"npf={self.npf}"
        if self.npl or any(level.link_failures for level in self.levels):
            hypothesis += f", npl={self.npl}"
        verdict = self.verdict
        word = {
            "certified": "CERTIFIED",
            "refuted": "BROKEN",
            "estimated": "ESTIMATED",
        }[verdict]
        lines = [
            f"fault-tolerance certificate ({hypothesis}, "
            f"crash times {list(self.crash_times)}): {word}"
        ]
        if self.method == "sampled" and self.confidence is not None:
            lines[0] += (
                f" ({self.samples} samples at "
                f"{self.confidence:.0%} confidence, seed {self.seed})"
            )
        for level in self.levels:
            label = f"  {level.failures} crash(es)"
            if level.link_failures:
                label += f" + {level.link_failures} link(s)"
            if level.method == "sampled":
                lo, hi = level.ci if level.ci is not None else (0.0, 1.0)
                lines.append(
                    f"{label}: ~{level.masked_fraction:.2%} masked "
                    f"(sampled {level.samples} of {level.population} "
                    f"subsets, ci [{lo:.4f}, {hi:.4f}])"
                )
            elif level.method == "bounds":
                lines.append(
                    f"{label}: refuted by closed-form bound "
                    f"({level.population} subsets, witness below)"
                )
            else:
                suffix = (
                    " (projected from the involved core)"
                    if level.method == "projected"
                    else ""
                )
                lines.append(
                    f"{label}: {level.masked_subsets}/"
                    f"{level.total_subsets} subsets masked{suffix}"
                )
        for subset in self.breaking_subsets[:5]:
            lines.append(f"  breaking subset: {sorted(subset)}")
        for procs, links in self.breaking_combined[:5]:
            lines.append(
                f"  breaking combined subset: {sorted(procs)} + "
                f"links {sorted(links)}"
            )
        return "\n".join(lines)


def _masked(
    simulator: ScheduleSimulator,
    algorithm: AlgorithmGraph,
    processors: Iterable[str],
    crash_times: tuple[float, ...],
    links: Iterable[str] = (),
) -> bool:
    """True when the subset is masked at every requested crash instant."""
    for at in crash_times:
        trace = simulator.run(
            FailureScenario.resource_crashes(processors, links, at=at)
        )
        if not trace.all_operations_delivered(algorithm):
            return False
    return True


def _subset_verdicts(
    schedule: Schedule,
    algorithm: AlgorithmGraph,
    detection: DetectionPolicy,
    batched: bool,
    engine: BatchScenarioEngine | ScheduleSimulator | None,
) -> Callable[[tuple[str, ...], tuple[float, ...]], bool]:
    """The masking oracle both analyses enumerate with.

    ``batched=True`` routes every verdict through one (possibly shared)
    :class:`BatchScenarioEngine`; ``batched=False`` is the legacy
    one-full-simulation-per-scenario path the batched verdicts are
    pinned against (``engine`` may then be a prebuilt
    :class:`ScheduleSimulator`, e.g. to read its work counters).
    """
    if not batched:
        simulator = (
            engine
            if isinstance(engine, ScheduleSimulator)
            else ScheduleSimulator(schedule, algorithm, detection)
        )
        return lambda subset, times, links=(): _masked(
            simulator, algorithm, subset, times, links
        )
    return _resolve_engine(
        schedule, algorithm, detection, engine
    ).crash_subset_masked


def _resolve_engine(
    schedule: Schedule,
    algorithm: AlgorithmGraph,
    detection: DetectionPolicy,
    engine: BatchScenarioEngine | ScheduleSimulator | None,
) -> BatchScenarioEngine:
    """A batch engine for this schedule, validated when caller-supplied."""
    if engine is None or isinstance(engine, ScheduleSimulator):
        return BatchScenarioEngine(schedule, algorithm, detection)
    if engine.detection is not DetectionPolicy(detection):
        raise SimulationError(
            f"engine was built with detection={engine.detection}, "
            f"requested {DetectionPolicy(detection)}"
        )
    if engine.schedule is not schedule or engine.algorithm is not algorithm:
        # A mismatched engine would silently return the *other*
        # schedule's verdicts — the compiled arrays ignore these
        # arguments entirely.
        raise SimulationError(
            "engine was compiled for a different schedule/algorithm"
        )
    return engine


def fault_tolerance_certificate(
    schedule: Schedule,
    algorithm: AlgorithmGraph,
    max_failures: int | None = None,
    crash_times: Iterable[float] = (0.0,),
    detection: DetectionPolicy = DetectionPolicy.NONE,
    batched: bool = True,
    engine: BatchScenarioEngine | ScheduleSimulator | None = None,
    max_link_failures: int | None = None,
    method: str = "auto",
    confidence: float = 0.99,
    budget: int | None = None,
    seed: int = 0,
    epsilon: float = 0.01,
) -> FaultToleranceCertificate:
    """Check masking of every crash subset up to a size.

    ``max_failures`` defaults to ``schedule.npf + 1`` so the report also
    shows how much of the *next* failure level happens to be tolerated.
    ``crash_times`` are the instants at which all processors of a subset
    crash simultaneously (the paper's experiment uses t = 0, the worst
    case for active replication since nothing has been sent yet).

    ``max_link_failures`` bounds the *combined* enumeration: every
    (processor subset, link subset) pair with at most that many broken
    links is replayed alongside the crashes.  It defaults to the
    schedule's own ``npl`` hypothesis, so a paper-era ``npl = 0``
    schedule gets exactly the original processor-only certificate and a
    link-tolerant schedule is certified against what it promises.

    ``method`` selects the resolution strategy per level:

    * ``"auto"`` (default) — exhaustive enumeration wherever a level
      fits under :data:`MAX_SUBSETS_PER_LEVEL` (bit-identical to the
      historical certificate there, and never a cap warning), then
      involved-set projection, closed-form bounds and seeded stratified
      sampling for the levels enumeration cannot reach (see
      :mod:`repro.analysis.sampling`).
    * ``"exact"`` — the legacy exhaustive path, including the
      deterministic canonical-prefix cap and its
      :class:`CertificationCapWarning` past ``P > 12`` / ``L > 12``.
    * ``"sampled"`` — force the sampling machinery even on levels small
      enough to enumerate (test/benchmark escape hatch).

    ``confidence``, ``budget``, ``seed`` and ``epsilon`` parameterize
    the sampled levels: the adaptive loop refines each level until its
    interval width undercuts ``epsilon`` or the total ``budget`` of
    random draws is spent, and every draw derives deterministically
    from the schedule content hash and ``seed``.

    ``batched`` selects the compile-once batch engine (default) or the
    legacy per-scenario replay; the verdicts are bit-identical (the
    sampling machinery requires the batch engine, so ``batched=False``
    always takes the legacy path).  Pass ``engine`` to share one
    prebuilt engine (and its caches) across calls — e.g. a certificate
    followed by a reliability sweep.
    """
    if method not in ("auto", "exact", "sampled"):
        raise SimulationError(
            f"unknown certification method {method!r}; "
            f"expected 'auto', 'exact' or 'sampled'"
        )
    processors = schedule.processor_names()
    links = schedule.link_names()
    npl = getattr(schedule, "npl", 0)
    bound = schedule.npf + 1 if max_failures is None else max_failures
    bound = min(bound, len(processors))
    link_bound = npl if max_link_failures is None else max_link_failures
    link_bound = min(link_bound, len(links))
    times = tuple(crash_times)
    if method != "exact" and batched:
        return _certificate_adaptive(
            schedule, algorithm, detection, engine, times, bound,
            link_bound, method, confidence, budget, seed, epsilon,
        )
    is_masked = _subset_verdicts(schedule, algorithm, detection, batched, engine)
    # The certificate only vouches for what it enumerated: capping the
    # link bound below the schedule's npl weakens the verified
    # hypothesis accordingly (never a vacuous CERTIFIED).
    certificate = FaultToleranceCertificate(
        npf=schedule.npf, crash_times=times, npl=min(npl, link_bound)
    )
    capped_resources = tuple(
        name
        for name, count in (
            ("processors", len(processors)), ("links", len(links))
        )
        if count > ENUMERATION_CAP
    )
    enumerated_subsets = 0
    full_subsets = 0
    for size in range(bound + 1):
        for link_size in range(link_bound + 1):
            masked = 0
            total = 0
            level_subsets = (
                (subset, link_subset)
                for subset in itertools.combinations(processors, size)
                for link_subset in itertools.combinations(links, link_size)
            )
            if capped_resources:
                # Deterministic sampling: the first
                # MAX_SUBSETS_PER_LEVEL subsets in canonical order.
                level_subsets = itertools.islice(
                    level_subsets, MAX_SUBSETS_PER_LEVEL
                )
                full_subsets += math.comb(
                    len(processors), size
                ) * math.comb(len(links), link_size)
            for subset, link_subset in level_subsets:
                total += 1
                if is_masked(subset, times, link_subset):
                    masked += 1
                elif size <= schedule.npf and link_size <= npl:
                    if link_size:
                        certificate.breaking_combined.append(
                            (frozenset(subset), frozenset(link_subset))
                        )
                    else:
                        certificate.breaking_subsets.append(frozenset(subset))
            enumerated_subsets += total
            certificate.levels.append(
                ToleranceLevel(size, masked, total, link_failures=link_size)
            )
    if capped_resources:
        warnings.warn(
            CertificationCapWarning(
                capped_resources,
                ENUMERATION_CAP,
                enumerated_subsets,
                full_subsets,
            ),
            stacklevel=2,
        )
        obs.event(
            "warn.certification_cap",
            schedule=schedule.name,
            resources=capped_resources,
            cap=ENUMERATION_CAP,
            enumerated_subsets=enumerated_subsets,
            total_subsets=full_subsets,
        )
    return certificate


def _certificate_adaptive(
    schedule: Schedule,
    algorithm: AlgorithmGraph,
    detection: DetectionPolicy,
    engine: BatchScenarioEngine | ScheduleSimulator | None,
    times: tuple[float, ...],
    bound: int,
    link_bound: int,
    method: str,
    confidence: float,
    budget: int | None,
    seed: int,
    epsilon: float,
) -> FaultToleranceCertificate:
    """The bounds/projection/sampling certificate (``method != "exact"``).

    Levels small enough to enumerate are resolved exactly (bit-identical
    counts and breaking subsets to the legacy path, in the same
    canonical order); everything else goes through
    :func:`repro.analysis.sampling.evaluate_level`.
    """
    engine = _resolve_engine(schedule, algorithm, detection, engine)
    processors = schedule.processor_names()
    links = schedule.link_names()
    npl = getattr(schedule, "npl", 0)
    certificate = FaultToleranceCertificate(
        npf=schedule.npf, crash_times=times, npl=min(npl, link_bound)
    )
    force_sampled = method == "sampled"
    needs_sampling = force_sampled or any(
        math.comb(len(processors), size) * math.comb(len(links), link_size)
        > MAX_SUBSETS_PER_LEVEL
        for size in range(bound + 1)
        for link_size in range(link_bound + 1)
    )
    bounds: sampling.FaultBounds | None = None
    content = ""
    involved_procs: tuple[str, ...] = ()
    involved_links: tuple[str, ...] = ()
    proc_cone_rank: tuple[str, ...] = ()
    if needs_sampling:
        with obs.span("certify.bounds"):
            bounds = sampling.analytic_fault_bounds(schedule)
        content = schedule_content_hash(schedule)
        involved_procs = engine.involved_processors()
        involved_links = engine.involved_links()
        cone = engine.processor_cone_fractions()
        proc_cone_rank = tuple(
            sorted(cone, key=lambda name: (-cone[name], name))
        )
    budget_left = (
        sampling.DEFAULT_CERTIFICATE_BUDGET if budget is None else budget
    )
    pruned_before = engine.stats.pruned_nominal + engine.stats.memo_hits
    samples_total = 0
    span = obs.span("certify.sample") if needs_sampling else None
    if span is not None:
        span.__enter__()
    try:
        for size in range(bound + 1):
            for link_size in range(link_bound + 1):
                outcome = sampling.evaluate_level(
                    size=size,
                    link_size=link_size,
                    oracle=engine.crash_subset_masked,
                    times=times,
                    processors=processors,
                    links=links,
                    involved_procs=involved_procs,
                    involved_links=involved_links,
                    proc_cone_rank=proc_cone_rank,
                    level_cap=MAX_SUBSETS_PER_LEVEL,
                    bounds=bounds,
                    confidence=confidence,
                    epsilon=epsilon,
                    budget=max(1, budget_left),
                    rng=sampling.derive_rng(
                        content, seed, f"level:{size}:{link_size}"
                    ),
                    force_sampled=force_sampled,
                )
                budget_left = max(0, budget_left - outcome.samples)
                samples_total += outcome.samples
                certificate.levels.append(
                    ToleranceLevel(
                        size,
                        outcome.masked_subsets,
                        outcome.total_subsets,
                        link_failures=link_size,
                        method=outcome.method,
                        population=outcome.population,
                        samples=outcome.samples,
                        estimate=outcome.estimate,
                        ci=outcome.ci,
                        breaking_found=bool(outcome.breaking),
                    )
                )
                if size <= schedule.npf and link_size <= npl:
                    for proc_subset, link_subset in outcome.breaking or ():
                        if link_size:
                            certificate.breaking_combined.append(
                                (frozenset(proc_subset), frozenset(link_subset))
                            )
                        else:
                            certificate.breaking_subsets.append(
                                frozenset(proc_subset)
                            )
    finally:
        if span is not None:
            span.__exit__(None, None, None)
    if needs_sampling:
        certificate.method = "sampled"
        certificate.confidence = confidence
        certificate.samples = samples_total
        certificate.seed = seed
        obs.metrics.inc("certify.samples_drawn", samples_total)
        obs.metrics.inc(
            "certify.samples_pruned",
            engine.stats.pruned_nominal + engine.stats.memo_hits
            - pruned_before,
        )
    return certificate


def event_boundary_times(schedule: Schedule, limit: int = 32) -> tuple[float, ...]:
    """Representative crash instants: the static event start dates.

    Crashing exactly when an event starts exercises the tightest races
    (data produced but not yet sent, comm started but not delivered).
    At most ``limit`` evenly spaced boundaries are returned.
    """
    boundaries = sorted(
        {0.0}
        | {event.start for event in schedule.all_operations()}
        | {comm.start for comm in schedule.all_comms()}
    )
    if len(boundaries) <= limit:
        return tuple(boundaries)
    step = len(boundaries) / limit
    return tuple(boundaries[int(i * step)] for i in range(limit))


def _validate_probabilities(
    names: Iterable[str], probabilities: Mapping[str, float], kind: str
) -> None:
    """Every named resource needs a probability in [0, 1]."""
    for name in names:
        if name not in probabilities:
            raise SimulationError(
                f"no failure probability given for {kind} {name!r}"
            )
        probability = probabilities[name]
        if not 0.0 <= probability <= 1.0:
            raise SimulationError(
                f"failure probability of {name!r} must be in [0, 1], "
                f"got {probability!r}"
            )


@dataclass(frozen=True)
class ReliabilityReport:
    """Probability that one iteration delivers all outputs.

    ``method == "exact"`` reports the enumerated truth;
    ``method == "sampled"`` a stratified estimate whose ``ci`` holds at
    ``confidence`` (``exhaustive_subsets`` then records how many
    subsets exact enumeration would have had to sweep).
    """

    reliability: float
    masked_probability_mass: float
    evaluated_subsets: int
    guaranteed_lower_bound: float
    method: str = "exact"
    confidence: float | None = None
    ci: tuple[float, float] | None = None
    samples: int = 0
    exhaustive_subsets: int | None = None

    def __str__(self) -> str:
        text = (
            f"reliability {self.reliability:.6f} "
            f"(guaranteed lower bound {self.guaranteed_lower_bound:.6f}, "
            f"{self.evaluated_subsets} crash subsets evaluated)"
        )
        if self.method == "sampled" and self.ci is not None:
            text += (
                f" — sampled: ci [{self.ci[0]:.6f}, {self.ci[1]:.6f}] at "
                f"{self.confidence:.0%} confidence, {self.samples} draws "
                f"for a {self.exhaustive_subsets}-subset exhaustive space"
            )
        return text


def schedule_reliability(
    schedule: Schedule,
    algorithm: AlgorithmGraph,
    failure_probabilities: Mapping[str, float],
    crash_times: Iterable[float] = (0.0,),
    detection: DetectionPolicy = DetectionPolicy.NONE,
    batched: bool = True,
    engine: BatchScenarioEngine | ScheduleSimulator | None = None,
    link_failure_probabilities: Mapping[str, float] | None = None,
    method: str = "auto",
    confidence: float = 0.99,
    budget: int | None = None,
    seed: int = 0,
    epsilon: float = 0.005,
    cone_tilt: float = 0.0,
) -> ReliabilityReport:
    """Reliability over the ``2^P`` (or ``2^P x 2^L``) crash subsets.

    ``failure_probabilities[p]`` is the probability that processor ``p``
    fails (fail-silent) during the iteration, independently of the
    others.  A subset counts as masked when it is masked at *every*
    instant of ``crash_times``.  The guaranteed lower bound is the
    probability that at most ``Npf`` processors fail — what the paper's
    theorem promises without looking at the schedule.

    With ``link_failure_probabilities`` the enumeration additionally
    sweeps every link subset (``2^P x 2^L`` combined scenarios); the
    guaranteed lower bound then also requires at most ``Npl`` broken
    links.  ``None`` keeps the processor-only sum bit-identical to the
    pre-link-tolerance implementation.

    ``method="auto"`` enumerates exactly up to ``P, L <= 12``
    (:data:`ENUMERATION_CAP`) and switches to stratified
    conditional-Bernoulli sampling beyond (seeded, deterministic, with
    a ``ci`` at ``confidence`` — see
    :func:`repro.analysis.sampling.sampled_reliability`); ``"exact"``
    and ``"sampled"`` force either path.  ``cone_tilt > 0`` tilts
    sampled draws toward large dirty cones with exact reweighting.

    The exact probability sum always enumerates subsets in canonical
    order (so ``batched=True`` and ``batched=False`` land on
    bit-identical floats); batching changes only how each subset's
    masking verdict is obtained.  The sampled path requires the batch
    engine (its involved-set reduction theorem is what makes the
    strata exact).  ``engine`` shares a prebuilt batch engine's caches,
    e.g. with a preceding certificate.
    """
    if method not in ("auto", "exact", "sampled"):
        raise SimulationError(
            f"unknown reliability method {method!r}; "
            f"expected 'auto', 'exact' or 'sampled'"
        )
    processors = schedule.processor_names()
    _validate_probabilities(processors, failure_probabilities, "processor")
    links = schedule.link_names() if link_failure_probabilities is not None else ()
    _validate_probabilities(links, link_failure_probabilities or {}, "link")
    if method == "auto":
        small = (
            len(processors) <= ENUMERATION_CAP
            and len(links) <= ENUMERATION_CAP
        )
        # The legacy per-scenario engine has no involved-set reduction,
        # so auto never routes it to the sampled path.
        method = "exact" if small or not batched else "sampled"
    if method == "sampled":
        if not batched:
            raise SimulationError(
                "sampled reliability requires the batch engine "
                "(batched=True): its involved-set reduction is what "
                "makes the sampling strata exact"
            )
        resolved = _resolve_engine(schedule, algorithm, detection, engine)
        npl = getattr(schedule, "npl", 0)
        with obs.span("certify.sample"):
            estimate = sampling.sampled_reliability(
                schedule=schedule,
                oracle=resolved.crash_subset_masked,
                baseline_delivered=resolved.baseline_delivered,
                failure_probabilities=failure_probabilities,
                times=tuple(crash_times),
                involved_procs=resolved.involved_processors(),
                involved_links=(
                    resolved.involved_links() if links else ()
                ),
                proc_cone_fractions=resolved.processor_cone_fractions(),
                link_cone_fractions=(
                    resolved.link_cone_fractions() if links else {}
                ),
                link_failure_probabilities=link_failure_probabilities,
                confidence=confidence,
                epsilon=epsilon,
                budget=(
                    sampling.DEFAULT_RELIABILITY_BUDGET
                    if budget is None
                    else budget
                ),
                seed=seed,
                content_hash=schedule_content_hash(schedule),
                npf=schedule.npf,
                npl=npl,
                cone_tilt=cone_tilt,
            )
        obs.metrics.inc("certify.samples_drawn", estimate.samples)
        return ReliabilityReport(
            reliability=estimate.reliability,
            masked_probability_mass=estimate.masked_probability_mass,
            evaluated_subsets=estimate.evaluated_subsets,
            guaranteed_lower_bound=estimate.guaranteed_lower_bound,
            method="sampled",
            confidence=estimate.confidence,
            ci=estimate.ci,
            samples=estimate.samples,
            exhaustive_subsets=estimate.exhaustive_subsets,
        )
    is_masked = _subset_verdicts(schedule, algorithm, detection, batched, engine)
    npl = getattr(schedule, "npl", 0)
    times = tuple(crash_times)
    reliability = 0.0
    masked_mass = 0.0
    guaranteed = 0.0
    evaluated = 0
    # With no link probabilities, ``links`` is empty and the inner loop
    # degenerates to a single ``link_subset = ()`` iteration whose mass,
    # enumeration order and masking keys are exactly the historical
    # processor-only sum — bit-identical floats, one code path.
    for size in range(len(processors) + 1):
        for subset in itertools.combinations(processors, size):
            proc_mass = 1.0
            for processor in processors:
                probability = failure_probabilities[processor]
                proc_mass *= (
                    probability if processor in subset else 1.0 - probability
                )
            for link_size in range(len(links) + 1):
                for link_subset in itertools.combinations(links, link_size):
                    evaluated += 1
                    mass = proc_mass
                    for link in links:
                        probability = link_failure_probabilities[link]
                        mass *= (
                            probability
                            if link in link_subset
                            else 1.0 - probability
                        )
                    if mass == 0.0:
                        continue
                    if size <= schedule.npf and link_size <= npl:
                        guaranteed += mass
                    if (size == 0 and link_size == 0) or is_masked(
                        subset, times, link_subset
                    ):
                        reliability += mass
                        if size > 0 or link_size > 0:
                            masked_mass += mass
    return ReliabilityReport(
        reliability=min(reliability, 1.0),
        masked_probability_mass=masked_mass,
        evaluated_subsets=evaluated,
        guaranteed_lower_bound=min(guaranteed, 1.0),
    )


def mean_time_to_failure_iterations(
    per_iteration_reliability: float,
) -> float:
    """Expected number of iterations before the first unmasked failure.

    With independent iterations the iteration count to first failure is
    geometric: ``MTTF = 1 / (1 - R)`` (``inf`` for ``R = 1``).
    """
    if not 0.0 <= per_iteration_reliability <= 1.0:
        raise ValueError("reliability must be in [0, 1]")
    if per_iteration_reliability == 1.0:
        return math.inf
    return 1.0 / (1.0 - per_iteration_reliability)
