"""Reliability analysis of fault-tolerant schedules.

The paper guarantees masking of up to ``Npf`` fail-silent processor
failures; its conclusion lists reliability as ongoing work.  This
module quantifies both:

* :func:`fault_tolerance_certificate` exhaustively replays the schedule
  under **every** crash subset up to a given size (and at a set of
  crash instants) and reports which subsets are masked — an independent
  machine-checked version of the paper's correctness claim, which also
  reveals *partial* tolerance beyond ``Npf`` (many ``Npf + 1``-subsets
  are masked by luck of placement);
* :func:`schedule_reliability` turns per-processor failure
  probabilities into the probability that one iteration delivers all
  its outputs, by exact enumeration over the ``2^P`` crash subsets.

Both run on the batched scenario engine by default
(:class:`~repro.simulation.batch.BatchScenarioEngine`: compile-once
replay, dirty-cone re-decision, footprint-equivalence pruning) and are
bit-identical to the legacy one-simulation-per-scenario path, which
``batched=False`` keeps available as the independent cross-check.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.exceptions import SimulationError
from repro.graphs.algorithm import AlgorithmGraph
from repro.schedule.schedule import Schedule
from repro.simulation.batch import BatchScenarioEngine
from repro.simulation.executor import DetectionPolicy, ScheduleSimulator
from repro.simulation.failures import FailureScenario


@dataclass(frozen=True)
class ToleranceLevel:
    """Masking statistics for one crash-subset size ``k``."""

    failures: int
    masked_subsets: int
    total_subsets: int

    @property
    def fully_masked(self) -> bool:
        """True when every subset of this size is masked."""
        return self.masked_subsets == self.total_subsets

    @property
    def masked_fraction(self) -> float:
        """Share of masked subsets (1.0 = fully tolerant at this level)."""
        if self.total_subsets == 0:
            return 1.0
        return self.masked_subsets / self.total_subsets


@dataclass
class FaultToleranceCertificate:
    """Outcome of the exhaustive crash-subset replay."""

    npf: int
    crash_times: tuple[float, ...]
    levels: list[ToleranceLevel] = field(default_factory=list)
    breaking_subsets: list[frozenset[str]] = field(default_factory=list)

    @property
    def certified(self) -> bool:
        """True when every subset of size ≤ ``npf`` is masked."""
        return all(
            level.fully_masked for level in self.levels if level.failures <= self.npf
        )

    def level(self, failures: int) -> ToleranceLevel:
        """The statistics for subsets of exactly ``failures`` crashes."""
        for entry in self.levels:
            if entry.failures == failures:
                return entry
        raise KeyError(failures)

    def __str__(self) -> str:
        lines = [
            f"fault-tolerance certificate (npf={self.npf}, "
            f"crash times {list(self.crash_times)}): "
            f"{'CERTIFIED' if self.certified else 'BROKEN'}"
        ]
        for level in self.levels:
            lines.append(
                f"  {level.failures} crash(es): {level.masked_subsets}/"
                f"{level.total_subsets} subsets masked"
            )
        for subset in self.breaking_subsets[:5]:
            lines.append(f"  breaking subset: {sorted(subset)}")
        return "\n".join(lines)


def _masked(
    simulator: ScheduleSimulator,
    algorithm: AlgorithmGraph,
    processors: Iterable[str],
    crash_times: tuple[float, ...],
) -> bool:
    """True when the subset is masked at every requested crash instant."""
    for at in crash_times:
        trace = simulator.run(FailureScenario.crashes(processors, at=at))
        if not trace.all_operations_delivered(algorithm):
            return False
    return True


def _subset_verdicts(
    schedule: Schedule,
    algorithm: AlgorithmGraph,
    detection: DetectionPolicy,
    batched: bool,
    engine: BatchScenarioEngine | ScheduleSimulator | None,
) -> Callable[[tuple[str, ...], tuple[float, ...]], bool]:
    """The masking oracle both analyses enumerate with.

    ``batched=True`` routes every verdict through one (possibly shared)
    :class:`BatchScenarioEngine`; ``batched=False`` is the legacy
    one-full-simulation-per-scenario path the batched verdicts are
    pinned against (``engine`` may then be a prebuilt
    :class:`ScheduleSimulator`, e.g. to read its work counters).
    """
    if not batched:
        simulator = (
            engine
            if isinstance(engine, ScheduleSimulator)
            else ScheduleSimulator(schedule, algorithm, detection)
        )
        return lambda subset, times: _masked(simulator, algorithm, subset, times)
    if engine is None or isinstance(engine, ScheduleSimulator):
        engine = BatchScenarioEngine(schedule, algorithm, detection)
    elif engine.detection is not DetectionPolicy(detection):
        raise SimulationError(
            f"engine was built with detection={engine.detection}, "
            f"requested {DetectionPolicy(detection)}"
        )
    elif engine.schedule is not schedule or engine.algorithm is not algorithm:
        # A mismatched engine would silently return the *other*
        # schedule's verdicts — the compiled arrays ignore these
        # arguments entirely.
        raise SimulationError(
            "engine was compiled for a different schedule/algorithm"
        )
    return engine.crash_subset_masked


def fault_tolerance_certificate(
    schedule: Schedule,
    algorithm: AlgorithmGraph,
    max_failures: int | None = None,
    crash_times: Iterable[float] = (0.0,),
    detection: DetectionPolicy = DetectionPolicy.NONE,
    batched: bool = True,
    engine: BatchScenarioEngine | ScheduleSimulator | None = None,
) -> FaultToleranceCertificate:
    """Exhaustively check masking of every crash subset up to a size.

    ``max_failures`` defaults to ``schedule.npf + 1`` so the report also
    shows how much of the *next* failure level happens to be tolerated.
    ``crash_times`` are the instants at which all processors of a subset
    crash simultaneously (the paper's experiment uses t = 0, the worst
    case for active replication since nothing has been sent yet).

    ``batched`` selects the compile-once batch engine (default) or the
    legacy per-scenario replay; the verdicts are bit-identical.  Pass
    ``engine`` to share one prebuilt engine (and its caches) across
    calls — e.g. a certificate followed by a reliability sweep.
    """
    is_masked = _subset_verdicts(schedule, algorithm, detection, batched, engine)
    processors = schedule.processor_names()
    bound = schedule.npf + 1 if max_failures is None else max_failures
    bound = min(bound, len(processors))
    times = tuple(crash_times)
    certificate = FaultToleranceCertificate(npf=schedule.npf, crash_times=times)
    for size in range(bound + 1):
        masked = 0
        total = 0
        for subset in itertools.combinations(processors, size):
            total += 1
            if is_masked(subset, times):
                masked += 1
            elif size <= schedule.npf:
                certificate.breaking_subsets.append(frozenset(subset))
        certificate.levels.append(ToleranceLevel(size, masked, total))
    return certificate


def event_boundary_times(schedule: Schedule, limit: int = 32) -> tuple[float, ...]:
    """Representative crash instants: the static event start dates.

    Crashing exactly when an event starts exercises the tightest races
    (data produced but not yet sent, comm started but not delivered).
    At most ``limit`` evenly spaced boundaries are returned.
    """
    boundaries = sorted(
        {0.0}
        | {event.start for event in schedule.all_operations()}
        | {comm.start for comm in schedule.all_comms()}
    )
    if len(boundaries) <= limit:
        return tuple(boundaries)
    step = len(boundaries) / limit
    return tuple(boundaries[int(i * step)] for i in range(limit))


@dataclass(frozen=True)
class ReliabilityReport:
    """Probability that one iteration delivers all outputs."""

    reliability: float
    masked_probability_mass: float
    evaluated_subsets: int
    guaranteed_lower_bound: float

    def __str__(self) -> str:
        return (
            f"reliability {self.reliability:.6f} "
            f"(guaranteed lower bound {self.guaranteed_lower_bound:.6f}, "
            f"{self.evaluated_subsets} crash subsets evaluated)"
        )


def schedule_reliability(
    schedule: Schedule,
    algorithm: AlgorithmGraph,
    failure_probabilities: Mapping[str, float],
    crash_times: Iterable[float] = (0.0,),
    detection: DetectionPolicy = DetectionPolicy.NONE,
    batched: bool = True,
    engine: BatchScenarioEngine | ScheduleSimulator | None = None,
) -> ReliabilityReport:
    """Exact reliability by enumeration over all ``2^P`` crash subsets.

    ``failure_probabilities[p]`` is the probability that processor ``p``
    fails (fail-silent) during the iteration, independently of the
    others.  A subset counts as masked when it is masked at *every*
    instant of ``crash_times``.  The guaranteed lower bound is the
    probability that at most ``Npf`` processors fail — what the paper's
    theorem promises without looking at the schedule.

    The probability sum always enumerates all ``2^P`` subsets in
    canonical order (so ``batched=True`` and ``batched=False`` land on
    bit-identical floats); batching changes only how each subset's
    masking verdict is obtained.  ``engine`` shares a prebuilt batch
    engine's caches, e.g. with a preceding certificate.
    """
    processors = schedule.processor_names()
    for processor in processors:
        if processor not in failure_probabilities:
            raise SimulationError(
                f"no failure probability given for processor {processor!r}"
            )
        probability = failure_probabilities[processor]
        if not 0.0 <= probability <= 1.0:
            raise SimulationError(
                f"failure probability of {processor!r} must be in [0, 1], "
                f"got {probability!r}"
            )
    is_masked = _subset_verdicts(schedule, algorithm, detection, batched, engine)
    times = tuple(crash_times)
    reliability = 0.0
    masked_mass = 0.0
    guaranteed = 0.0
    evaluated = 0
    for size in range(len(processors) + 1):
        for subset in itertools.combinations(processors, size):
            evaluated += 1
            mass = 1.0
            for processor in processors:
                probability = failure_probabilities[processor]
                mass *= probability if processor in subset else 1.0 - probability
            if mass == 0.0:
                continue
            if size <= schedule.npf:
                guaranteed += mass
            if size == 0 or is_masked(subset, times):
                reliability += mass
                if size > 0:
                    masked_mass += mass
    return ReliabilityReport(
        reliability=min(reliability, 1.0),
        masked_probability_mass=masked_mass,
        evaluated_subsets=evaluated,
        guaranteed_lower_bound=min(guaranteed, 1.0),
    )


def mean_time_to_failure_iterations(
    per_iteration_reliability: float,
) -> float:
    """Expected number of iterations before the first unmasked failure.

    With independent iterations the iteration count to first failure is
    geometric: ``MTTF = 1 / (1 - R)`` (``inf`` for ``R = 1``).
    """
    if not 0.0 <= per_iteration_reliability <= 1.0:
        raise ValueError("reliability must be in [0, 1]")
    if per_iteration_reliability == 1.0:
        return math.inf
    return 1.0 / (1.0 - per_iteration_reliability)
