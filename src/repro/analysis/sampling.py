"""Analytic fault bounds and importance-sampled certification.

Past the exhaustive regime (``P > 12`` or ``L > 12`` the per-level
subset counts explode combinatorially), certification needs a verdict
that is *quantified* rather than merely truncated.  This module
provides the three layers the sampled certifier is built from:

1. **Closed-form fault bounds** (:func:`analytic_fault_bounds`), in the
   spirit of Goemans–Lynch–Saias' bracketing of the number of faults a
   system can withstand: the minimum replica count over all operations
   refutes every crash level that can silence some operation entirely,
   and a data dependency whose consumer replicas share no processor
   with any producer replica is refuted by breaking the links its
   transfers ride on.  Both come with a concrete witness subset and
   hold at crash instant 0 without simulating a single scenario.

2. **Involved-set projection.**  The batch engine reduces every crash
   subset to its intersection with the *involved* resources (the ones
   the schedule actually uses) before deciding anything — an exact
   theorem of the worklist semantics.  A level's masked count therefore
   decomposes as ``sum_k C(U, f-k) * masked(involved k-subsets)`` where
   ``U`` counts uninvolved resources: levels whose involved core is
   small are certified *exactly* at arbitrary ``P`` by enumerating only
   the core.  The same projection marginalizes uninvolved resources out
   of the reliability sum analytically.

3. **Stratified importance sampling** for whatever the bounds and the
   projection leave open.  Reliability strata are the involved failure
   counts ``(k procs, j links)``; each stratum's probability mass is a
   Poisson-binomial coefficient, small strata are enumerated exactly,
   large ones are sampled from the *conditional Bernoulli* distribution
   (importance-weighted by failure-probability mass by construction),
   optionally tilted toward large dirty cones with exact reweighting.
   Untilted strata get Wilson score intervals, tilted ones Hoeffding
   intervals on the weight range; unexplored tail strata are bracketed
   by ``[0, tail mass]`` so the reported interval is conservative.
   Adaptive refinement keeps drawing batches in the stratum with the
   largest mass-weighted width until the interval undercuts the target
   or the sample budget is hit.

Determinism: every random draw comes from a :class:`random.Random`
seeded by SHA-256 over the *schedule content hash*, the user seed and
the stratum label (:func:`derive_rng`) — verdicts are bit-for-bit
reproducible across hosts, worker counts and process boundaries, and
two schedules only share streams if they are byte-identical.
"""

from __future__ import annotations

import hashlib
import itertools
import math
import random
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

# ----------------------------------------------------------------------
# confidence intervals
# ----------------------------------------------------------------------

_Z_CACHE: dict[float, float] = {}


def normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF by bisection on ``math.erf``.

    Deterministic and dependency-free; accurate to ~1e-12, far below
    the statistical noise of any interval it parameterizes.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"quantile probability must be in (0, 1), got {p!r}")
    lo, hi = -40.0, 40.0
    for _ in range(200):
        mid = (lo + hi) / 2.0
        if 0.5 * (1.0 + math.erf(mid / math.sqrt(2.0))) < p:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def _z_value(confidence: float) -> float:
    z = _Z_CACHE.get(confidence)
    if z is None:
        z = normal_quantile((1.0 + confidence) / 2.0)
        _Z_CACHE[confidence] = z
    return z


def wilson_interval(
    successes: int, trials: int, confidence: float
) -> tuple[float, float]:
    """Wilson score interval for a Bernoulli proportion.

    Well-behaved at the boundaries (``p_hat`` of 0 or 1 still yields a
    non-degenerate interval), which matters here: masked fractions are
    usually extremely close to 1.
    """
    if trials <= 0:
        return (0.0, 1.0)
    z = _z_value(confidence)
    p_hat = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p_hat + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p_hat * (1.0 - p_hat) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return (max(0.0, centre - half), min(1.0, centre + half))


def hoeffding_interval(
    mean: float, trials: int, confidence: float, upper: float
) -> tuple[float, float]:
    """Hoeffding interval for a mean of i.i.d. values in ``[0, upper]``.

    Used for importance-weighted (cone-tilted) estimators whose samples
    are ``masked * weight`` with a computable worst-case weight.
    """
    if trials <= 0:
        return (0.0, max(1.0, upper))
    alpha = max(1e-12, 1.0 - confidence)
    half = upper * math.sqrt(math.log(2.0 / alpha) / (2.0 * trials))
    return (max(0.0, mean - half), mean + half)


# ----------------------------------------------------------------------
# Poisson binomial + conditional-Bernoulli sampling
# ----------------------------------------------------------------------

def poisson_binomial(probabilities: Sequence[float]) -> list[float]:
    """``mass[k]`` = P(exactly k of the independent Bernoullis fire)."""
    mass = [1.0]
    for q in probabilities:
        nxt = [0.0] * (len(mass) + 1)
        for k, m in enumerate(mass):
            nxt[k] += m * (1.0 - q)
            nxt[k + 1] += m * q
        mass = nxt
    return mass


class ConditionalSubsetSampler:
    """Draw ``k``-subsets of ``range(n)`` with inclusion odds ``o_i``,
    conditioned on exactly ``k`` inclusions (conditional Bernoulli).

    The suffix elementary-symmetric table ``E[i][j] = e_j(o_i..o_{n-1})``
    drives the classic sequential scheme: item ``i`` joins a draw that
    still needs ``r`` items with probability ``o_i E[i+1][r-1]/E[i][r]``.
    With the odds taken from the failure probabilities this *is* the
    true conditional distribution (weight 1); with tilted odds the
    caller reweights through :meth:`weight`.
    """

    def __init__(self, odds: Sequence[float]) -> None:
        scale = max(odds, default=0.0)
        self._odds = [o / scale if scale > 0 else 0.0 for o in odds]
        self._scale = scale if scale > 0 else 1.0
        self._n = len(odds)
        self._table: list[list[float]] | None = None
        self._kmax = -1

    def _ensure(self, k: int) -> list[list[float]]:
        if self._table is None or k > self._kmax:
            n = self._n
            table = [[0.0] * (k + 1) for _ in range(n + 1)]
            table[n][0] = 1.0
            for i in range(n - 1, -1, -1):
                table[i][0] = 1.0
                for j in range(1, k + 1):
                    table[i][j] = (
                        table[i + 1][j] + self._odds[i] * table[i + 1][j - 1]
                    )
            self._table = table
            self._kmax = k
        return self._table

    def elementary(self, k: int) -> float:
        """``e_k`` of the *scaled* odds (scale cancels in same-scale ratios)."""
        if k > self._n:
            return 0.0
        return self._ensure(k)[0][k]

    def draw(self, k: int, rng: random.Random) -> tuple[int, ...]:
        """One conditional draw: sorted indices of the chosen items."""
        if k > self._n:
            raise ValueError(f"cannot draw {k} of {self._n} items")
        table = self._ensure(k)
        chosen: list[int] = []
        remaining = k
        for i in range(self._n):
            if remaining == 0:
                break
            denominator = table[i][remaining]
            if denominator <= 0.0:
                continue
            take = (
                self._odds[i] * table[i + 1][remaining - 1] / denominator
            )
            if rng.random() < take:
                chosen.append(i)
                remaining -= 1
        if remaining:  # numeric corner: force-fill from the tail
            pool = [i for i in range(self._n) if i not in set(chosen)]
            chosen.extend(pool[-remaining:])
        return tuple(chosen)


# ----------------------------------------------------------------------
# deterministic RNG streams
# ----------------------------------------------------------------------

def derive_rng(content_hash: str, seed: int, stream: str) -> random.Random:
    """The sampled certifier's RNG stream derivation.

    ``SHA-256("repro-certify:<schedule content hash>:<seed>:<stream>")``
    truncated to 64 bits seeds a :class:`random.Random`.  The schedule
    content hash binds the stream to the exact schedule bytes (two
    different schedules can never share draws), the user seed selects
    independent replications, and the stream label separates strata so
    adaptive refinement of one stratum never perturbs another.
    """
    material = f"repro-certify:{content_hash}:{seed}:{stream}"
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


# ----------------------------------------------------------------------
# closed-form fault bounds
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FaultBounds:
    """Simulation-free brackets on the tolerable fault counts.

    ``min_replicas`` is the smallest distinct-host replica count over
    all scheduled operations: crashing those hosts at t = 0 silences
    the operation on every processor, so **every** crash level of size
    ``>= min_replicas`` contains a breaking subset — the schedule
    tolerates at most ``min_replicas - 1`` processor crashes.
    ``link_cut`` (when not ``None``) is the smallest link cut of a data
    dependency none of whose consumer replicas is co-located with a
    producer replica: breaking those links at t = 0 starves every
    consumer replica, refuting all link levels of size ``>= link_cut``.
    Both witnesses are valid whenever the crash instant 0 is part of
    the hypothesis (a subset is masked only if masked at *every*
    requested instant).
    """

    min_replicas: int
    witness_operation: str
    processor_witness: tuple[str, ...]
    link_cut: int | None
    link_witness: tuple[str, ...]
    link_witness_edge: tuple[str, str] | None
    involved_processors: int
    involved_links: int
    total_processors: int
    total_links: int

    @property
    def max_tolerable_processor_faults(self) -> int:
        """Upper bound: no schedule survives ``min_replicas`` targeted crashes."""
        return self.min_replicas - 1

    @property
    def max_tolerable_link_faults(self) -> int | None:
        """Upper bound on tolerable link failures (``None`` = no cut found)."""
        return None if self.link_cut is None else self.link_cut - 1


def analytic_fault_bounds(schedule) -> FaultBounds:
    """Compute :class:`FaultBounds` from schedule structure alone."""
    min_replicas = None
    witness_op = ""
    witness_hosts: tuple[str, ...] = ()
    for operation in schedule.scheduled_operations():
        hosts = tuple(
            sorted({event.processor for event in schedule.replicas_of(operation)})
        )
        if min_replicas is None or (len(hosts), operation) < (
            min_replicas, witness_op
        ):
            min_replicas = len(hosts)
            witness_op = operation
            witness_hosts = hosts
    if min_replicas is None:  # empty schedule: nothing to silence
        min_replicas = 0

    link_cut: int | None = None
    link_witness: tuple[str, ...] = ()
    witness_edge: tuple[str, str] | None = None
    edges = sorted({(c.source, c.target) for c in schedule.all_comms()})
    for source, target in edges:
        co_located = any(
            schedule.replica_on(source, event.processor) is not None
            for event in schedule.replicas_of(target)
        )
        if co_located:
            continue
        cut = tuple(
            sorted({c.link for c in schedule.comms_for_edge(source, target)})
        )
        if cut and (link_cut is None or (len(cut), (source, target)) < (
            link_cut, witness_edge
        )):
            link_cut = len(cut)
            link_witness = cut
            witness_edge = (source, target)

    involved_procs = {event.processor for event in schedule.all_operations()}
    for comm in schedule.all_comms():
        involved_procs.add(comm.source_processor)
        involved_procs.add(comm.target_processor)
    involved_links = {comm.link for comm in schedule.all_comms()}
    return FaultBounds(
        min_replicas=min_replicas,
        witness_operation=witness_op,
        processor_witness=witness_hosts,
        link_cut=link_cut,
        link_witness=link_witness,
        link_witness_edge=witness_edge,
        involved_processors=len(involved_procs),
        involved_links=len(involved_links),
        total_processors=len(schedule.processor_names()),
        total_links=len(schedule.link_names()),
    )


# ----------------------------------------------------------------------
# sampled certificate levels
# ----------------------------------------------------------------------

#: Cells (involved sub-populations) at most this large are enumerated
#: exactly inside an otherwise-sampled level — sampling only ever pays
#: for populations too big to sweep.
EXACT_CELL_CAP = 1024

#: Deterministic break-hunt candidates tested per sampled level before
#: any random draw: combinations of the largest-dirty-cone resources,
#: where a break (if one exists) is most likely to surface.
HUNT_LIMIT = 32

#: Default total sample budget of one sampled certificate.
DEFAULT_CERTIFICATE_BUDGET = 20_000

#: Default total sample budget of one sampled reliability estimate.
DEFAULT_RELIABILITY_BUDGET = 50_000

#: Adaptive refinement batch size.
BATCH = 128


@dataclass
class LevelEstimate:
    """Outcome of evaluating one (crash size, link size) level."""

    method: str                       # "exact" | "projected" | "bounds" | "sampled"
    masked_subsets: int               # exact count, or masked *samples* when sampled
    total_subsets: int                # true count, or drawn samples when sampled
    population: int                   # true level subset count (always)
    samples: int = 0
    estimate: float | None = None
    ci: tuple[float, float] | None = None
    breaking: list[tuple[tuple[str, ...], tuple[str, ...]]] | None = None


def _pad_witness(
    core: Sequence[str], size: int, population: Sequence[str]
) -> tuple[str, ...]:
    """Extend a witness core to exactly ``size`` names, canonically."""
    padded = list(core)
    have = set(core)
    for name in population:
        if len(padded) >= size:
            break
        if name not in have:
            padded.append(name)
            have.add(name)
    return tuple(sorted(padded))


@dataclass
class _Cell:
    """One ``(k involved procs, j involved links)`` slice of a level."""

    k: int
    j: int
    weight: int            # uninvolved-padding multiplicity C(Up, f-k)*C(Ul, l-j)
    count: int             # involved combinations C(Ip, k)*C(Il, j)
    drawn: int = 0
    masked: int = 0

    def share(self, level_total: int) -> float:
        return self.weight * self.count / level_total


def evaluate_level(
    *,
    size: int,
    link_size: int,
    oracle: Callable[..., bool],
    times: tuple[float, ...],
    processors: Sequence[str],
    links: Sequence[str],
    involved_procs: Sequence[str],
    involved_links: Sequence[str],
    proc_cone_rank: Sequence[str],
    level_cap: int,
    bounds: FaultBounds | None,
    confidence: float,
    epsilon: float,
    budget: int,
    rng: random.Random,
    force_sampled: bool = False,
) -> LevelEstimate:
    """Certify, refute or estimate one level of the certificate.

    Resolution order: exhaustive enumeration when the level fits under
    ``level_cap``; involved-set projection when the *core* fits (exact
    counts at arbitrary ``P``); analytic-bounds refutation when the
    level size reaches a witness (only if instant 0 is in the
    hypothesis); otherwise stratified uniform sampling over the cells
    with a deterministic large-cone break hunt first.
    """
    n_procs, n_links = len(processors), len(links)
    population = math.comb(n_procs, size) * math.comb(n_links, link_size)
    if population <= 0:
        return LevelEstimate("exact", 0, 0, 0)

    uninvolved_procs = [p for p in processors if p not in set(involved_procs)]
    uninvolved_links = [l for l in links if l not in set(involved_links)]
    ip, il = len(involved_procs), len(involved_links)
    up, ul = len(uninvolved_procs), len(uninvolved_links)

    def verdict(proc_core: Iterable[str], link_core: Iterable[str]) -> bool:
        return oracle(tuple(proc_core), times, tuple(link_core))

    # --- exhaustive ----------------------------------------------------
    if population <= level_cap and not force_sampled:
        masked = 0
        breaking: list[tuple[tuple[str, ...], tuple[str, ...]]] = []
        for subset in itertools.combinations(processors, size):
            for link_subset in itertools.combinations(links, link_size):
                if verdict(subset, link_subset):
                    masked += 1
                else:
                    breaking.append((subset, link_subset))
        return LevelEstimate(
            "exact", masked, population, population, breaking=breaking
        )

    # --- involved-set projection --------------------------------------
    cells = [
        _Cell(
            k,
            j,
            math.comb(up, size - k) * math.comb(ul, link_size - j),
            math.comb(ip, k) * math.comb(il, j),
        )
        for k in range(min(size, ip) + 1)
        for j in range(min(link_size, il) + 1)
        if size - k <= up and link_size - j <= ul
    ]
    cells = [cell for cell in cells if cell.weight > 0 and cell.count > 0]
    reduced_total = sum(cell.count for cell in cells)
    if reduced_total <= level_cap and not force_sampled:
        masked_total = 0
        breaking = []
        for cell in cells:
            for core in itertools.combinations(involved_procs, cell.k):
                for link_core in itertools.combinations(involved_links, cell.j):
                    if verdict(core, link_core):
                        masked_total += cell.weight
                    else:
                        breaking.append((
                            _pad_witness(core, size, uninvolved_procs),
                            _pad_witness(link_core, link_size, uninvolved_links),
                        ))
        return LevelEstimate(
            "projected", masked_total, population, population,
            breaking=breaking,
        )

    # --- analytic-bounds refutation -----------------------------------
    if bounds is not None and 0.0 in times:
        if size >= bounds.min_replicas > 0:
            witness = (
                _pad_witness(bounds.processor_witness, size, processors),
                _pad_witness((), link_size, links),
            )
            return LevelEstimate(
                "bounds", 0, 1, population, breaking=[witness]
            )
        if (
            bounds.link_cut is not None
            and link_size >= bounds.link_cut
        ):
            witness = (
                _pad_witness((), size, processors),
                _pad_witness(bounds.link_witness, link_size, links),
            )
            return LevelEstimate(
                "bounds", 0, 1, population, breaking=[witness]
            )

    # --- stratified sampling ------------------------------------------
    breaking = []
    exact_share = 0.0       # mass share resolved exactly
    exact_masked_share = 0.0
    sampled_cells: list[_Cell] = []
    for cell in cells:
        if cell.count <= (0 if force_sampled else EXACT_CELL_CAP) or cell.count == 1:
            masked = 0
            for core in itertools.combinations(involved_procs, cell.k):
                for link_core in itertools.combinations(involved_links, cell.j):
                    if verdict(core, link_core):
                        masked += 1
                    elif len(breaking) < 8:
                        breaking.append((
                            _pad_witness(core, size, uninvolved_procs),
                            _pad_witness(link_core, link_size, uninvolved_links),
                        ))
            exact_share += cell.share(population)
            exact_masked_share += cell.share(population) * masked / cell.count
        else:
            sampled_cells.append(cell)

    # Deterministic break hunt: combinations of the largest-cone
    # resources, the subsets most likely to break if any do.  Hunt
    # verdicts are *evidence only* (possibly biased toward breaks), so
    # they never enter the estimate.
    hunted = 0
    for cell in sampled_cells:
        if hunted >= HUNT_LIMIT:
            break
        ranked = [p for p in proc_cone_rank if p in set(involved_procs)]
        for core in itertools.islice(
            itertools.combinations(ranked, cell.k), HUNT_LIMIT - hunted
        ):
            hunted += 1
            link_core = tuple(involved_links[: cell.j])
            if not verdict(core, link_core) and len(breaking) < 8:
                breaking.append((
                    _pad_witness(core, size, uninvolved_procs),
                    _pad_witness(link_core, link_size, uninvolved_links),
                ))

    drawn_total = 0
    cell_confidence = 1.0 - max(
        1e-12, (1.0 - confidence) / max(1, len(sampled_cells))
    )
    if sampled_cells:

        def draw_batch(cell: _Cell, n: int) -> None:
            nonlocal drawn_total
            for _ in range(n):
                core = tuple(
                    sorted(rng.sample(list(involved_procs), cell.k))
                )
                link_core = tuple(
                    sorted(rng.sample(list(involved_links), cell.j))
                )
                cell.drawn += 1
                drawn_total += 1
                if verdict(core, link_core):
                    cell.masked += 1
                elif len(breaking) < 8:
                    breaking.append((
                        _pad_witness(core, size, uninvolved_procs),
                        _pad_witness(link_core, link_size, uninvolved_links),
                    ))

        def interval(cell: _Cell) -> tuple[float, float]:
            return wilson_interval(cell.masked, cell.drawn, cell_confidence)

        for cell in sampled_cells:
            draw_batch(cell, min(BATCH, max(1, budget // len(sampled_cells))))
        while drawn_total < budget:
            widths = [
                (cell.share(population) * (interval(cell)[1] - interval(cell)[0]),
                 index)
                for index, cell in enumerate(sampled_cells)
            ]
            width_total = sum(w for w, _ in widths)
            if width_total <= epsilon:
                break
            _, worst = max(widths)
            draw_batch(
                sampled_cells[worst], min(BATCH, budget - drawn_total)
            )

    estimate = exact_masked_share
    lo = exact_masked_share
    hi = exact_masked_share
    for cell in sampled_cells:
        share = cell.share(population)
        cell_lo, cell_hi = wilson_interval(
            cell.masked, cell.drawn, cell_confidence
        )
        estimate += share * (cell.masked / cell.drawn if cell.drawn else 0.5)
        lo += share * cell_lo
        hi += share * cell_hi
    return LevelEstimate(
        "sampled",
        sum(cell.masked for cell in sampled_cells),
        drawn_total,
        population,
        samples=drawn_total,
        estimate=min(1.0, estimate),
        ci=(max(0.0, lo), min(1.0, hi)),
        breaking=breaking,
    )


# ----------------------------------------------------------------------
# sampled reliability
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SampledReliability:
    """Stratified estimate of the all-outputs-delivered probability."""

    reliability: float
    ci: tuple[float, float]
    confidence: float
    samples: int
    evaluated_subsets: int
    exhaustive_subsets: int
    masked_probability_mass: float
    guaranteed_lower_bound: float
    tail_mass: float


@dataclass
class _Stratum:
    """One ``(k involved proc failures, j involved link failures)`` slab."""

    k: int
    j: int
    mass: float
    count: int
    drawn: int = 0
    weighted_masked: float = 0.0
    masked_draws: int = 0
    weight_bound: float = 1.0
    tilted: bool = False


def _partition(
    names: Sequence[str], probabilities: Mapping[str, float]
) -> tuple[list[str], list[str], list[float]]:
    """Split into (always failing, random) and the random items' odds."""
    always = [n for n in names if probabilities[n] >= 1.0]
    rand = [n for n in names if 0.0 < probabilities[n] < 1.0]
    odds = [
        probabilities[n] / (1.0 - probabilities[n]) for n in rand
    ]
    return always, rand, odds


def sampled_reliability(
    *,
    schedule,
    oracle: Callable[..., bool],
    baseline_delivered: bool,
    failure_probabilities: Mapping[str, float],
    times: tuple[float, ...],
    involved_procs: Sequence[str],
    involved_links: Sequence[str],
    proc_cone_fractions: Mapping[str, float],
    link_cone_fractions: Mapping[str, float],
    link_failure_probabilities: Mapping[str, float] | None = None,
    confidence: float = 0.99,
    epsilon: float = 0.005,
    budget: int = DEFAULT_RELIABILITY_BUDGET,
    seed: int = 0,
    content_hash: str = "",
    npf: int = 0,
    npl: int = 0,
    cone_tilt: float = 0.0,
    force_sampled: bool = False,
) -> SampledReliability:
    """Estimate reliability with a confidence interval, adaptively.

    Strata are the joint involved failure counts; uninvolved resources
    marginalize out of the sum exactly (the masking verdict depends
    only on the involved core — the batch engine's own reduction
    theorem).  ``cone_tilt > 0`` tilts each in-stratum draw's inclusion
    odds by ``1 + cone_tilt * cone_fraction`` with exact importance
    reweighting — more draws land on large-dirty-cone subsets, the ones
    most likely to break — at the price of Hoeffding (rather than
    Wilson) intervals over the weight range.
    """
    processors = schedule.processor_names()
    links = (
        schedule.link_names()
        if link_failure_probabilities is not None
        else ()
    )
    exhaustive = 2 ** (len(processors) + len(links))

    # Guaranteed lower bound: the paper's theorem, in closed form.
    proc_mass = poisson_binomial(
        [failure_probabilities[p] for p in processors]
    )
    guaranteed = sum(proc_mass[: npf + 1])
    if links:
        link_mass_all = poisson_binomial(
            [link_failure_probabilities[l] for l in links]
        )
        guaranteed *= sum(link_mass_all[: npl + 1])

    # Mass of the truly-empty scenario (counts as delivered by
    # convention, matching the exhaustive sum).
    empty_mass = 1.0
    for p in processors:
        empty_mass *= 1.0 - failure_probabilities[p]
    for l in links:
        empty_mass *= 1.0 - link_failure_probabilities[l]

    inv_procs = list(involved_procs)
    inv_links = list(involved_links) if links else []
    p_always, p_rand, p_odds = _partition(inv_procs, failure_probabilities)
    l_always, l_rand, l_odds = (
        _partition(inv_links, link_failure_probabilities)
        if links
        else ([], [], [])
    )
    proc_strata_mass = poisson_binomial(
        [failure_probabilities[p] for p in inv_procs]
    )
    link_strata_mass = (
        poisson_binomial([link_failure_probabilities[l] for l in inv_links])
        if links
        else [1.0]
    )

    def cell_mass(k: int, j: int) -> float:
        pk = proc_strata_mass[k] if k < len(proc_strata_mass) else 0.0
        lj = link_strata_mass[j] if j < len(link_strata_mass) else 0.0
        return pk * lj

    # Mass of involved-core-empty scenarios: every subset in it reduces
    # to the baseline — delivered iff the baseline delivers — except
    # the truly-empty scenario which counts as delivered by convention.
    core_empty = cell_mass(0, 0)
    exact_contribution = core_empty if baseline_delivered else empty_mass
    evaluated = 1

    # Enumerate candidate strata by descending mass until the ignored
    # tail is negligible against the interval target.
    candidates = [
        (k, j)
        for k in range(len(inv_procs) + 1)
        for j in range(len(inv_links) + 1)
        if (k, j) != (0, 0)
    ]
    candidates.sort(key=lambda kj: (-cell_mass(*kj), kj))
    tail_target = max(epsilon / 10.0, 1e-15)
    covered = core_empty
    strata: list[_Stratum] = []
    for k, j in candidates:
        mass = cell_mass(k, j)
        if 1.0 - covered <= tail_target:
            break
        if mass <= 0.0:
            continue
        kr, jr = k - len(p_always), j - len(l_always)
        if kr < 0 or jr < 0 or kr > len(p_rand) or jr > len(l_rand):
            continue  # inconsistent with always-failing resources: mass 0
        count = math.comb(len(p_rand), kr) * math.comb(len(l_rand), jr)
        strata.append(_Stratum(k, j, mass, count))
        covered += mass
    tail_mass = max(0.0, 1.0 - covered)

    def conditional_core_mass(core: Sequence[str], names: Sequence[str],
                              probs: Mapping[str, float]) -> float:
        mass = 1.0
        in_core = set(core)
        for name in names:
            q = probs[name]
            mass *= q if name in in_core else 1.0 - q
        return mass

    exact_cap = 0 if force_sampled else EXACT_CELL_CAP
    sampled_strata: list[_Stratum] = []
    samplers: dict[int, tuple] = {}
    samples_drawn = 0
    for stratum in strata:
        kr = stratum.k - len(p_always)
        jr = stratum.j - len(l_always)
        if stratum.count <= max(1, exact_cap):
            # Exact slab: full conditional enumeration.
            masked_mass = 0.0
            for core in itertools.combinations(p_rand, kr):
                proc_core = tuple(sorted(set(core) | set(p_always)))
                pm = conditional_core_mass(proc_core, inv_procs,
                                           failure_probabilities)
                for link_core_r in itertools.combinations(l_rand, jr):
                    link_core = tuple(
                        sorted(set(link_core_r) | set(l_always))
                    )
                    lm = (
                        conditional_core_mass(
                            link_core, inv_links, link_failure_probabilities
                        )
                        if links
                        else 1.0
                    )
                    evaluated += 1
                    if oracle(proc_core, times, link_core):
                        masked_mass += pm * lm
            exact_contribution += masked_mass
            stratum.drawn = -1  # marker: resolved exactly
        else:
            tilt_p = [
                1.0 + cone_tilt * proc_cone_fractions.get(p, 0.0)
                for p in p_rand
            ]
            tilt_l = [
                1.0 + cone_tilt * link_cone_fractions.get(l, 0.0)
                for l in l_rand
            ]
            tilted = cone_tilt > 0.0 and (
                any(t > 1.0 for t in tilt_p) or any(t > 1.0 for t in tilt_l)
            )
            base_p = ConditionalSubsetSampler(p_odds)
            base_l = ConditionalSubsetSampler(l_odds)
            prop_p = (
                ConditionalSubsetSampler(
                    [o * t for o, t in zip(p_odds, tilt_p)]
                )
                if tilted
                else base_p
            )
            prop_l = (
                ConditionalSubsetSampler(
                    [o * t for o, t in zip(l_odds, tilt_l)]
                )
                if tilted
                else base_l
            )
            if tilted:
                # w(S) = [e_k(o)/e_k(õ)]^-1 ... exact per-draw weight is
                # prefactor * prod(1/t_i); the worst case takes the k
                # (j) smallest tilts.
                prefactor = 1.0
                if kr:
                    prefactor *= prop_p.elementary(kr) / max(
                        base_p.elementary(kr), 1e-300
                    )
                if jr:
                    prefactor *= prop_l.elementary(jr) / max(
                        base_l.elementary(jr), 1e-300
                    )
                smallest_p = sorted(tilt_p)[:kr]
                smallest_l = sorted(tilt_l)[:jr]
                bound = prefactor
                for t in smallest_p + smallest_l:
                    bound /= t
                stratum.weight_bound = bound
                stratum.tilted = True
            samplers[id(stratum)] = (
                base_p, base_l, prop_p, prop_l, tilt_p, tilt_l, kr, jr,
                derive_rng(
                    content_hash, seed, f"rel:{stratum.k}:{stratum.j}"
                ),
            )
            sampled_strata.append(stratum)

    alpha_each = (
        max(1e-12, (1.0 - confidence) / len(sampled_strata))
        if sampled_strata
        else 1.0 - confidence
    )
    stratum_confidence = 1.0 - alpha_each

    def draw_batch(stratum: _Stratum, n: int) -> None:
        nonlocal samples_drawn, evaluated
        (base_p, base_l, prop_p, prop_l, tilt_p, tilt_l, kr, jr, rng) = (
            samplers[id(stratum)]
        )
        for _ in range(n):
            idx_p = prop_p.draw(kr, rng) if kr else ()
            idx_l = prop_l.draw(jr, rng) if jr else ()
            proc_core = tuple(
                sorted({p_rand[i] for i in idx_p} | set(p_always))
            )
            link_core = tuple(
                sorted({l_rand[i] for i in idx_l} | set(l_always))
            )
            weight = 1.0
            if stratum.tilted:
                weight = 1.0
                if kr:
                    weight *= prop_p.elementary(kr) / max(
                        base_p.elementary(kr), 1e-300
                    )
                if jr:
                    weight *= prop_l.elementary(jr) / max(
                        base_l.elementary(jr), 1e-300
                    )
                for i in idx_p:
                    weight /= tilt_p[i]
                for i in idx_l:
                    weight /= tilt_l[i]
            stratum.drawn += 1
            samples_drawn += 1
            evaluated += 1
            if oracle(proc_core, times, link_core):
                stratum.weighted_masked += weight
                stratum.masked_draws += 1

    def interval(stratum: _Stratum) -> tuple[float, float]:
        if stratum.drawn <= 0:
            return (0.0, 1.0)
        if stratum.tilted:
            mean = stratum.weighted_masked / stratum.drawn
            lo, hi = hoeffding_interval(
                mean, stratum.drawn, stratum_confidence,
                max(1.0, stratum.weight_bound),
            )
            return (lo, min(1.0, hi))
        return wilson_interval(
            stratum.masked_draws, stratum.drawn, stratum_confidence
        )

    if sampled_strata:
        initial = max(32, min(BATCH, budget // max(1, len(sampled_strata))))
        for stratum in sampled_strata:
            draw_batch(stratum, min(initial, max(0, budget - samples_drawn)))
        while samples_drawn < budget:
            widths = [
                (s.mass * (interval(s)[1] - interval(s)[0]), index)
                for index, s in enumerate(sampled_strata)
            ]
            if sum(w for w, _ in widths) + tail_mass <= epsilon:
                break
            _, worst = max(widths)
            draw_batch(
                sampled_strata[worst],
                min(BATCH, budget - samples_drawn),
            )

    point = exact_contribution
    lo_total = exact_contribution
    hi_total = exact_contribution + tail_mass
    for stratum in sampled_strata:
        s_lo, s_hi = interval(stratum)
        mean = (
            stratum.weighted_masked / stratum.drawn if stratum.drawn else 0.5
        )
        point += stratum.mass * mean
        lo_total += stratum.mass * s_lo
        hi_total += stratum.mass * s_hi
    point = min(1.0, max(0.0, point))
    return SampledReliability(
        reliability=point,
        ci=(min(1.0, max(0.0, lo_total)), min(1.0, max(0.0, hi_total))),
        confidence=confidence,
        samples=samples_drawn,
        evaluated_subsets=evaluated,
        exhaustive_subsets=exhaustive,
        masked_probability_mass=max(0.0, point - empty_mass),
        guaranteed_lower_bound=min(guaranteed, 1.0),
        tail_mass=tail_mass,
    )
