"""Experiment harness regenerating the paper's evaluation (section 6).

Every function returns plain dataclasses so the benchmarks, the CLI and
the tests can all print or assert on the same structures.  All sweeps
are seeded and deterministic.

The large statistical sweeps (Figures 9 and 10) run *through* the
campaign subsystem (:mod:`repro.campaign`): each sweep point becomes a
campaign over the point's random-graph seeds, so the sweeps share the
worker pool, the result store and the content-addressed schedule cache.
``jobs=1`` (the default) executes sequentially in-process and produces
bit-identical numbers to the pre-campaign harness; ``jobs=N`` fans the
graphs out over ``N`` worker processes without changing any result
(each graph's measurements are independent and deterministic).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.analysis.metrics import degraded_lengths, overhead_percent
from repro.baselines.hbp import schedule_hbp
from repro.baselines.list_scheduler import (
    schedule_basic,
    schedule_non_fault_tolerant,
)
from repro.core.ftbar import schedule_ftbar
from repro.core.options import SchedulerOptions
from repro.problem import ProblemSpec
from repro.workloads.paper_example import build_problem
from repro.workloads.random_dag import RandomWorkloadConfig, generate_problem


@dataclass
class OverheadPoint:
    """One x-position of an overhead curve, averaged over many graphs."""

    x: float
    ftbar_absence: float
    ftbar_presence: float
    hbp_absence: float
    hbp_presence: float
    graphs: int


@dataclass
class OverheadSweep:
    """A full curve: Figure 9 (x = N) or Figure 10 (x = CCR)."""

    parameter: str
    points: list[OverheadPoint] = field(default_factory=list)


def _average(values: list[float]) -> float:
    return statistics.fmean(values) if values else 0.0


@dataclass
class _GraphOverheads:
    """Per-graph measurements feeding one sweep point."""

    ftbar_absence: float
    hbp_absence: float
    ftbar_presence: dict[str, float]
    hbp_presence: dict[str, float]


def _overheads_for_problem(problem: ProblemSpec) -> _GraphOverheads:
    """Absence and per-crashed-processor presence overheads of one graph.

    *Absence* compares static schedule lengths.  *Presence* follows the
    paper (section 6.2): simulate the crash of each processor at time 0
    and measure the degraded schedule length; the sweep then averages
    each processor's overhead over the graphs and plots the max over the
    processors.
    """
    non_ft = schedule_non_fault_tolerant(problem)
    non_ft_length = non_ft.makespan

    ftbar = schedule_ftbar(problem)
    ftbar_crash = degraded_lengths(ftbar.schedule, ftbar.expanded_algorithm)
    hbp = schedule_hbp(problem)
    hbp_crash = degraded_lengths(hbp.schedule, problem.algorithm)
    return _GraphOverheads(
        ftbar_absence=overhead_percent(ftbar.makespan, non_ft_length),
        hbp_absence=overhead_percent(hbp.makespan, non_ft_length),
        ftbar_presence={
            processor: overhead_percent(length, non_ft_length)
            for processor, length in ftbar_crash.items()
        },
        hbp_presence={
            processor: overhead_percent(length, non_ft_length)
            for processor, length in hbp_crash.items()
        },
    )


def _overheads_from_record(record: dict) -> _GraphOverheads:
    """Map one campaign record onto :class:`_GraphOverheads`.

    The campaign executor measures exactly what
    :func:`_overheads_for_problem` measures (same scheduler calls, same
    defaults), so the derived overheads are bit-identical.
    """
    non_ft_length = record["non_ft"]["makespan"]
    return _GraphOverheads(
        ftbar_absence=overhead_percent(record["ftbar"]["makespan"], non_ft_length),
        hbp_absence=overhead_percent(record["hbp"]["makespan"], non_ft_length),
        ftbar_presence={
            processor: overhead_percent(length, non_ft_length)
            for processor, length in record["degraded"]["ftbar"].items()
        },
        hbp_presence={
            processor: overhead_percent(length, non_ft_length)
            for processor, length in record["degraded"]["hbp"].items()
        },
    )


def _sweep_point_measurements(
    name: str,
    operations: int,
    ccr: float,
    processors: int,
    seeds: tuple[int, ...],
    jobs: int,
) -> list[_GraphOverheads]:
    """Measure one sweep point's graphs through the campaign runner."""
    # Imported lazily: repro.campaign imports repro.analysis.metrics, so a
    # module-level import here would be circular.
    from repro.campaign.runner import run_campaign
    from repro.campaign.spec import CampaignSpec, WorkloadSpec

    spec = CampaignSpec(
        name=name,
        workloads=(WorkloadSpec(family="random", size=operations),),
        topologies=("fully_connected",),
        processors=(processors,),
        npfs=(1,),
        ccrs=(ccr,),
        seeds=seeds,
        measures=("ftbar", "non_ft", "hbp", "degraded"),
    )
    report = run_campaign(spec, jobs=jobs)
    if report.interrupted:
        # Propagate the Ctrl-C the runner absorbed: a partial point must
        # abort the sweep, not be silently averaged into the figure.
        raise KeyboardInterrupt
    return [_overheads_from_record(r) for r in report.records_in_order()]


def _presence_max_of_averages(per_graph: list[dict[str, float]]) -> float:
    """Average each processor's overhead over the graphs, keep the max."""
    processors = per_graph[0].keys() if per_graph else ()
    return max(
        (_average([graph[p] for graph in per_graph]) for p in processors),
        default=0.0,
    )


def run_overhead_vs_operations(
    operation_counts: tuple[int, ...] = (10, 20, 30, 40, 50, 60, 70, 80),
    ccr: float = 5.0,
    processors: int = 4,
    graphs_per_point: int = 60,
    seed: int = 2003,
    jobs: int = 1,
) -> OverheadSweep:
    """Figure 9: average overhead as a function of ``N`` (``CCR = 5``)."""
    sweep = OverheadSweep(parameter="N")
    for n in operation_counts:
        measurements = _sweep_point_measurements(
            name=f"figure9-N{n}",
            operations=n,
            ccr=ccr,
            processors=processors,
            seeds=tuple(
                seed + 1000 * index + n for index in range(graphs_per_point)
            ),
            jobs=jobs,
        )
        sweep.points.append(
            OverheadPoint(
                x=float(n),
                ftbar_absence=_average([m.ftbar_absence for m in measurements]),
                ftbar_presence=_presence_max_of_averages(
                    [m.ftbar_presence for m in measurements]
                ),
                hbp_absence=_average([m.hbp_absence for m in measurements]),
                hbp_presence=_presence_max_of_averages(
                    [m.hbp_presence for m in measurements]
                ),
                graphs=graphs_per_point,
            )
        )
    return sweep


def run_overhead_vs_ccr(
    ccrs: tuple[float, ...] = (0.1, 0.5, 1.0, 2.0, 5.0, 10.0),
    operations: int = 50,
    processors: int = 4,
    graphs_per_point: int = 60,
    seed: int = 2003,
    jobs: int = 1,
) -> OverheadSweep:
    """Figure 10: average overhead as a function of ``CCR`` (``N = 50``)."""
    sweep = OverheadSweep(parameter="CCR")
    for ccr in ccrs:
        measurements = _sweep_point_measurements(
            name=f"figure10-ccr{ccr:g}",
            operations=operations,
            ccr=ccr,
            processors=processors,
            seeds=tuple(
                seed + 1000 * index + int(10 * ccr)
                for index in range(graphs_per_point)
            ),
            jobs=jobs,
        )
        sweep.points.append(
            OverheadPoint(
                x=ccr,
                ftbar_absence=_average([m.ftbar_absence for m in measurements]),
                ftbar_presence=_presence_max_of_averages(
                    [m.ftbar_presence for m in measurements]
                ),
                hbp_absence=_average([m.hbp_absence for m in measurements]),
                hbp_presence=_presence_max_of_averages(
                    [m.hbp_presence for m in measurements]
                ),
                graphs=graphs_per_point,
            )
        )
    return sweep


# ----------------------------------------------------------------------
# E1: the worked example
# ----------------------------------------------------------------------

@dataclass
class PaperExampleResults:
    """Every number section 4.3/4.4 reports for the worked example."""

    ft_length: float
    basic_length: float
    non_ft_length: float
    overhead: float
    degraded: dict[str, float]
    rtc_satisfied: bool
    replicas: int
    comms: int


def run_paper_example() -> PaperExampleResults:
    """Reproduce the worked example end to end (E1a–E1c)."""
    problem = build_problem()
    ftbar = schedule_ftbar(problem)
    basic = schedule_basic(problem)
    non_ft = schedule_non_fault_tolerant(problem)
    degraded = degraded_lengths(ftbar.schedule, ftbar.expanded_algorithm)
    return PaperExampleResults(
        ft_length=ftbar.makespan,
        basic_length=basic.makespan,
        non_ft_length=non_ft.makespan,
        overhead=ftbar.makespan - basic.makespan,
        degraded=degraded,
        rtc_satisfied=ftbar.rtc_satisfied,
        replicas=ftbar.schedule.replica_count(),
        comms=ftbar.schedule.comm_count(),
    )


# ----------------------------------------------------------------------
# E7: overhead versus Npf (heterogeneous, the paper's future-work claim)
# ----------------------------------------------------------------------

@dataclass
class NpfPoint:
    """Average overhead of one failure hypothesis."""

    npf: int
    overhead: float
    makespan: float
    graphs: int


def run_npf_sweep(
    npfs: tuple[int, ...] = (0, 1, 2, 3),
    operations: int = 30,
    ccr: float = 1.0,
    processors: int = 5,
    graphs_per_point: int = 20,
    seed: int = 2003,
) -> list[NpfPoint]:
    """Overhead growth with ``Npf`` on heterogeneous architectures (E7)."""
    points: list[NpfPoint] = []
    for npf in npfs:
        overheads: list[float] = []
        makespans: list[float] = []
        for index in range(graphs_per_point):
            problem = generate_problem(
                RandomWorkloadConfig(
                    operations=operations,
                    ccr=ccr,
                    processors=processors,
                    npf=npf,
                    heterogeneous=True,
                    seed=seed + 1000 * index,
                )
            )
            non_ft_length = schedule_non_fault_tolerant(problem).makespan
            result = schedule_ftbar(problem)
            overheads.append(overhead_percent(result.makespan, non_ft_length))
            makespans.append(result.makespan)
        points.append(
            NpfPoint(
                npf=npf,
                overhead=_average(overheads),
                makespan=_average(makespans),
                graphs=graphs_per_point,
            )
        )
    return points


# ----------------------------------------------------------------------
# E6: scheduling-time comparison (FTBAR is cheaper than HBP)
# ----------------------------------------------------------------------

@dataclass
class RuntimePoint:
    """Average scheduler wall time for one problem size."""

    operations: int
    ftbar_seconds: float
    hbp_seconds: float
    graphs: int


def run_runtime_comparison(
    operation_counts: tuple[int, ...] = (10, 20, 40, 60, 80),
    ccr: float = 1.0,
    processors: int = 4,
    graphs_per_point: int = 5,
    seed: int = 2003,
) -> list[RuntimePoint]:
    """Wall-clock scheduling time of FTBAR versus HBP (E6)."""
    points: list[RuntimePoint] = []
    for n in operation_counts:
        ftbar_times: list[float] = []
        hbp_times: list[float] = []
        for index in range(graphs_per_point):
            problem = generate_problem(
                RandomWorkloadConfig(
                    operations=n,
                    ccr=ccr,
                    processors=processors,
                    npf=1,
                    seed=seed + 1000 * index + n,
                )
            )
            ftbar_times.append(schedule_ftbar(problem).stats.wall_time_s)
            hbp_times.append(schedule_hbp(problem).stats.wall_time_s)
        points.append(
            RuntimePoint(
                operations=n,
                ftbar_seconds=_average(ftbar_times),
                hbp_seconds=_average(hbp_times),
                graphs=graphs_per_point,
            )
        )
    return points


# ----------------------------------------------------------------------
# E10: optimality gap on tiny instances
# ----------------------------------------------------------------------

@dataclass
class OptimalityGapPoint:
    """FTBAR vs the exhaustive best assignment on one tiny instance."""

    seed: int
    operations: int
    ftbar_makespan: float
    best_makespan: float
    assignments: int

    @property
    def gap_percent(self) -> float:
        """How far FTBAR lands above the best assignment (may be < 0)."""
        return (self.ftbar_makespan - self.best_makespan) / self.best_makespan * 100.0


def run_optimality_gap(
    operations: int = 6,
    ccr: float = 1.0,
    processors: int = 3,
    instances: int = 10,
    seed: int = 2003,
) -> list[OptimalityGapPoint]:
    """Measure FTBAR's gap to the exhaustive best assignment (E10).

    Only feasible on tiny instances (the assignment space is
    ``C(P, Npf+1) ** N``).  FTBAR can land *below* the reference when
    LIP duplication adds replicas the enumeration does not consider.
    """
    from repro.baselines.exhaustive import schedule_exhaustive

    points: list[OptimalityGapPoint] = []
    for index in range(instances):
        problem = generate_problem(
            RandomWorkloadConfig(
                operations=operations,
                ccr=ccr,
                processors=processors,
                npf=1,
                seed=seed + 1000 * index,
            )
        )
        ftbar = schedule_ftbar(problem)
        best = schedule_exhaustive(problem)
        points.append(
            OptimalityGapPoint(
                seed=seed + 1000 * index,
                operations=operations,
                ftbar_makespan=ftbar.makespan,
                best_makespan=best.makespan,
                assignments=best.assignments_tried,
            )
        )
    return points


# ----------------------------------------------------------------------
# E9: point-to-point links versus a shared bus (section 4.4)
# ----------------------------------------------------------------------

@dataclass
class BusComparisonPoint:
    """Average overheads of one CCR on both interconnects."""

    ccr: float
    p2p_overhead: float
    bus_overhead: float
    p2p_makespan: float
    bus_makespan: float
    graphs: int


def _bus_variant(problem: ProblemSpec) -> ProblemSpec:
    """The same workload on a single shared bus instead of p2p links.

    Transfer durations are preserved (the generator's homogeneous links
    all carry the same duration per edge), so the only change is the
    serialization of every comm on one medium.
    """
    from repro.hardware.topologies import single_bus
    from repro.timing.comm_times import CommunicationTimes

    processors = len(problem.architecture)
    bus_architecture = single_bus(processors)
    reference_link = problem.architecture.link_names()[0]
    bus_comm_times = CommunicationTimes()
    for edge in problem.algorithm.dependencies():
        bus_comm_times.set(
            edge, "BUS", problem.comm_times.time_of(edge, reference_link)
        )
    return ProblemSpec(
        algorithm=problem.algorithm,
        architecture=bus_architecture,
        exec_times=problem.exec_times,
        comm_times=bus_comm_times,
        npf=problem.npf,
        rtc=problem.rtc,
        name=f"{problem.name}-bus",
    )


def run_bus_comparison(
    ccrs: tuple[float, ...] = (0.5, 1.0, 2.0, 5.0),
    operations: int = 20,
    processors: int = 4,
    graphs_per_point: int = 5,
    seed: int = 2003,
) -> list[BusComparisonPoint]:
    """Section 4.4's remark, quantified: replicated comms on a shared
    bus serialize, so the fault-tolerance overhead grows compared to
    parallel point-to-point links.  Each interconnect is compared to
    its *own* non-fault-tolerant baseline.
    """
    points: list[BusComparisonPoint] = []
    for ccr in ccrs:
        p2p_overheads: list[float] = []
        bus_overheads: list[float] = []
        p2p_makespans: list[float] = []
        bus_makespans: list[float] = []
        for index in range(graphs_per_point):
            problem = generate_problem(
                RandomWorkloadConfig(
                    operations=operations,
                    ccr=ccr,
                    processors=processors,
                    npf=1,
                    seed=seed + 1000 * index + int(10 * ccr),
                )
            )
            bus_problem = _bus_variant(problem)
            p2p_ft = schedule_ftbar(problem)
            bus_ft = schedule_ftbar(bus_problem)
            p2p_non_ft = schedule_non_fault_tolerant(problem)
            bus_non_ft = schedule_non_fault_tolerant(bus_problem)
            p2p_overheads.append(
                overhead_percent(p2p_ft.makespan, p2p_non_ft.makespan)
            )
            bus_overheads.append(
                overhead_percent(bus_ft.makespan, bus_non_ft.makespan)
            )
            p2p_makespans.append(p2p_ft.makespan)
            bus_makespans.append(bus_ft.makespan)
        points.append(
            BusComparisonPoint(
                ccr=ccr,
                p2p_overhead=_average(p2p_overheads),
                bus_overhead=_average(bus_overheads),
                p2p_makespan=_average(p2p_makespans),
                bus_makespan=_average(bus_makespans),
                graphs=graphs_per_point,
            )
        )
    return points


# ----------------------------------------------------------------------
# E8: design-choice ablations
# ----------------------------------------------------------------------

@dataclass
class AblationPoint:
    """Average FT schedule length for one scheduler configuration."""

    label: str
    makespan: float
    overhead: float
    graphs: int


def run_ablation(
    operations: int = 30,
    ccr: float = 5.0,
    processors: int = 4,
    graphs_per_point: int = 10,
    seed: int = 2003,
    heterogeneous: bool = False,
) -> list[AblationPoint]:
    """Quantify the design choices (E8).

    LIP duplication matters at high CCR on any tables; the
    processor-aware pressure only separates from the paper's formula on
    *heterogeneous* tables (on homogeneous ones every processor runs an
    operation in the same time, so both formulas rank identically).
    """
    variants = {
        "ftbar (paper: duplication, append-only links)": SchedulerOptions(),
        "no duplication": SchedulerOptions(duplication=False),
        "link insertion": SchedulerOptions(link_insertion=True),
        "no duplication + link insertion": SchedulerOptions(
            duplication=False, link_insertion=True
        ),
        "processor-aware pressure": SchedulerOptions(
            processor_aware_pressure=True
        ),
    }
    problems = [
        generate_problem(
            RandomWorkloadConfig(
                operations=operations,
                ccr=ccr,
                processors=processors,
                npf=1,
                heterogeneous=heterogeneous,
                seed=seed + 1000 * index,
            )
        )
        for index in range(graphs_per_point)
    ]
    non_ft_lengths = [
        schedule_non_fault_tolerant(problem).makespan for problem in problems
    ]
    points: list[AblationPoint] = []
    for label, options in variants.items():
        makespans: list[float] = []
        overheads: list[float] = []
        for problem, non_ft_length in zip(problems, non_ft_lengths):
            result = schedule_ftbar(problem, options)
            makespans.append(result.makespan)
            overheads.append(overhead_percent(result.makespan, non_ft_length))
        points.append(
            AblationPoint(
                label=label,
                makespan=_average(makespans),
                overhead=_average(overheads),
                graphs=graphs_per_point,
            )
        )
    return points
