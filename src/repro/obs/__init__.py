"""Unified telemetry for the FTBAR reproduction: spans, metrics, traces.

One layer instruments every subsystem — the compiled kernel's phases,
the batched scenario engine, campaign job lifecycles, the CLI commands
— and exports three things through one pipeline:

* hierarchical timing **spans** (:mod:`repro.obs.spans`) on monotonic
  clocks, nested per thread;
* a **metrics registry** (:mod:`repro.obs.metrics`) of counters /
  gauges / histograms plus pull-collectors absorbing the pre-existing
  per-subsystem counters (``FTBARStats``, the compile-cache memos, the
  batch engine's :class:`~repro.simulation.batch.BatchStats`) behind
  one ``snapshot()``;
* a schema-versioned JSONL **trace** (:mod:`repro.obs.export`,
  :mod:`repro.obs.schema`) that also records structured warnings
  (``CompiledFallbackWarning``, ``CertificationCapWarning``) as
  events instead of stderr noise.

Off by default, on by request
-----------------------------
Tracing is **disabled** unless the process opts in — through the
``--trace [PATH]`` CLI flag or the ``REPRO_TRACE`` environment variable
(``1`` → ``repro-trace.jsonl`` in the working directory, any other
value → that path; ``0``/empty → off).  While disabled, ``tracer()``
returns ``None`` and ``span()`` returns the shared no-op span, so
instrumented hot paths cost one attribute read (the bound is pinned by
``benchmarks/bench_obs_overhead.py`` and CI's ``obs-smoke`` job at
< 2 % of a ``bench --smoke`` schedule run).

Determinism contract
--------------------
Telemetry observes and never feeds back: with tracing on, schedules,
evaluation counters, observer streams and content hashes are
bit-identical to an untraced run (pinned by ``tests/test_obs.py``).
All wall-clock data lives inside the trace stream and the volatile
``timing`` sections of job documents — never in deterministic records.

See ``docs/observability.md`` for the span taxonomy, metric names and
the trace schema.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path

from repro.obs.export import JsonlExporter, ListExporter, read_trace
from repro.obs.metrics import MetricsRegistry, registry as metrics
from repro.obs.schema import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    TRACE_LINE_SCHEMA,
    validate_line,
    validate_trace,
)
from repro.obs.spans import NOOP_SPAN, NoopSpan, Span, Tracer

__all__ = [
    "JsonlExporter",
    "ListExporter",
    "MetricsRegistry",
    "NOOP_SPAN",
    "NoopSpan",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "Span",
    "TRACE_LINE_SCHEMA",
    "Tracer",
    "aggregate_spans",
    "configure_from_env",
    "default_trace_path",
    "disable",
    "enable",
    "enabled",
    "event",
    "metrics",
    "read_trace",
    "scoped",
    "span",
    "tracer",
    "validate_line",
    "validate_trace",
    "worker_reset",
]

#: Default trace file when tracing is requested without a path.
_DEFAULT_TRACE = "repro-trace.jsonl"

#: The process-wide tracer; ``None`` = disabled (the fast path).
_TRACER: Tracer | None = None


def default_trace_path() -> Path:
    """Where ``REPRO_TRACE=1`` / bare ``--trace`` write their trace."""
    return Path(_DEFAULT_TRACE)


def enabled() -> bool:
    """True when a process-wide tracer is active."""
    return _TRACER is not None


def tracer() -> Tracer | None:
    """The active tracer, or ``None`` while tracing is disabled.

    Hot paths call this once per run and branch on ``None`` — that is
    the documented no-op fast path.
    """
    return _TRACER


def enable(target=None, *, meta: dict | None = None) -> Tracer:
    """Switch process-wide tracing on and return the tracer.

    ``target`` is a path (``str`` / ``Path``), an exporter object, or
    ``None`` for :func:`default_trace_path`.  Re-enabling while a
    tracer is active closes the previous one first (last call wins) —
    each enable starts a fresh stream with its own ``meta`` line.
    """
    global _TRACER
    if _TRACER is not None:
        disable()
    if target is None:
        target = default_trace_path()
    exporter = (
        JsonlExporter(target) if isinstance(target, (str, Path)) else target
    )
    _TRACER = Tracer(exporter, meta=meta)
    return _TRACER


def disable(*, snapshot: bool = True) -> None:
    """Switch tracing off, flushing a final metrics snapshot line."""
    global _TRACER
    active, _TRACER = _TRACER, None
    if active is not None:
        if snapshot:
            active.snapshot(metrics.snapshot())
        active.close()


def configure_from_env(environ=os.environ) -> Tracer | None:
    """Honor ``REPRO_TRACE`` (CLI entry points call this once).

    ``unset``/empty/``0``/``false``/``off`` → disabled; ``1``/``true``/
    ``on``/``yes`` → the default path; anything else → that path.
    """
    value = environ.get("REPRO_TRACE", "").strip()
    if not value or value.lower() in ("0", "false", "off"):
        return None
    if value.lower() in ("1", "true", "on", "yes"):
        return enable()
    return enable(value)


@contextmanager
def scoped(active: Tracer):
    """Temporarily install ``active`` as the process tracer.

    Campaign workers run each job under a private tracer bound to an
    in-memory exporter, so instrumented code below them (the scheduler,
    the batch engine) lands in the job's stream; the previous tracer —
    usually ``None`` — is restored on exit, untouched.
    """
    global _TRACER
    previous = _TRACER
    _TRACER = active
    try:
        yield active
    finally:
        _TRACER = previous


def worker_reset() -> None:
    """Drop tracer state inherited across ``fork`` (pool initializer).

    A forked worker shares the parent's trace file descriptor; writing
    (or closing) it from the child would corrupt the parent's stream,
    so the child simply forgets the tracer and starts its metrics from
    zero.  The parent's objects are untouched.
    """
    global _TRACER
    _TRACER = None
    metrics.reset()


def span(name: str, **attrs):
    """A span under the active tracer, or the no-op span when off.

    Convenience for cool paths; hot paths should cache
    :func:`tracer` in a local instead (one lookup per run, not per
    call).
    """
    active = _TRACER
    if active is None:
        return NOOP_SPAN
    return active.span(name, **attrs)


def event(name: str, **attrs) -> None:
    """Record an event when tracing is on (silently dropped when off)."""
    active = _TRACER
    if active is not None:
        active.event(name, **attrs)


def aggregate_spans(lines) -> list[dict]:
    """Fold trace lines into per-name totals (deterministic order).

    Returns ``[{"name", "total_s", "count"}, ...]`` sorted by name —
    the compact per-phase view campaign workers ship back inside job
    documents and ``BENCH_runtime.json``'s ``phase_breakdown`` records.
    Aggregate spans contribute their summed duration and count.
    """
    totals: dict[str, list[float]] = {}
    for line in lines:
        if line.get("type") != "span":
            continue
        entry = totals.setdefault(line["name"], [0.0, 0])
        entry[0] += line["dur"]
        entry[1] += line.get("agg", {}).get("count", 1)
    return [
        {"name": name, "total_s": entry[0], "count": entry[1]}
        for name, entry in sorted(totals.items())
    ]
