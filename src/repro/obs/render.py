"""Human renderers for recorded traces: ``repro trace`` / ``repro stats``.

Pure functions from parsed trace lines to text — no side effects, no
clock reads — so the CLI commands and the tests share one code path.
"""

from __future__ import annotations

import math


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f} s "
    return f"{seconds * 1e3:8.2f} ms"


def _spans(lines: list[dict]) -> list[dict]:
    return [line for line in lines if line.get("type") == "span"]


def stream_extent(lines: list[dict]) -> float:
    """Wall time the stream witnesses, on the trace's monotonic clock.

    From the meta line's ``started`` anchor (falling back to the
    earliest span start) to the last span end.
    """
    t0 = math.inf
    t1 = -math.inf
    for line in lines:
        if line.get("type") == "meta" and "started" in line:
            t0 = min(t0, line["started"])
        elif line.get("type") == "span" and "t0" in line:
            t0 = min(t0, line["t0"])
            t1 = max(t1, line["t1"])
        elif line.get("type") in ("event", "metrics"):
            t1 = max(t1, line["t"])
    if not math.isfinite(t0) or not math.isfinite(t1):
        return 0.0
    return max(0.0, t1 - t0)


def coverage(lines: list[dict]) -> float:
    """Fraction of the stream's wall extent covered by root spans.

    Root spans are real (non-aggregate) spans without a parent; their
    summed duration over the stream extent is the "did the span tree
    see the run" figure the acceptance criteria pin at >= 90 %.
    """
    extent = stream_extent(lines)
    if extent <= 0.0:
        return 0.0
    rooted = sum(
        line["dur"]
        for line in _spans(lines)
        if "parent" not in line and "agg" not in line
    )
    return min(1.0, rooted / extent)


def phase_table(lines: list[dict]) -> list[dict]:
    """Per-name aggregation of every span in the trace.

    Returns rows ``{"name", "count", "total_s", "self_s", "agg"}``
    sorted by total duration descending.  ``self_s`` is the total
    minus the time of real (non-aggregate) children — aggregate spans
    double-book time already inside their parents by design, so they
    are excluded from the subtraction and flagged.
    """
    spans = _spans(lines)
    child_time: dict[int, float] = {}
    for line in spans:
        parent = line.get("parent")
        if parent is not None and "agg" not in line:
            child_time[parent] = child_time.get(parent, 0.0) + line["dur"]
    rows: dict[str, dict] = {}
    for line in spans:
        row = rows.setdefault(
            line["name"],
            {"name": line["name"], "count": 0, "total_s": 0.0,
             "self_s": 0.0, "agg": False},
        )
        is_agg = "agg" in line
        row["count"] += line["agg"]["count"] if is_agg else 1
        row["total_s"] += line["dur"]
        row["agg"] = row["agg"] or is_agg
        row["self_s"] += line["dur"] - (
            0.0 if is_agg else child_time.get(line["id"], 0.0)
        )
    return sorted(rows.values(), key=lambda r: -r["total_s"])


def render_phase_table(lines: list[dict]) -> str:
    """The per-phase time-breakdown table of one trace."""
    rows = phase_table(lines)
    if not rows:
        return "trace contains no spans"
    extent = stream_extent(lines)
    out = [
        f"{'span':<28} {'count':>7} {'total':>11} {'self':>11} {'%wall':>6}",
        f"{'-' * 28} {'-' * 7} {'-' * 11} {'-' * 11} {'-' * 6}",
    ]
    for row in rows:
        share = 100.0 * row["total_s"] / extent if extent else 0.0
        marker = " (agg)" if row["agg"] else ""
        out.append(
            f"{row['name']:<28} {row['count']:>7} {_fmt_s(row['total_s'])}"
            f" {_fmt_s(row['self_s'])} {share:5.1f}%{marker}"
        )
    out.append("")
    out.append(
        f"span coverage: {coverage(lines):.1%} of {extent:.3f}s wall extent"
        " (aggregates book time inside their parents and are excluded)"
    )
    return "\n".join(out)


def render_tree(lines: list[dict], max_depth: int = 4) -> str:
    """The span tree, siblings of one name collapsed into one row."""
    spans = [line for line in _spans(lines) if "agg" not in line]
    by_parent: dict[int | None, list[dict]] = {}
    for line in spans:
        by_parent.setdefault(line.get("parent"), []).append(line)

    out: list[str] = []

    def emit(parent: int | None, depth: int) -> None:
        if depth > max_depth:
            return
        groups: dict[str, list[dict]] = {}
        for line in by_parent.get(parent, ()):
            groups.setdefault(line["name"], []).append(line)
        ordered = sorted(
            groups.items(), key=lambda kv: min(s["t0"] for s in kv[1])
        )
        for name, members in ordered:
            total = sum(line["dur"] for line in members)
            count = f" x{len(members)}" if len(members) > 1 else ""
            out.append(f"{'  ' * depth}{name}{count}  {_fmt_s(total).strip()}")
            if len(members) == 1:
                emit(members[0]["id"], depth + 1)

    emit(None, 0)
    return "\n".join(out) if out else "trace contains no spans"


def render_events(lines: list[dict]) -> str:
    """Recorded events, one line each (empty string when none)."""
    events = [line for line in lines if line.get("type") == "event"]
    if not events:
        return ""
    out = ["events:"]
    for line in events:
        attrs = line.get("attrs", {})
        detail = ", ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
        out.append(f"  t={line['t']:.6f}  {line['name']}"
                   + (f"  ({detail})" if detail else ""))
    return "\n".join(out)


def last_snapshot(lines: list[dict]) -> dict | None:
    """The final metrics snapshot of a trace (None when absent)."""
    snapshot = None
    for line in lines:
        if line.get("type") == "metrics":
            snapshot = line["snapshot"]
    return snapshot


def render_snapshot(snapshot: dict) -> str:
    """Render one metrics snapshot as sectioned key/value tables."""
    out: list[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        out.append("counters:")
        out += [
            f"  {name:<44} {counters[name]:>14g}"
            for name in sorted(counters)
        ]
    gauges = snapshot.get("gauges", {})
    if gauges:
        out.append("gauges:")
        out += [
            f"  {name:<44} {gauges[name]:>14g}" for name in sorted(gauges)
        ]
    histograms = snapshot.get("histograms", {})
    if histograms:
        out.append("histograms:")
        for name in sorted(histograms):
            h = histograms[name]
            mean = h["sum"] / h["count"] if h["count"] else 0.0
            out.append(
                f"  {name:<38} n={h['count']:<7g} mean={mean:<12.6g} "
                f"min={h['min']:<12.6g} max={h['max']:<12.6g}"
            )
    collected = snapshot.get("collected", {})
    for source in sorted(collected):
        out.append(f"{source}:")
        values = collected[source]
        out += [
            f"  {key:<44} {values[key]!s:>14}" for key in sorted(values)
        ]
    return "\n".join(out) if out else "snapshot is empty"


def progress_line(
    name: str,
    done: int,
    total: int,
    *,
    rate: float | None = None,
    workers: dict[str, int] | None = None,
) -> str:
    """One campaign progress line shared by every live view.

    Used by the trace renderer's :func:`campaign_progress` and by
    ``ftbar campaign status --watch``, so "how far along is this
    campaign" reads identically whether it comes from a recorded trace
    or a live poll of the store and shards.
    """
    percent = 100.0 * done / total if total else 100.0
    line = f"{name}: {done}/{total} jobs ({percent:.0f}%)"
    if rate is not None:
        line += f", {rate:.2f} jobs/s"
    if workers:
        counts = ", ".join(
            f"{worker}: {count}" for worker, count in sorted(workers.items())
        )
        line += f" — workers: {counts}"
    return line


def campaign_progress(lines: list[dict]) -> str:
    """Throughput summary of a traced campaign run (empty when none).

    Sourced from the ``campaign.job`` events the runner emits per
    completed job: job count, wall span, jobs/s, and per-worker-pid
    job counts (the heartbeat view).
    """
    jobs = [
        line for line in lines
        if line.get("type") == "event" and line.get("name") == "campaign.job"
    ]
    if not jobs:
        return ""
    t0 = min(line["t"] for line in jobs)
    t1 = max(line["t"] for line in jobs)
    per_worker: dict[str, int] = {}
    for line in jobs:
        pid = str(line.get("attrs", {}).get("worker", "?"))
        per_worker[pid] = per_worker.get(pid, 0) + 1
    window = t1 - t0
    rate = len(jobs) / window if window > 0 else float(len(jobs))
    workers = ", ".join(
        f"pid {pid}: {count}" for pid, count in sorted(per_worker.items())
    )
    return (
        f"campaign: {len(jobs)} jobs in {window:.3f}s "
        f"({rate:.2f} jobs/s) — workers: {workers}"
    )
