"""The trace JSONL schema and its zero-dependency validator.

Every line of a trace file is one JSON object matching
:data:`TRACE_LINE_SCHEMA` — a JSON-Schema document restricted to the
keywords this repo needs (``type``, ``required``, ``properties``,
``additionalProperties``, ``enum``, ``oneOf``, ``items``, ``minimum``).
:func:`validate_line` interprets exactly that subset, so the schema is
both the machine-checked contract (CI's ``obs-smoke`` job validates
every traced line against it) and the documentation of record
(rendered in ``docs/observability.md``).

Line types
----------
``meta``
    First line of every stream: schema name/version, the producing
    pid, the wall-clock instant anchoring the monotonic timestamps.
``span``
    One finished timing span.  Real spans carry ``t0``/``t1``/``dur``
    on the monotonic clock; *aggregate* spans (``agg.count`` present)
    carry only the summed ``dur`` of many sub-step occurrences.
``event``
    A point-in-time occurrence (a structured warning, a campaign job
    completion, a worker heartbeat) bound to the enclosing span.
``metrics``
    A :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dump,
    written at tracer shutdown.

Versioning: ``v`` is bumped on any breaking change to these shapes;
consumers must ignore lines whose ``v`` they do not know rather than
fail (append-only evolution, like the campaign store).
"""

from __future__ import annotations

SCHEMA_NAME = "repro-trace"
SCHEMA_VERSION = 1

_ATTRS = {"type": "object"}

#: JSON Schema (subset) for one trace line.
TRACE_LINE_SCHEMA: dict = {
    "oneOf": [
        {
            "type": "object",
            "required": ["type", "v", "schema", "pid", "started_wall"],
            "properties": {
                "type": {"enum": ["meta"]},
                "v": {"type": "integer", "minimum": 1},
                "schema": {"enum": [SCHEMA_NAME]},
                "clock": {"type": "string"},
                "pid": {"type": "integer", "minimum": 0},
                "started_wall": {"type": "number"},
                "started": {"type": "number"},
                "attrs": _ATTRS,
            },
            "additionalProperties": False,
        },
        {
            "type": "object",
            "required": ["type", "v", "name", "id", "dur"],
            "properties": {
                "type": {"enum": ["span"]},
                "v": {"type": "integer", "minimum": 1},
                "name": {"type": "string"},
                "id": {"type": "integer", "minimum": 1},
                "parent": {"type": "integer", "minimum": 1},
                "t0": {"type": "number"},
                "t1": {"type": "number"},
                "dur": {"type": "number"},
                "agg": {
                    "type": "object",
                    "required": ["count"],
                    "properties": {
                        "count": {"type": "integer", "minimum": 0}
                    },
                    "additionalProperties": False,
                },
                "attrs": _ATTRS,
            },
            "additionalProperties": False,
        },
        {
            "type": "object",
            "required": ["type", "v", "name", "t"],
            "properties": {
                "type": {"enum": ["event"]},
                "v": {"type": "integer", "minimum": 1},
                "name": {"type": "string"},
                "t": {"type": "number"},
                "span": {"type": "integer", "minimum": 1},
                "attrs": _ATTRS,
            },
            "additionalProperties": False,
        },
        {
            "type": "object",
            "required": ["type", "v", "t", "snapshot"],
            "properties": {
                "type": {"enum": ["metrics"]},
                "v": {"type": "integer", "minimum": 1},
                "t": {"type": "number"},
                "snapshot": {"type": "object"},
            },
            "additionalProperties": False,
        },
    ]
}

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def _check(instance, schema: dict, path: str, errors: list[str]) -> bool:
    """Validate ``instance`` against the supported JSON-Schema subset.

    Appends human-readable messages to ``errors``; returns True when
    this subtree validated clean.
    """
    ok = True
    if "oneOf" in schema:
        branches = schema["oneOf"]
        # Dispatch on the discriminator first for readable errors: a
        # line with a known "type" reports that branch's mismatches
        # instead of four branch failures.
        kind = instance.get("type") if isinstance(instance, dict) else None
        for branch in branches:
            expected = branch.get("properties", {}).get("type", {}).get("enum")
            if expected and kind in expected:
                return _check(instance, branch, path, errors)
        for branch in branches:
            scratch: list[str] = []
            if _check(instance, branch, path, scratch):
                return True
        errors.append(f"{path}: matches no schema branch (type={kind!r})")
        return False
    expected_type = schema.get("type")
    if expected_type is not None:
        python_type = _TYPES[expected_type]
        if not isinstance(instance, python_type) or (
            expected_type in ("integer", "number")
            and isinstance(instance, bool)
        ):
            errors.append(
                f"{path}: expected {expected_type}, "
                f"got {type(instance).__name__}"
            )
            return False
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in {schema['enum']}")
        ok = False
    if "minimum" in schema and isinstance(instance, (int, float)):
        if instance < schema["minimum"]:
            errors.append(f"{path}: {instance!r} < minimum {schema['minimum']}")
            ok = False
    if isinstance(instance, dict):
        for key in schema.get("required", ()):
            if key not in instance:
                errors.append(f"{path}: missing required key {key!r}")
                ok = False
        properties = schema.get("properties", {})
        for key, value in instance.items():
            if key in properties:
                if not _check(value, properties[key], f"{path}.{key}", errors):
                    ok = False
            elif schema.get("additionalProperties") is False:
                errors.append(f"{path}: unexpected key {key!r}")
                ok = False
    if isinstance(instance, list) and "items" in schema:
        for index, item in enumerate(instance):
            if not _check(item, schema["items"], f"{path}[{index}]", errors):
                ok = False
    return ok


def validate_line(line: dict) -> list[str]:
    """Validation errors of one trace line ([] when schema-valid).

    Lines carrying a schema version newer than this library knows are
    accepted untouched (forward compatibility — consumers must skip,
    not fail).
    """
    if isinstance(line, dict):
        version = line.get("v")
        if isinstance(version, int) and version > SCHEMA_VERSION:
            return []
    errors: list[str] = []
    _check(line, TRACE_LINE_SCHEMA, "line", errors)
    return errors


def validate_trace(lines) -> list[str]:
    """Validate a whole trace: per-line schema plus stream invariants.

    Stream invariants: the first line is a ``meta`` line, and every
    ``parent`` / ``span`` reference points at a span id already seen
    (spans export on *exit*, children before parents — so a reference
    may point forward; it must simply exist in the stream).
    """
    errors: list[str] = []
    lines = list(lines)
    span_ids = {
        line.get("id")
        for line in lines
        if isinstance(line, dict) and line.get("type") == "span"
    }
    for number, line in enumerate(lines):
        for problem in validate_line(line):
            errors.append(f"line {number + 1}: {problem}")
        if isinstance(line, dict):
            reference = line.get("parent", line.get("span"))
            if reference is not None and reference not in span_ids:
                errors.append(
                    f"line {number + 1}: dangling span reference {reference}"
                )
    if not lines:
        errors.append("empty trace (no meta line)")
    elif not (isinstance(lines[0], dict) and lines[0].get("type") == "meta"):
        errors.append("line 1: stream must start with a meta line")
    return errors
