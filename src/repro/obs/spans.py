"""Hierarchical timing spans over monotonic clocks.

A *span* measures one named section of work; spans nest through a
per-thread context stack, so a span opened while another is active
records it as its parent and the exporter receives a tree.  Time is
``time.perf_counter()`` — monotonic, high-resolution, never wall clock —
so traces survive NTP steps and the values are meaningful as durations
only (the trace's ``meta`` line anchors them to one wall-clock instant
for human consumption).

Design constraints, in order:

1. **The disabled path must be free.**  When tracing is off the module
   hands out one shared :data:`NOOP_SPAN` whose enter/exit do nothing —
   instrumented call sites additionally cache ``obs.tracer()`` in a
   local and skip span construction entirely, so a disabled run pays
   one attribute read per instrumented region (pinned < 2 % on
   ``bench --smoke`` by ``benchmarks/bench_obs_overhead.py``).

2. **Determinism-safety.**  Spans observe; they never feed back.  No
   scheduler, simulator or campaign decision may read span state, and
   nothing here mutates shared state beyond the exporter sink — with
   tracing on or off, schedules, counters, observer streams and content
   hashes are bit-identical (pinned by ``tests/test_obs.py``).

3. **Thread-safety.**  The context stack is thread-local (kernel sweep
   workers and campaign threads do not share parents); span ids come
   from one lock-free counter (`itertools.count`, atomic under the
   GIL); exporters serialize their own writes.
"""

from __future__ import annotations

import itertools
import os
import threading
import time

from repro.obs.schema import SCHEMA_NAME, SCHEMA_VERSION


class NoopSpan:
    """The shared do-nothing span handed out while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "NoopSpan":
        """Ignore attributes (API parity with :class:`Span`)."""
        return self


#: Singleton no-op span: ``obs.span(...)`` returns this exact object
#: whenever tracing is disabled, so the disabled path allocates nothing.
NOOP_SPAN = NoopSpan()


class Span:
    """One live timing span; use as a context manager.

    ``set(**attrs)`` attaches attributes at any point before exit (for
    values only known at the end, e.g. run counters).  The span line is
    exported on exit; a span abandoned without exit exports nothing.
    """

    __slots__ = ("_tracer", "name", "id", "parent", "attrs", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.id = next(tracer._ids)
        self.parent: int | None = None
        self.attrs = attrs
        self._t0 = 0.0

    def set(self, **attrs) -> "Span":
        """Attach (or overwrite) attributes on the span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        stack = tracer._stack()
        self.parent = stack[-1].id if stack else None
        stack.append(self)
        self._t0 = tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        t1 = tracer._clock()
        stack = tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        else:  # unbalanced exit (generator teardown); drop to ours
            while stack:
                if stack.pop() is self:
                    break
        line = {
            "type": "span",
            "v": SCHEMA_VERSION,
            "name": self.name,
            "id": self.id,
            "t0": self._t0,
            "t1": t1,
            "dur": t1 - self._t0,
        }
        if self.parent is not None:
            line["parent"] = self.parent
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        if self.attrs:
            line["attrs"] = self.attrs
        tracer._exporter.export(line)
        return False


class Tracer:
    """Factory and sink-routing for spans, events and snapshots.

    One tracer serves one telemetry stream (a trace file, or a
    campaign worker's in-memory line list).  All methods are
    thread-safe; the per-thread span stacks keep nesting correct when
    spans are opened from worker threads.
    """

    def __init__(self, exporter, *, meta: dict | None = None) -> None:
        self._exporter = exporter
        self._clock = time.perf_counter
        self._ids = itertools.count(1)
        self._local = threading.local()
        line = {
            "type": "meta",
            "v": SCHEMA_VERSION,
            "schema": SCHEMA_NAME,
            "clock": "perf_counter",
            "pid": os.getpid(),
            "started_wall": time.time(),
            "started": self._clock(),
        }
        if meta:
            line["attrs"] = dict(meta)
        exporter.export(line)

    # ------------------------------------------------------------------
    # producer API
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> Span:
        """A new span (enter it with ``with``)."""
        return Span(self, name, attrs)

    def current_id(self) -> int | None:
        """Id of the innermost active span on this thread (or None)."""
        stack = self._stack()
        return stack[-1].id if stack else None

    def event(self, name: str, **attrs) -> None:
        """Record one point-in-time event under the current span."""
        line = {
            "type": "event",
            "v": SCHEMA_VERSION,
            "name": name,
            "t": self._clock(),
        }
        parent = self.current_id()
        if parent is not None:
            line["span"] = parent
        if attrs:
            line["attrs"] = attrs
        self._exporter.export(line)

    def aggregate(
        self,
        name: str,
        total_s: float,
        count: int,
        parent: int | None = None,
        **attrs,
    ) -> None:
        """Record an *aggregate* span: summed duration over ``count`` hits.

        Used for sub-step phases too hot to span individually (the
        kernel's replay-repair pass runs once per sweep); the renderer
        folds aggregates into the per-phase table but excludes them
        from tree coverage, since their time is already inside their
        parent span.
        """
        if parent is None:
            parent = self.current_id()
        line = {
            "type": "span",
            "v": SCHEMA_VERSION,
            "name": name,
            "id": next(self._ids),
            "dur": total_s,
            "agg": {"count": count},
        }
        if parent is not None:
            line["parent"] = parent
        if attrs:
            line["attrs"] = attrs
        self._exporter.export(line)

    def snapshot(self, snapshot: dict) -> None:
        """Record a metrics snapshot line (typically once, at shutdown)."""
        self._exporter.export(
            {
                "type": "metrics",
                "v": SCHEMA_VERSION,
                "t": self._clock(),
                "snapshot": snapshot,
            }
        )

    def close(self) -> None:
        """Close the underlying exporter (flushes file buffers)."""
        self._exporter.close()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack
