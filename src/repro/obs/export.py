"""Trace exporters: where finished spans, events and snapshots land.

An exporter receives one JSON-compatible dict per telemetry line and is
the only component that touches the outside world.  Two implementations
cover every use in the repo:

* :class:`JsonlExporter` — the durable form: one JSON object per line,
  appended to a file.  Writes are serialized under a lock (spans can
  finish on ``core/parallel.py`` worker threads) and buffered through
  the regular file buffer; ``close()`` flushes.  The format is
  append-only and schema-versioned (:mod:`repro.obs.schema`), so a
  consumer can stream a live file and tolerate a torn tail exactly like
  the campaign result store does.

* :class:`ListExporter` — the in-memory form used by campaign workers
  (spans travel back to the parent inside the job document instead of
  fighting over one file descriptor from many processes) and by tests.

Exporters never inspect line content; determinism is the producer's
contract (wall-clock data stays inside the trace, which is volatile by
nature — the scheduler outputs it describes are not).
"""

from __future__ import annotations

import json
import threading
from pathlib import Path


class ListExporter:
    """Collect telemetry lines in memory (workers, tests, benches)."""

    def __init__(self) -> None:
        self.lines: list[dict] = []
        self._lock = threading.Lock()

    def export(self, line: dict) -> None:
        """Append one telemetry line."""
        with self._lock:
            self.lines.append(line)

    def close(self) -> None:
        """Nothing to release; kept for exporter-interface symmetry."""


class JsonlExporter:
    """Append telemetry lines to a JSONL file, one object per line."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8")

    def export(self, line: dict) -> None:
        """Serialize and append one telemetry line (thread-safe)."""
        text = json.dumps(line, sort_keys=True, default=_jsonable)
        with self._lock:
            handle = self._handle
            if handle is None:
                return  # closed mid-run (interpreter teardown); drop
            handle.write(text + "\n")

    def close(self) -> None:
        """Flush and close the file; further exports are dropped."""
        with self._lock:
            handle, self._handle = self._handle, None
        if handle is not None:
            handle.flush()
            handle.close()


def _jsonable(value):
    """Last-resort JSON coercion for attribute values (repr, not crash)."""
    return repr(value)


def read_trace(path: str | Path) -> list[dict]:
    """Load a trace JSONL file, skipping a torn final line.

    Mirrors the campaign store's tolerance: a process killed mid-write
    leaves at most one half line at the tail, which carries nothing
    recoverable.
    """
    raw = Path(path).read_text(encoding="utf-8").splitlines()
    lines: list[dict] = []
    for number, text in enumerate(raw):
        if not text.strip():
            continue
        try:
            lines.append(json.loads(text))
        except json.JSONDecodeError:
            if number == len(raw) - 1:
                break  # torn tail of a killed run
            raise
    return lines
