"""The metrics registry: counters, gauges, histograms, collectors.

One process-wide :class:`MetricsRegistry` (``repro.obs.metrics``'s
``registry`` singleton, re-exported as ``repro.obs.metrics_registry``)
absorbs the repo's scattered per-subsystem counters behind a single
``snapshot()`` API:

* **counters** — monotone totals (``ftbar.steps``,
  ``obs.events.compiled_fallback``);
* **gauges** — last-written values (``campaign.jobs.pending``);
* **histograms** — ``count/sum/min/max`` summaries of observations
  (``ftbar.run_s``) — enough for throughput and latency reporting
  without bucket-boundary bikeshedding;
* **collectors** — pull-style sources snapshotted on demand.  The
  compile-cache memos (:func:`repro.core.compile.compile_cache_stats`)
  and the live batch-simulation engines register collectors, so their
  counters keep exactly one source of truth and the registry adds zero
  work to their hot paths.

Labels: every instrument takes optional keyword labels; a labelled
series snapshots under ``name{k=v,...}`` with keys sorted, Prometheus
style.

Instrument methods take one lock per call — they are meant for
run-level and job-level accounting (the hot loops publish through
collectors or once per run), so contention is nil.  ``snapshot()``
returns plain nested dicts, JSON-ready for the trace's ``metrics``
line and the ``repro stats`` renderer.
"""

from __future__ import annotations

import threading
from typing import Callable, Mapping


def _series(name: str, labels: Mapping[str, object]) -> str:
    """Canonical series key: ``name`` or ``name{k=v,...}`` sorted."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Thread-safe registry of counters, gauges, histograms, collectors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, list[float]] = {}
        self._collectors: dict[str, Callable[[], Mapping]] = {}

    # ------------------------------------------------------------------
    # instruments
    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1, **labels) -> None:
        """Add ``value`` (default 1) to counter ``name``."""
        key = _series(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[_series(name, labels)] = value

    def observe(self, name: str, value: float, **labels) -> None:
        """Add one observation to histogram ``name``."""
        key = _series(name, labels)
        with self._lock:
            summary = self._histograms.get(key)
            if summary is None:
                #           [count, sum,  min,   max]
                self._histograms[key] = [1, value, value, value]
            else:
                summary[0] += 1
                summary[1] += value
                if value < summary[2]:
                    summary[2] = value
                if value > summary[3]:
                    summary[3] = value

    # ------------------------------------------------------------------
    # pull-style sources
    # ------------------------------------------------------------------
    def register_collector(
        self, name: str, collect: Callable[[], Mapping]
    ) -> None:
        """Register (or replace) a pull source snapshotted on demand.

        ``collect()`` must be cheap and side-effect free; it runs only
        inside :meth:`snapshot`, never on a producer's hot path.
        """
        with self._lock:
            self._collectors[name] = collect

    def unregister_collector(self, name: str) -> None:
        """Drop a collector (no-op when absent)."""
        with self._lock:
            self._collectors.pop(name, None)

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """One JSON-ready view of everything the registry knows.

        Shape::

            {"counters":   {series: total},
             "gauges":     {series: value},
             "histograms": {series: {"count", "sum", "min", "max"}},
             "collected":  {collector: {key: value}}}

        A collector that raises is reported as
        ``{"error": "<message>"}`` instead of poisoning the snapshot.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = {
                key: {
                    "count": summary[0],
                    "sum": summary[1],
                    "min": summary[2],
                    "max": summary[3],
                }
                for key, summary in self._histograms.items()
            }
            collectors = dict(self._collectors)
        collected = {}
        for name, collect in sorted(collectors.items()):
            try:
                collected[name] = dict(collect())
            except Exception as error:  # snapshot must never raise
                collected[name] = {"error": str(error)}
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "collected": collected,
        }

    def reset(self) -> None:
        """Zero every instrument; collectors stay registered.

        For tests and benchmarks — mirrors
        :func:`repro.core.compile.reset_compile_cache`.
        """
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide registry every subsystem publishes into.
registry = MetricsRegistry()
