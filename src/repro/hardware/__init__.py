"""Architecture model: processors and communication links (section 3.3)."""

from repro.hardware.architecture import Architecture
from repro.hardware.link import Link, LinkKind
from repro.hardware.processor import Processor
from repro.hardware.routing import RoutePlanner
from repro.hardware.topologies import fully_connected, ring, single_bus, star

__all__ = [
    "Architecture",
    "Link",
    "LinkKind",
    "Processor",
    "RoutePlanner",
    "fully_connected",
    "ring",
    "single_bus",
    "star",
]
