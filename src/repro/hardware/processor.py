"""Processor vertices of the architecture graph.

Section 3.3: a processor is made of one computation unit, one local
memory, and one or more communication units, each bound to one
communication link.  At the model level we only need the identity; the
number of communication units is derived from the links attached to the
processor in the :class:`~repro.hardware.Architecture`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Processor:
    """A computing site of the target architecture.

    Examples
    --------
    >>> Processor("P1").name
    'P1'
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("processor name must be a non-empty string")

    def __str__(self) -> str:
        return self.name
