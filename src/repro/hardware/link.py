"""Communication links of the architecture graph.

The paper primarily targets point-to-point links (which allow parallel
communications, section 4.4) but also discusses multi-point links (buses),
on which replicated comms are serialised.  Both kinds are supported; a
link is identified by name and knows the set of processors it connects.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable


class LinkKind(str, enum.Enum):
    """Point-to-point wire or multi-point bus."""

    POINT_TO_POINT = "point-to-point"
    BUS = "bus"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Link:
    """A communication medium connecting two or more processors.

    Parameters
    ----------
    name:
        Unique identifier within one architecture.
    endpoints:
        Names of the processors reachable through the link.  A
        point-to-point link has exactly two; a bus has two or more.
    kind:
        :class:`LinkKind`; inferred as point-to-point for two endpoints
        unless stated otherwise.

    Examples
    --------
    >>> link = Link.between("L1.2", "P1", "P2")
    >>> link.connects("P1", "P2")
    True
    """

    name: str
    endpoints: frozenset[str]
    kind: LinkKind = LinkKind.POINT_TO_POINT

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("link name must be a non-empty string")
        if not isinstance(self.endpoints, frozenset):
            object.__setattr__(self, "endpoints", frozenset(self.endpoints))
        if not isinstance(self.kind, LinkKind):
            object.__setattr__(self, "kind", LinkKind(self.kind))
        if self.kind is LinkKind.POINT_TO_POINT and len(self.endpoints) != 2:
            raise ValueError(
                f"point-to-point link {self.name!r} needs exactly 2 endpoints, "
                f"got {sorted(self.endpoints)}"
            )
        if self.kind is LinkKind.BUS and len(self.endpoints) < 2:
            raise ValueError(f"bus {self.name!r} needs at least 2 endpoints")

    @classmethod
    def between(cls, name: str, first: str, second: str) -> "Link":
        """Convenience constructor for a point-to-point link."""
        return cls(name, frozenset({first, second}), LinkKind.POINT_TO_POINT)

    @classmethod
    def bus(cls, name: str, endpoints: Iterable[str]) -> "Link":
        """Convenience constructor for a multi-point bus."""
        return cls(name, frozenset(endpoints), LinkKind.BUS)

    def connects(self, first: str, second: str) -> bool:
        """True when both processors are endpoints of this link."""
        return first in self.endpoints and second in self.endpoints

    def attaches(self, processor: str) -> bool:
        """True when ``processor`` has a communication unit on this link."""
        return processor in self.endpoints

    def is_point_to_point(self) -> bool:
        """True for a two-endpoint dedicated wire."""
        return self.kind is LinkKind.POINT_TO_POINT

    def is_bus(self) -> bool:
        """True for a shared multi-point medium."""
        return self.kind is LinkKind.BUS

    def sorted_endpoints(self) -> tuple[str, ...]:
        """Endpoints in deterministic (sorted) order."""
        return tuple(sorted(self.endpoints))

    def __str__(self) -> str:
        return self.name
