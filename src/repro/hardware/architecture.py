"""The architecture model: processors connected by communication links.

Section 3.3 models the architecture as a graph whose vertices are
processors and whose edges are communication links.  We additionally
provide multi-hop routing (shortest path in number of hops) so that
architectures that are not fully connected can still be scheduled; the
paper's fault-tolerance guarantee, however, is argued for *direct* links
between replica processors, and the schedule validator can enforce that.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

import networkx as nx

from repro.exceptions import ArchitectureError
from repro.hardware.link import Link, LinkKind
from repro.hardware.processor import Processor
from repro.hardware.routing import RouteHop, RoutePlanner


class Architecture:
    """A set of :class:`Processor` connected by :class:`Link` media.

    Examples
    --------
    >>> arc = Architecture()
    >>> _ = arc.add_processor("P1"); _ = arc.add_processor("P2")
    >>> _ = arc.add_link("L1.2", ["P1", "P2"])
    >>> [l.name for l in arc.links_between("P1", "P2")]
    ['L1.2']
    """

    def __init__(self, name: str = "architecture") -> None:
        self.name = name
        self._processors: dict[str, Processor] = {}
        self._links: dict[str, Link] = {}
        self._planner: RoutePlanner | None = None
        # Memoized views; the scheduler calls these once per trial plan,
        # so rebuilding them from the dicts each time shows up in E6.
        self._links_view: tuple[Link, ...] | None = None
        self._link_names_view: tuple[str, ...] | None = None
        self._processor_names_view: tuple[str, ...] | None = None
        self._between: dict[tuple[str, str], tuple[Link, ...]] = {}
        #: Bumped by every mutation; lets derived-table caches (the
        #: compiled kernel's content hashes) revalidate in O(1).
        self._version = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_processor(self, processor: Processor | str) -> Processor:
        """Add a processor (idempotent for identical names)."""
        proc = processor if isinstance(processor, Processor) else Processor(str(processor))
        existing = self._processors.get(proc.name)
        if existing is not None:
            return existing
        self._processors[proc.name] = proc
        self._planner = None
        self._between.clear()
        self._processor_names_view = None
        self._version += 1
        return proc

    def add_link(
        self,
        link: Link | str,
        endpoints: Iterable[str] | None = None,
        kind: LinkKind | str | None = None,
    ) -> Link:
        """Add a communication link between existing processors.

        Either pass a ready-made :class:`Link`, or a name plus
        ``endpoints`` (and optionally ``kind``, inferred as point-to-point
        for two endpoints and bus otherwise).
        """
        if isinstance(link, Link):
            built = link
        else:
            if endpoints is None:
                raise ArchitectureError("endpoints required when adding a link by name")
            points = tuple(endpoints)
            if kind is None:
                inferred = LinkKind.POINT_TO_POINT if len(set(points)) == 2 else LinkKind.BUS
            else:
                inferred = LinkKind(kind)
            built = Link(str(link), frozenset(points), inferred)
        for endpoint in built.endpoints:
            if endpoint not in self._processors:
                raise ArchitectureError(
                    f"link {built.name!r} references unknown processor {endpoint!r}"
                )
        if built.name in self._links:
            raise ArchitectureError(f"duplicate link name {built.name!r}")
        self._links[built.name] = built
        self._planner = None
        self._links_view = None
        self._link_names_view = None
        self._between.clear()
        self._version += 1
        return built

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, name: object) -> bool:
        return name in self._processors

    def __len__(self) -> int:
        return len(self._processors)

    def __iter__(self) -> Iterator[str]:
        return iter(self.processor_names())

    def processor(self, name: str) -> Processor:
        """The processor registered under ``name``."""
        try:
            return self._processors[name]
        except KeyError:
            raise ArchitectureError(f"unknown processor {name!r}") from None

    def processor_names(self) -> tuple[str, ...]:
        """All processor names, sorted for determinism."""
        if self._processor_names_view is None:
            self._processor_names_view = tuple(sorted(self._processors))
        return self._processor_names_view

    def processors(self) -> tuple[Processor, ...]:
        """All processors, sorted by name."""
        return tuple(self._processors[n] for n in self.processor_names())

    def link(self, name: str) -> Link:
        """The link registered under ``name``."""
        try:
            return self._links[name]
        except KeyError:
            raise ArchitectureError(f"unknown link {name!r}") from None

    def link_names(self) -> tuple[str, ...]:
        """All link names, sorted for determinism."""
        if self._link_names_view is None:
            self._link_names_view = tuple(sorted(self._links))
        return self._link_names_view

    def links(self) -> tuple[Link, ...]:
        """All links, sorted by name."""
        if self._links_view is None:
            self._links_view = tuple(self._links[n] for n in self.link_names())
        return self._links_view

    def links_of(self, processor: str) -> tuple[Link, ...]:
        """Links on which ``processor`` has a communication unit."""
        self.processor(processor)
        return tuple(l for l in self.links() if l.attaches(processor))

    def links_between(self, first: str, second: str) -> tuple[Link, ...]:
        """All direct links joining two distinct processors, sorted."""
        cached = self._between.get((first, second))
        if cached is not None:
            return cached
        self.processor(first)
        self.processor(second)
        if first == second:
            result: tuple[Link, ...] = ()
        else:
            result = tuple(l for l in self.links() if l.connects(first, second))
        self._between[(first, second)] = result
        return result

    def neighbors(self, processor: str) -> tuple[str, ...]:
        """Processors directly reachable from ``processor``."""
        reachable: set[str] = set()
        for link in self.links_of(processor):
            reachable.update(link.endpoints)
        reachable.discard(processor)
        return tuple(sorted(reachable))

    def is_fully_connected(self) -> bool:
        """True when every processor pair has a direct link."""
        names = self.processor_names()
        return all(
            self.links_between(a, b)
            for i, a in enumerate(names)
            for b in names[i + 1:]
        )

    # ------------------------------------------------------------------
    # routing (delegated to the RoutePlanner, the single entry point)
    # ------------------------------------------------------------------
    @property
    def route_planner(self) -> RoutePlanner:
        """The memoizing route planner bound to this architecture.

        Rebuilt lazily after every structural change; all routing
        queries — shortest routes, Menger bounds, disjoint route sets —
        go through this one object.
        """
        if self._planner is None:
            self._planner = RoutePlanner(self)
        return self._planner

    def route(self, source: str, target: str) -> tuple[Link, ...]:
        """A shortest (fewest hops) sequence of links from source to target.

        Returns the empty tuple for ``source == target``.  Direct links
        win; among equal-length routes the lexicographically smallest
        link-name sequence is chosen, which keeps scheduling reproducible.
        Raises :class:`~repro.exceptions.ArchitectureError` when no route
        exists.
        """
        self.processor(source)
        self.processor(target)
        if source == target:
            return ()
        return self.route_planner.shortest_route(source, target)

    def route_hops(self, source: str, target: str) -> tuple[RouteHop, ...]:
        """The shortest route as ``(from_processor, link, to_processor)`` hops.

        Multi-hop communications need the relay processors, not just the
        links; this returns both.  Empty for ``source == target``.
        """
        if source == target:
            self.processor(source)
            return ()
        return self.route_planner.route_hops(source, target)

    def disjoint_route_hops(
        self, source: str, target: str, count: int
    ) -> tuple[tuple[RouteHop, ...], ...]:
        """``count`` pairwise link-disjoint routes in hop form.

        ``count = 1`` is exactly :meth:`route_hops`; see
        :meth:`repro.hardware.routing.RoutePlanner.disjoint_routes`.
        """
        return self.route_planner.disjoint_routes(source, target, count)

    def menger_bound(self, source: str, target: str) -> int:
        """Maximum number of pairwise link-disjoint routes (min link cut)."""
        return self.route_planner.menger_bound(source, target)

    def hop_count(self, source: str, target: str) -> int:
        """Number of links on the shortest route between two processors."""
        return len(self.route(source, target))

    # ------------------------------------------------------------------
    # validation / export
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants: non-empty and connected."""
        if not self._processors:
            raise ArchitectureError(f"architecture {self.name!r} has no processor")
        if len(self._processors) == 1:
            return
        names = self.processor_names()
        root = names[0]
        for other in names[1:]:
            try:
                self.route(root, other)
            except ArchitectureError:
                raise ArchitectureError(
                    f"architecture {self.name!r} is disconnected: "
                    f"no route from {root!r} to {other!r}"
                ) from None

    def to_networkx(self) -> nx.Graph:
        """A multigraph view: processor nodes, one edge per link pair."""
        graph = nx.MultiGraph(name=self.name)
        graph.add_nodes_from(self.processor_names())
        for link in self.links():
            ends = link.sorted_endpoints()
            for i, a in enumerate(ends):
                for b in ends[i + 1:]:
                    graph.add_edge(a, b, key=link.name, link=link.name, kind=link.kind.value)
        return graph

    def __repr__(self) -> str:
        return (
            f"Architecture(name={self.name!r}, processors={len(self)}, "
            f"links={len(self._links)})"
        )
