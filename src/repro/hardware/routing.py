"""Disjoint-route planning over the architecture graph.

The paper schedules every inter-processor transfer on one shortest
route; masking ``Npl`` link failures additionally requires ``Npl + 1``
pairwise *link-disjoint* routes per communicating processor pair (one
copy of the data per route — any ``Npl`` broken links leave at least one
copy's route intact).  :class:`RoutePlanner` is the single routing entry
point of the repo:

* :meth:`shortest_route` / :meth:`route_hops` — the deterministic BFS
  shortest route the original engine used (fewest hops, lexicographically
  smallest link-name sequence among ties);
* :meth:`menger_bound` — the maximum number of pairwise link-disjoint
  routes between two processors (Menger's theorem: the size of a minimum
  link cut), computed as a unit-capacity max-flow where every link —
  point-to-point or bus — is one capacity-1 resource;
* :meth:`disjoint_routes` — ``count`` pairwise link-disjoint routes in
  hop form, deterministic across runs, raising a clear
  :class:`~repro.exceptions.ArchitectureError` when ``count`` exceeds
  the Menger bound.

``disjoint_routes(source, target, 1)`` returns exactly the legacy
shortest route, which is what keeps ``npl = 0`` scheduling bit-identical
to the pre-link-tolerance engine.

Determinism.  The flow network enumerates processors and links in
sorted-name order, augmenting paths are found by BFS expanding
neighbours in that order (shortest augmenting path first, smallest name
sequence among ties), and the final flow is decomposed by always
following the smallest-id flow-carrying edge — so the same architecture
always yields the same routes in the same order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.exceptions import ArchitectureError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.architecture import Architecture
    from repro.hardware.link import Link

#: ``(from_processor, link, to_processor)`` — one hop of a route.
RouteHop = tuple[str, "Link", str]


class RoutePlanner:
    """Computes shortest and link-disjoint routes for one architecture.

    Built lazily by :class:`~repro.hardware.architecture.Architecture`
    and invalidated whenever a processor or link is added; all results
    are memoized per ``(source, target)`` pair (and route count).
    """

    def __init__(self, architecture: "Architecture") -> None:
        self._architecture = architecture
        self._routes: dict[tuple[str, str], tuple["Link", ...]] = {}
        self._disjoint: dict[tuple[str, str, int], tuple[tuple[RouteHop, ...], ...]] = {}
        self._bounds: dict[tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    # shortest route (the legacy BFS, moved here verbatim)
    # ------------------------------------------------------------------
    def shortest_route(self, source: str, target: str) -> tuple["Link", ...]:
        """Fewest-hop link sequence, lexicographically smallest among ties."""
        arc = self._architecture
        arc.processor(source)
        arc.processor(target)
        if source == target:
            return ()
        cached = self._routes.get((source, target))
        if cached is not None:
            return cached
        route = self._compute_route(source, target)
        self._routes[(source, target)] = route
        return route

    def _compute_route(self, source: str, target: str) -> tuple["Link", ...]:
        # BFS over processors, expanding neighbours in sorted (processor,
        # link) order so the first route found is the deterministic winner.
        arc = self._architecture
        parents: dict[str, tuple[str, "Link"]] = {}
        frontier = [source]
        seen = {source}
        while frontier:
            next_frontier: list[str] = []
            for here in frontier:
                for link in arc.links_of(here):
                    for neighbor in link.sorted_endpoints():
                        if neighbor == here or neighbor in seen:
                            continue
                        seen.add(neighbor)
                        parents[neighbor] = (here, link)
                        next_frontier.append(neighbor)
            if target in seen:
                break
            frontier = sorted(next_frontier)
        if target not in parents:
            raise ArchitectureError(f"no route from {source!r} to {target!r}")
        hops: list["Link"] = []
        cursor = target
        while cursor != source:
            cursor, link = parents[cursor]
            hops.append(link)
        return tuple(reversed(hops))

    def route_hops(self, source: str, target: str) -> tuple[RouteHop, ...]:
        """The shortest route as ``(from, link, to)`` hops."""
        links = self.shortest_route(source, target)
        hops: list[RouteHop] = []
        here = source
        # Recompute the node sequence by walking the links: each link of a
        # BFS shortest route moves strictly closer to the target, and the
        # next node is the unique endpoint that continues the route.
        for index, link in enumerate(links):
            if index == len(links) - 1:
                nxt = target
            else:
                candidates = [e for e in link.sorted_endpoints() if e != here]
                nxt = None
                for candidate in candidates:
                    tail = self.shortest_route(candidate, target)
                    if len(tail) == len(links) - index - 1:
                        nxt = candidate
                        break
                if nxt is None:  # pragma: no cover - defensive
                    raise ArchitectureError(
                        f"cannot reconstruct route {source!r}->{target!r}"
                    )
            hops.append((here, link, nxt))
            here = nxt
        return tuple(hops)

    # ------------------------------------------------------------------
    # link-disjoint routes (unit-capacity max-flow)
    # ------------------------------------------------------------------
    def menger_bound(self, source: str, target: str) -> int:
        """Maximum number of pairwise link-disjoint routes (Menger).

        A bus counts as a *single* capacity-1 resource regardless of how
        many processor pairs it connects: one broken bus severs every
        route through it, so two routes sharing a bus are not disjoint.
        Returns 0 when the processors are disconnected; the bound of a
        processor to itself is reported as 0 (no route needed).
        """
        arc = self._architecture
        arc.processor(source)
        arc.processor(target)
        if source == target:
            return 0
        cached = self._bounds.get((source, target))
        if cached is not None:
            return cached
        flow, _ = self._max_flow(source, target, limit=None)
        self._bounds[(source, target)] = flow
        return flow

    def disjoint_routes(
        self,
        source: str,
        target: str,
        count: int,
        avoid: frozenset[str] = frozenset(),
    ) -> tuple[tuple[RouteHop, ...], ...]:
        """``count`` pairwise link-disjoint routes in deterministic order.

        ``count = 1`` returns exactly the legacy shortest route.  Raises
        :class:`~repro.exceptions.ArchitectureError` with the achievable
        bound when ``count`` routes do not exist — the actionable error
        an ``Npl`` hypothesis too strong for the topology must produce.

        ``avoid`` is a *preference*: processors that should not act as
        relays if ``count`` disjoint routes exist without them (the
        replication layer passes the hosts of the other sender replicas,
        so a single crash cannot take out both a sender and another
        sender's relay).  When avoiding them leaves fewer than ``count``
        routes, the full graph is used — a preference, never a reason to
        fail.
        """
        if count < 1:
            raise ArchitectureError(f"route count must be >= 1, got {count}")
        arc = self._architecture
        arc.processor(source)
        arc.processor(target)
        if source == target:
            raise ArchitectureError(
                f"no routes needed from {source!r} to itself"
            )
        avoid = frozenset(avoid) - {source, target}
        key = (source, target, count, avoid)
        cached = self._disjoint.get(key)
        if cached is not None:
            return cached
        if count == 1:
            routes: tuple[tuple[RouteHop, ...], ...] = (self.route_hops(source, target),)
        else:
            routes = None
            if avoid:
                flow, residual = self._max_flow(
                    source, target, limit=count, blocked=avoid
                )
                if flow >= count:
                    routes = self._decompose(source, target, count, residual)
            if routes is None:
                flow, residual = self._max_flow(source, target, limit=count)
                if flow < count:
                    # Stopping short of ``count`` means no augmenting path
                    # was left, so ``flow`` is the true Menger bound.
                    self._bounds.setdefault((source, target), flow)
                    raise ArchitectureError(
                        f"only {flow} link-disjoint route(s) exist from "
                        f"{source!r} to {target!r}; {count} required "
                        f"(tolerating Npl = {count - 1} link failure(s) needs "
                        f"Npl + 1 disjoint routes)"
                    )
                routes = self._decompose(source, target, count, residual)
        self._disjoint[key] = routes
        return routes

    # -- flow network ---------------------------------------------------
    # Node ids: processors 0..P-1 in sorted-name order, then per link i
    # (sorted-name order) an entry node P+2i and an exit node P+2i+1;
    # the entry->exit edge carries the link's capacity of 1.
    def _network(self):
        arc = self._architecture
        procs = arc.processor_names()
        links = arc.links()
        proc_id = {name: i for i, name in enumerate(procs)}
        n = len(procs) + 2 * len(links)
        capacity: list[dict[int, int]] = [dict() for _ in range(n)]
        for i, link in enumerate(links):
            entry = len(procs) + 2 * i
            exit_ = entry + 1
            capacity[entry][exit_] = 1
            capacity[exit_][entry] = 0
            for endpoint in link.sorted_endpoints():
                p = proc_id[endpoint]
                capacity[p][entry] = 1
                capacity[entry][p] = 0
                capacity[exit_][p] = 1
                capacity[p][exit_] = 0
        return procs, links, proc_id, capacity

    def _max_flow(
        self,
        source: str,
        target: str,
        limit: int | None,
        blocked: frozenset[str] = frozenset(),
    ):
        """Edmonds-Karp with deterministic BFS; returns (flow, network).

        ``blocked`` processors cannot act as relays: their outgoing
        transit edges are removed (the terminals are never blocked).
        """
        procs, links, proc_id, capacity = self._network()
        for name in sorted(blocked):
            node = proc_id.get(name)
            if node is None or name in (source, target):
                continue
            for neighbor in capacity[node]:
                capacity[node][neighbor] = 0
        src, dst = proc_id[source], proc_id[target]
        flow = 0
        while limit is None or flow < limit:
            parent = self._augmenting_path(capacity, src, dst)
            if parent is None:
                break
            node = dst
            while node != src:
                prev = parent[node]
                capacity[prev][node] -= 1
                capacity[node][prev] += 1
                node = prev
            flow += 1
        return flow, (procs, links, proc_id, capacity)

    @staticmethod
    def _augmenting_path(capacity, src: int, dst: int):
        """Shortest augmenting path by BFS in deterministic id order."""
        parent: dict[int, int] = {src: src}
        frontier = [src]
        while frontier:
            next_frontier: list[int] = []
            for here in frontier:
                for neighbor in sorted(capacity[here]):
                    if neighbor in parent or capacity[here][neighbor] <= 0:
                        continue
                    parent[neighbor] = here
                    if neighbor == dst:
                        return parent
                    next_frontier.append(neighbor)
            frontier = next_frontier
        return None

    def _decompose(
        self, source: str, target: str, count: int, network
    ) -> tuple[tuple[RouteHop, ...], ...]:
        """Split a flow of value ``count`` into ``count`` hop paths."""
        procs, links, proc_id, capacity = network
        n_procs = len(procs)
        # Flow on a forward edge = 1 - residual capacity.
        used: list[set[int]] = [set() for _ in range(len(capacity))]
        for i, link in enumerate(links):
            entry = n_procs + 2 * i
            exit_ = entry + 1
            if capacity[entry][exit_] == 0:
                used[entry].add(exit_)
            for endpoint in link.sorted_endpoints():
                p = proc_id[endpoint]
                if capacity[p][entry] == 0:
                    used[p].add(entry)
                if capacity[exit_][p] == 0:
                    used[exit_].add(p)
        src, dst = proc_id[source], proc_id[target]
        routes: list[tuple[RouteHop, ...]] = []
        for _ in range(count):
            # Walk flow-carrying edges, smallest id first; consume them.
            sequence = [src]
            node = src
            while node != dst:
                nxt = min(used[node])
                used[node].discard(nxt)
                sequence.append(nxt)
                node = nxt
            routes.append(self._hops_from_sequence(sequence, procs, links, n_procs))
        # Shortest first; link-name sequence breaks ties deterministically.
        routes.sort(key=lambda r: (len(r), tuple(hop[1].name for hop in r)))
        return tuple(routes)

    @staticmethod
    def _hops_from_sequence(sequence, procs, links, n_procs) -> tuple[RouteHop, ...]:
        """Processor/link node walk -> (from, link, to) hops, loops removed."""
        # Project onto alternating processor / link visits.
        visits: list[tuple[str, object]] = []  # ("proc", name) | ("link", Link)
        for node in sequence:
            if node < n_procs:
                visits.append(("proc", procs[node]))
            elif (node - n_procs) % 2 == 0:
                visits.append(("link", links[(node - n_procs) // 2]))
        # Remove loops on repeated processors (a flow decomposition may
        # pick up a cycle of leftover flow; cutting it only drops links,
        # so disjointness is preserved).
        trimmed: list[tuple[str, object]] = []
        seen_at: dict[str, int] = {}
        for visit in visits:
            if visit[0] == "proc":
                earlier = seen_at.get(visit[1])
                if earlier is not None:
                    for dropped in trimmed[earlier + 1:]:
                        if dropped[0] == "proc":
                            del seen_at[dropped[1]]
                    del trimmed[earlier + 1:]
                    continue
                seen_at[visit[1]] = len(trimmed)
            trimmed.append(visit)
        hops: list[RouteHop] = []
        for i in range(0, len(trimmed) - 2, 2):
            here = trimmed[i][1]
            link = trimmed[i + 1][1]
            there = trimmed[i + 2][1]
            hops.append((here, link, there))
        return tuple(hops)

    # ------------------------------------------------------------------
    # feasibility
    # ------------------------------------------------------------------
    def require_disjoint_routes(self, count: int) -> None:
        """Raise unless every distinct processor pair has ``count`` routes.

        The static guarantee of ``Npl``-link-failure masking needs
        ``Npl + 1`` disjoint routes wherever replication may place
        communicating replicas — which, absent distribution constraints,
        is any processor pair.
        """
        names = self._architecture.processor_names()
        for i, first in enumerate(names):
            for second in names[i + 1:]:
                self.disjoint_routes(first, second, count)
