"""Canned architecture topologies.

The paper's experiments use a fully connected set of processors with
point-to-point links (section 6: ``P = 4``); its predecessor papers used a
single shared bus.  These helpers build the common shapes with
deterministic names so tests and benchmarks can construct architectures
in one line.
"""

from __future__ import annotations

from repro.exceptions import ArchitectureError
from repro.hardware.architecture import Architecture
from repro.hardware.link import Link


def _processor_names(count: int, prefix: str) -> list[str]:
    if count < 1:
        raise ArchitectureError("an architecture needs at least one processor")
    return [f"{prefix}{i + 1}" for i in range(count)]


def fully_connected(
    count: int,
    prefix: str = "P",
    link_prefix: str = "L",
    name: str = "fully-connected",
) -> Architecture:
    """Every processor pair joined by a dedicated point-to-point link.

    Link names follow the paper's ``L1.2`` convention.

    >>> arc = fully_connected(3)
    >>> arc.link_names()
    ('L1.2', 'L1.3', 'L2.3')
    """
    arc = Architecture(name)
    names = _processor_names(count, prefix)
    for proc in names:
        arc.add_processor(proc)
    for i in range(count):
        for j in range(i + 1, count):
            arc.add_link(Link.between(f"{link_prefix}{i + 1}.{j + 1}", names[i], names[j]))
    return arc


def single_bus(
    count: int,
    prefix: str = "P",
    bus_name: str = "BUS",
    name: str = "single-bus",
) -> Architecture:
    """All processors on one shared multi-point bus (the [12, 13] setting)."""
    arc = Architecture(name)
    names = _processor_names(count, prefix)
    for proc in names:
        arc.add_processor(proc)
    if count >= 2:
        arc.add_link(Link.bus(bus_name, names))
    return arc


def ring(
    count: int,
    prefix: str = "P",
    link_prefix: str = "L",
    name: str = "ring",
) -> Architecture:
    """Processors joined in a cycle by point-to-point links."""
    arc = Architecture(name)
    names = _processor_names(count, prefix)
    for proc in names:
        arc.add_processor(proc)
    if count == 2:
        arc.add_link(Link.between(f"{link_prefix}1.2", names[0], names[1]))
        return arc
    for i in range(count):
        if count > 1:
            j = (i + 1) % count
            lo, hi = sorted((i, j))
            arc.add_link(Link.between(f"{link_prefix}{lo + 1}.{hi + 1}", names[lo], names[hi]))
    return arc


def star(
    count: int,
    prefix: str = "P",
    link_prefix: str = "L",
    hub: str | None = None,
    name: str = "star",
) -> Architecture:
    """One hub processor with a dedicated link to every other processor."""
    arc = Architecture(name)
    names = _processor_names(count, prefix)
    for proc in names:
        arc.add_processor(proc)
    center = hub if hub is not None else names[0]
    if center not in names:
        raise ArchitectureError(f"hub {center!r} is not one of the processors")
    for proc in names:
        if proc != center:
            lo, hi = sorted((center, proc))
            arc.add_link(Link.between(f"{link_prefix}{lo}.{hi}", lo, hi))
    return arc
