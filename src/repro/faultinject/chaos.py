"""The chaos harness behind ``repro chaos run``.

One invocation proves one property end-to-end: a campaign executed
under a deterministic fault-injection plan — torn writes, ENOSPC,
stolen leases, killed workers, killed merges — produces a merged store
**byte-identical** to a clean serial run of the same campaign.  Faults
are allowed to cost time (retries, re-claims, respawned rounds), never
results.

The choreography:

1. **reference** — the spec runs serially, injection-free, in the
   parent process; its store merges canonically into the reference
   bytes;
2. **chaos rounds** — a directory campaign is initialized in a scratch
   root and attacked by subprocess workers (identities
   ``chaos-r<round>-w<n>``), each of which installs the plan itself
   (fresh per-process hit counters — exactly what a real crashed-and-
   respawned worker would have).  Workers that die (injected kills,
   escaped faults) are simply replaced next round until every job is
   recorded or the round budget runs out;
3. **chaos merge** — the shards merge in a subprocess (identity
   ``merge-<round>``) so kill-mid-merge plans land on the real atomic-
   publish window; a killed merge is retried with the next identity —
   the old-or-new (never torn) invariant plus idempotent re-merge is
   the recovery under test;
4. **verdict** — the chaos-merged bytes are compared against the
   reference bytes, and every fired fault (recorded by each injected
   process into one shared O_APPEND JSONL log) comes back in the
   report.  Keyed triggers make :meth:`ChaosReport.fault_signature` a
   pure function of (plan, seed, campaign) — the exact-replay pin.

The parent process itself always runs injection-free: the harness is
the experimenter, not the subject.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro import obs
from repro.campaign.backends.directory import DirectoryCampaign, worker_loop
from repro.campaign.jobs import expand_jobs
from repro.campaign.merge import merge_stores
from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore
from repro.faultinject.plan import InjectionPlan, load_plan, plan_to_dict
from repro.faultinject.runtime import configure, deconfigure, is_active

#: Exit code of a chaos subprocess whose injected fault escaped
#: containment (distinct from injected-kill exit codes).
CRASHED_WORKER_EXIT = 70
CRASHED_MERGE_EXIT = 75


@dataclass
class ChaosReport:
    """What one :func:`run_chaos` invocation observed and concluded."""

    campaign: str
    plan: str
    seed: int
    jobs: int
    workers: int
    rounds_used: int = 0
    merge_rounds_used: int = 0
    recorded: int = 0
    complete: bool = False
    merge_ok: bool = False
    identical: bool = False
    fired: list[dict] = field(default_factory=list)
    worker_exits: list[list[int]] = field(default_factory=list)
    root: Path | None = None
    reference_path: Path | None = None
    merged_path: Path | None = None
    elapsed_s: float = 0.0

    @property
    def passed(self) -> bool:
        """The harness's one-bit verdict."""
        return self.complete and self.merge_ok and self.identical

    def fault_signature(self) -> list[str]:
        """The deduplicated fired-fault set, replay-comparable.

        Keyed triggers fire as a pure function of (plan seed, site,
        key), so two runs of the same plan+seed+campaign — at any
        worker count — produce the same signature.  Hit indices and
        process identities are deliberately excluded: those are
        schedule-dependent.
        """
        return sorted(
            {
                f"{entry['site']}|{entry['action']}|{entry.get('key') or ''}"
                for entry in self.fired
            }
        )

    def fired_by_site(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for entry in self.fired:
            counts[entry["site"]] = counts.get(entry["site"], 0) + 1
        return counts

    def summary(self) -> str:
        """The multi-line human-readable verdict."""
        sites = ", ".join(
            f"{site} x{count}"
            for site, count in sorted(self.fired_by_site().items())
        )
        lines = [
            f"chaos {self.campaign!r} (plan {self.plan or 'unnamed'!r}, "
            f"seed {self.seed}): {self.jobs} jobs, "
            f"{self.workers} workers/round",
            f"  faults fired: {len(self.fired)}"
            + (f" ({sites})" if sites else ""),
            f"  workers: {self.rounds_used} round(s), exits "
            f"{self.worker_exits}; merge: {self.merge_rounds_used} "
            "attempt(s)",
        ]
        if not self.complete:
            lines.append(
                f"  INCOMPLETE: {self.recorded}/{self.jobs} jobs recorded "
                "within the round budget"
            )
        elif not self.merge_ok:
            lines.append("  MERGE FAILED within the attempt budget")
        elif self.identical:
            lines.append(
                "  merged store is byte-identical to the clean serial run"
            )
        else:
            lines.append(
                "  merged store DIFFERS from the clean serial run "
                f"({self.merged_path} vs {self.reference_path})"
            )
        lines.append(f"  elapsed {self.elapsed_s:.2f}s, scratch {self.root}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "campaign": self.campaign,
            "plan": self.plan,
            "seed": self.seed,
            "jobs": self.jobs,
            "workers": self.workers,
            "rounds_used": self.rounds_used,
            "merge_rounds_used": self.merge_rounds_used,
            "recorded": self.recorded,
            "complete": self.complete,
            "merge_ok": self.merge_ok,
            "identical": self.identical,
            "passed": self.passed,
            "fired": self.fired,
            "fault_signature": self.fault_signature(),
            "worker_exits": self.worker_exits,
            "root": None if self.root is None else str(self.root),
            "elapsed_s": round(self.elapsed_s, 3),
        }


def _chaos_worker(
    root: str,
    worker_id: str,
    plan_document: dict,
    seed: int,
    lease_ttl_s: float,
    poll_s: float,
    max_attempts: int,
    log_path: str,
) -> None:
    """Subprocess entry: install the plan, then be a normal worker."""
    from repro.faultinject.plan import plan_from_dict

    obs.worker_reset()
    configure(
        plan_from_dict(plan_document, seed=seed),
        worker=worker_id,
        log_path=log_path,
    )
    try:
        worker_loop(
            root,
            worker=worker_id,
            lease_ttl_s=lease_ttl_s,
            poll_s=poll_s,
            max_attempts=max_attempts,
        )
    except Exception:
        # An injected fault escaped every containment layer — that is a
        # worker crash, which the harness models by spawning the next
        # round.  Quiet exit: the fault log already has the forensics.
        os._exit(CRASHED_WORKER_EXIT)


def _chaos_merge(
    root: str,
    output: str,
    plan_document: dict,
    seed: int,
    identity: str,
    log_path: str,
) -> None:
    """Subprocess entry: merge the campaign's shards under injection."""
    from repro.faultinject.plan import plan_from_dict

    obs.worker_reset()
    configure(
        plan_from_dict(plan_document, seed=seed),
        worker=identity,
        log_path=log_path,
    )
    try:
        merge_stores([root], output)
    except Exception:
        os._exit(CRASHED_MERGE_EXIT)


def run_chaos(
    spec: CampaignSpec,
    plan: InjectionPlan | str | Path,
    *,
    seed: int | None = None,
    workers: int = 2,
    rounds: int = 5,
    merge_rounds: int = 3,
    root: str | Path | None = None,
    lease_ttl_s: float = 2.0,
    poll_s: float = 0.05,
    max_attempts: int = 6,
    join_timeout_s: float = 120.0,
    progress: Callable[[str], None] | None = None,
) -> ChaosReport:
    """Run ``spec`` under ``plan`` and verdict the merged bytes.

    ``seed`` overrides the plan's own; ``workers`` processes attack the
    campaign per round, for at most ``rounds`` rounds (dead workers are
    replaced between rounds), then the shards merge in a subprocess with
    at most ``merge_rounds`` attempts.  ``root`` keeps the scratch
    directory somewhere inspectable (default: a fresh temp dir).
    """
    started = time.perf_counter()
    # The harness is the experimenter, not the subject: whatever plan
    # this process had (e.g. via REPRO_FAULT_PLAN) must not perturb the
    # reference run or the orchestration.
    deconfigure()
    assert not is_active()
    if not isinstance(plan, InjectionPlan):
        plan = load_plan(plan, seed=seed)
    elif seed is not None:
        plan = InjectionPlan(seed=seed, triggers=plan.triggers, name=plan.name)
    plan_document = plan_to_dict(plan)
    say = progress or (lambda message: None)

    scratch = Path(
        root
        if root is not None
        else tempfile.mkdtemp(prefix="repro-chaos-")
    )
    scratch.mkdir(parents=True, exist_ok=True)
    log_path = scratch / "faults.jsonl"
    wanted = {job.digest for job in expand_jobs(spec)}
    report = ChaosReport(
        campaign=spec.name,
        plan=plan.name,
        seed=plan.seed,
        jobs=len(wanted),
        workers=workers,
        root=scratch,
    )

    # 1. The clean serial reference, canonically merged.
    say(f"reference: serial run of {len(wanted)} jobs (injection off)")
    reference_store = scratch / "reference.jsonl"
    run_campaign(
        spec, jobs=1, store=reference_store, backend="serial"
    )
    report.reference_path = scratch / "reference-merged.jsonl"
    merge_stores([reference_store], report.reference_path)
    reference_bytes = report.reference_path.read_bytes()

    # 2. Chaos rounds against a directory campaign.
    campaign = DirectoryCampaign.initialize(spec, scratch / "campaign")
    for round_index in range(rounds):
        remaining = wanted - campaign.recorded_digests()
        if not remaining:
            break
        report.rounds_used = round_index + 1
        count = max(1, min(workers, len(remaining)))
        say(
            f"round {round_index}: {len(remaining)} jobs remaining, "
            f"{count} workers"
        )
        processes = [
            multiprocessing.Process(
                target=_chaos_worker,
                args=(
                    str(campaign.root),
                    f"chaos-r{round_index}-w{index}",
                    plan_document,
                    plan.seed,
                    lease_ttl_s,
                    poll_s,
                    max_attempts,
                    str(log_path),
                ),
                daemon=True,
            )
            for index in range(count)
        ]
        for process in processes:
            process.start()
        exits = []
        for process in processes:
            process.join(join_timeout_s)
            if process.is_alive():
                process.terminate()
                process.join()
            exits.append(process.exitcode)
        report.worker_exits.append(exits)
    recorded = campaign.recorded_digests()
    report.recorded = len(wanted & recorded)
    report.complete = wanted <= recorded

    # 3. Merge under injection, retried across identities.
    report.merged_path = scratch / "merged.jsonl"
    if report.complete:
        for merge_index in range(merge_rounds):
            report.merge_rounds_used = merge_index + 1
            identity = f"merge-{merge_index}"
            say(f"merge attempt {merge_index} as {identity!r}")
            process = multiprocessing.Process(
                target=_chaos_merge,
                args=(
                    str(campaign.root),
                    str(report.merged_path),
                    plan_document,
                    plan.seed,
                    identity,
                    str(log_path),
                ),
                daemon=True,
            )
            process.start()
            process.join(join_timeout_s)
            if process.is_alive():
                process.terminate()
                process.join()
            if process.exitcode == 0 and report.merged_path.exists():
                report.merge_ok = True
                break

    # 4. Verdict + forensics.
    if report.merge_ok:
        report.identical = (
            report.merged_path.read_bytes() == reference_bytes
        )
    if log_path.exists():
        report.fired = [
            line
            for line in ResultStore(log_path).lines()
        ]
    report.elapsed_s = time.perf_counter() - started
    return report
