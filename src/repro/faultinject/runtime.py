"""The process-wide failpoint registry and its zero-cost fast path.

Instrumented call sites invoke :func:`failpoint` with their site name
and an optional content *key* (usually the job digest).  With no plan
configured — the production state — the call is one module-global load,
one ``None`` check and a return: the same discipline as the obs layer's
``NOOP_SPAN`` fast path, pinned by ``benchmarks/bench_fault_overhead.py``.

With a plan active, each hit consults the plan's triggers:

* ``raise`` / ``sleep`` / ``kill`` faults are acted on *inside* the
  failpoint — the call site needs no cooperation;
* ``torn_write`` / ``corrupt`` faults return a :class:`Fault` handle
  the call site applies to its payload (truncate, then raise the
  fault's error; or write the mutated bytes and carry on silently).

Every fired fault is recorded — as a ``warn.fault_injected`` trace
event, a ``faultinject.fired`` counter, and (when configured) one line
of an append-only JSONL fault log the chaos harness reads back to pin
exact-replay determinism.
"""

from __future__ import annotations

import json
import os
import threading
import time
from fnmatch import fnmatchcase
from pathlib import Path

from repro import obs
from repro.faultinject.plan import (
    FaultTrigger,
    InjectionPlan,
    derive_unit,
    load_plan,
)


class InjectedFault(OSError):
    """A deterministic I/O error raised by an active injection plan."""


class Fault:
    """A fired data-corruption fault the call site must apply itself."""

    __slots__ = ("site", "kind", "hit", "key", "trigger", "_seed")

    def __init__(
        self,
        site: str,
        trigger: FaultTrigger,
        hit: int,
        key: str | None,
        seed: int,
    ) -> None:
        self.site = site
        self.kind = trigger.action
        self.trigger = trigger
        self.hit = hit
        self.key = key
        self._seed = seed

    def apply_text(self, text: str) -> str:
        """The faulted form of ``text`` (truncated or byte-corrupted)."""
        if not text:
            return text
        if self.kind == "torn_write":
            cut = max(1, int(len(text) * self.trigger.fraction))
            return text[:cut]
        # ``corrupt``: overwrite one deterministic position with NUL —
        # never valid inside JSON, so corruption is detectable, never a
        # silent record mutation that would masquerade as divergence.
        token = self.key if self.key is not None else self.hit
        unit = derive_unit(self._seed, self.site + "#pos", token)
        position = int(unit * max(1, len(text) - 1))
        if text[position] == "\n":
            position = max(0, position - 1)
        return text[:position] + "\x00" + text[position + 1:]

    def error(self) -> InjectedFault:
        """The OSError a cooperating call site raises after truncating."""
        return InjectedFault(
            self.trigger.errno_code,
            f"injected {self.kind} at {self.site} "
            f"(hit {self.hit}, key {self.key!r})",
        )


class _Runtime:
    """One configured plan plus this process's hit/fire bookkeeping."""

    def __init__(
        self,
        plan: InjectionPlan,
        worker: str | None = None,
        log_path: str | Path | None = None,
    ) -> None:
        self.plan = plan
        self.worker = worker
        self.log_path = None if log_path is None else Path(log_path)
        self._by_site = {
            site: tuple(
                (index, trigger)
                for index, trigger in enumerate(plan.triggers)
                if trigger.site == site
            )
            for site in plan.sites()
        }
        self._lock = threading.Lock()
        self._hits: dict[str, int] = {}
        self._fired: list[dict] = []
        self._fired_keys: set[tuple[int, str]] = set()
        self._fire_counts: dict[int, int] = {}

    # -- bookkeeping ----------------------------------------------------

    def hit_counts(self) -> dict[str, int]:
        with self._lock:
            return dict(self._hits)

    def fired(self) -> list[dict]:
        with self._lock:
            return list(self._fired)

    def _select(
        self, site: str, key: str | None, hit: int
    ) -> tuple[int, FaultTrigger] | None:
        for index, trigger in self._by_site.get(site, ()):
            if trigger.worker is not None and not fnmatchcase(
                self.worker or "", trigger.worker
            ):
                continue
            if trigger.nth is not None and hit != trigger.nth:
                continue
            if trigger.probability is not None:
                token = key if key is not None else hit
                if derive_unit(
                    self.plan.seed, site, token
                ) >= trigger.probability:
                    continue
            if key is not None and (index, key) in self._fired_keys:
                # Fire-once-per-key: the retry that follows a keyed
                # fault must heal, and the fired set stays a pure
                # function of (plan, seed, keys) across interleavings.
                continue
            count = self._fire_counts.get(index, 0)
            if trigger.limit is not None and count >= trigger.limit:
                continue
            return index, trigger
        return None

    def _record(
        self, trigger: FaultTrigger, site: str, key: str | None, hit: int
    ) -> None:
        entry = {
            "site": site,
            "action": trigger.action,
            "key": key,
            "hit": hit,
            "worker": self.worker,
            "pid": os.getpid(),
        }
        self._fired.append(entry)
        obs.event(
            "warn.fault_injected",
            site=site,
            action=trigger.action,
            key=key,
            hit=hit,
        )
        obs.metrics.inc("faultinject.fired", site=site)
        if self.log_path is not None:
            # O_APPEND single-write lines: safe for any number of
            # concurrently-injected processes sharing one fault log.
            line = json.dumps(entry, sort_keys=True) + "\n"
            descriptor = os.open(
                self.log_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            try:
                os.write(descriptor, line.encode())
            finally:
                os.close(descriptor)

    # -- the hot path ---------------------------------------------------

    def fire(self, site: str, key: str | None) -> Fault | None:
        with self._lock:
            hit = self._hits.get(site, 0) + 1
            self._hits[site] = hit
            selected = self._select(site, key, hit)
            if selected is None:
                return None
            index, trigger = selected
            self._fire_counts[index] = self._fire_counts.get(index, 0) + 1
            if key is not None:
                self._fired_keys.add((index, key))
            self._record(trigger, site, key, hit)
        if trigger.action == "sleep":
            time.sleep(trigger.seconds)
            return None
        if trigger.action == "kill":
            # A hard crash, not an exception: no finally blocks, no
            # atexit, no flushing — exactly what a SIGKILL leaves.
            os._exit(trigger.exit_code)
        if trigger.action == "raise":
            exception_class = trigger.exception_class()
            if exception_class is not None:
                raise exception_class(
                    f"injected {exception_class.__name__} at {site} "
                    f"(hit {hit}, key {key!r})"
                )
            raise InjectedFault(
                trigger.errno_code,
                f"injected raise at {site} (hit {hit}, key {key!r})",
            )
        return Fault(site, trigger, hit, key, self.plan.seed)


#: The process-wide runtime; ``None`` = injection disabled (fast path).
_ACTIVE: _Runtime | None = None


def failpoint(site: str, key: str | None = None) -> Fault | None:
    """The instrumented-site entry point; no-op unless a plan is active.

    Returns ``None`` on the overwhelmingly common path (no plan, or the
    plan's triggers did not fire).  ``raise``/``sleep``/``kill`` faults
    act here; ``torn_write``/``corrupt`` faults come back as a
    :class:`Fault` for the call site to apply.
    """
    runtime = _ACTIVE
    if runtime is None:
        return None
    return runtime.fire(site, key)


def configure(
    plan: InjectionPlan,
    *,
    worker: str | None = None,
    log_path: str | Path | None = None,
) -> _Runtime:
    """Install ``plan`` process-wide (fresh hit counters; last call wins)."""
    global _ACTIVE
    _ACTIVE = _Runtime(plan, worker=worker, log_path=log_path)
    return _ACTIVE


def deconfigure() -> None:
    """Disable injection (back to the zero-cost path)."""
    global _ACTIVE
    _ACTIVE = None


def is_active() -> bool:
    """True when an injection plan is installed in this process."""
    return _ACTIVE is not None


def active_plan() -> InjectionPlan | None:
    """The installed plan, or ``None``."""
    runtime = _ACTIVE
    return None if runtime is None else runtime.plan


def set_worker(worker: str) -> None:
    """Bind the worker identity ``worker``-pattern triggers match on."""
    runtime = _ACTIVE
    if runtime is not None:
        runtime.worker = worker


def hit_counts() -> dict[str, int]:
    """Per-site hit counters of the active runtime (empty when off)."""
    runtime = _ACTIVE
    return {} if runtime is None else runtime.hit_counts()


def fired_faults() -> list[dict]:
    """Every fault fired in this process so far (empty when off)."""
    runtime = _ACTIVE
    return [] if runtime is None else runtime.fired()


def configure_from_env(environ=os.environ) -> _Runtime | None:
    """Honor ``REPRO_FAULT_PLAN`` (CLI entry points call this once).

    ``REPRO_FAULT_PLAN`` is an injection-plan path; unset or empty means
    disabled.  ``REPRO_FAULT_SEED`` overrides the plan's seed,
    ``REPRO_FAULT_WORKER`` pre-binds the worker identity, and
    ``REPRO_FAULT_LOG`` appends fired faults to a JSONL log.
    """
    value = environ.get("REPRO_FAULT_PLAN", "").strip()
    if not value:
        return None
    seed = environ.get("REPRO_FAULT_SEED", "").strip()
    plan = load_plan(value, seed=int(seed) if seed else None)
    return configure(
        plan,
        worker=environ.get("REPRO_FAULT_WORKER") or None,
        log_path=environ.get("REPRO_FAULT_LOG") or None,
    )
