"""Deterministic failpoint injection for the campaign I/O stack.

The paper's subject is surviving faults; this package makes the
*infrastructure* prove the same property.  Named failpoint sites are
threaded through every crash-consequential path — result-store appends,
cache writes, claim files, heartbeats, merges — and stay zero-cost
no-ops until a seeded :class:`~repro.faultinject.plan.InjectionPlan` is
configured, after which faults fire deterministically: same plan, same
seed, same faults, whatever the worker count or interleaving.

Three layers:

* :mod:`repro.faultinject.plan` — the JSON plan model, validation, and
  the SHA-256-derived per-(site, key) RNG;
* :mod:`repro.faultinject.runtime` — the process-wide registry behind
  :func:`failpoint`, with per-process hit counters, fire-once-per-key
  bookkeeping and an append-only fired-fault log;
* :mod:`repro.faultinject.chaos` — the ``repro chaos run`` harness:
  run a campaign under injection, assert the merged store is
  byte-identical to a clean serial run (imported lazily — it depends
  on the campaign layer, which depends on this package).

See ``docs/robustness.md`` for the failure-mode matrix, the site
catalog and a plan-writing guide.
"""

from __future__ import annotations

from repro.faultinject.plan import (
    ACTIONS,
    DATA_ACTIONS,
    FAILPOINT_SITES,
    FaultTrigger,
    InjectionPlan,
    derive_unit,
    load_plan,
    plan_from_dict,
    plan_to_dict,
)
from repro.faultinject.runtime import (
    Fault,
    InjectedFault,
    active_plan,
    configure,
    configure_from_env,
    deconfigure,
    failpoint,
    fired_faults,
    hit_counts,
    is_active,
    set_worker,
)

__all__ = [
    "ACTIONS",
    "DATA_ACTIONS",
    "FAILPOINT_SITES",
    "Fault",
    "FaultTrigger",
    "InjectedFault",
    "InjectionPlan",
    "active_plan",
    "configure",
    "configure_from_env",
    "deconfigure",
    "derive_unit",
    "failpoint",
    "fired_faults",
    "hit_counts",
    "is_active",
    "load_plan",
    "plan_from_dict",
    "plan_to_dict",
    "set_worker",
]
