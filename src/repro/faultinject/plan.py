"""Injection plans: which faults fire where, decided by a seeded hash.

A *plan* is a JSON document listing triggers.  Each trigger names a
failpoint site (see :data:`FAILPOINT_SITES`), a firing condition —
``probability`` (hash-derived), ``nth`` hit, and/or a ``worker``
identity pattern — and an action: raise an ``OSError`` (``ENOSPC`` et
al.), truncate a write mid-record, corrupt bytes in place, sleep past a
lease TTL, or kill the process outright.

Determinism is the whole point: the per-site RNG is not ``random`` but
SHA-256 over ``(plan seed, site, token)``, where the token is the
content *key* a call site passes (usually the job digest) or, keyless,
the site's hit index.  Keyed triggers therefore fire on the **same
payloads** whatever the worker count or interleaving — a failing chaos
run replays bit-identically from its plan and seed alone.
"""

from __future__ import annotations

import builtins
import errno as errno_module
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import FaultPlanError

#: Every failpoint site threaded through the codebase, with the crash
#: window it models.  ``repro chaos sites`` prints this catalog;
#: :func:`load_plan` validates trigger sites against it.
FAILPOINT_SITES: dict[str, str] = {
    "store.append.write": (
        "result-store line write — torn/partial JSONL appends "
        "(key: job digest or event kind)"
    ),
    "store.append.fsync": (
        "result-store durability barrier — fsync failure after a clean "
        "write (key: job digest or event kind)"
    ),
    "cache.get.read": (
        "schedule-cache entry read — I/O error serving a memoized "
        "document (key: job digest)"
    ),
    "cache.put.write": (
        "schedule-cache temp-file write — torn entry bytes or ENOSPC "
        "(key: job digest)"
    ),
    "cache.put.replace": (
        "schedule-cache atomic rename — crash between temp write and "
        "publish (key: job digest)"
    ),
    "directory.claim.create": (
        "claim-file O_EXCL create — I/O error in the claim race window "
        "(key: job digest)"
    ),
    "directory.claim.write": (
        "claim-file payload write — torn claim document (key: job digest)"
    ),
    "directory.heartbeat.renew": (
        "lease heartbeat tick — stall (sleep past the TTL) or an error "
        "killing the daemon thread (key: job digest)"
    ),
    "directory.worker.claimed": (
        "between winning a claim and starting the job (key: job digest)"
    ),
    "directory.worker.record": (
        "between finishing a job and recording it to the shard "
        "(key: job digest)"
    ),
    "directory.worker.release": (
        "between recording a job and releasing its claim "
        "(key: job digest)"
    ),
    "worker.execute": (
        "job execution entry — slow or dying compute, any backend "
        "(key: job digest)"
    ),
    "merge.write": (
        "canonical-merge temp-file write — torn merged store "
        "(key: output file name)"
    ),
    "merge.replace": (
        "canonical-merge atomic rename — crash between temp write and "
        "publish (key: output file name)"
    ),
}

#: Supported trigger actions.
ACTIONS = ("raise", "torn_write", "corrupt", "sleep", "kill")

#: Actions the call site must cooperate with (the failpoint returns a
#: :class:`~repro.faultinject.runtime.Fault` instead of acting itself).
DATA_ACTIONS = ("torn_write", "corrupt")


def derive_unit(seed: int, site: str, token: object) -> float:
    """Deterministic uniform draw in ``[0, 1)`` for one (site, token).

    SHA-256 over a domain-separated string, first 8 bytes as an
    integer — stable across processes, platforms and Python versions,
    unlike anything touching ``random`` or ``hash()``.
    """
    digest = hashlib.sha256(
        f"repro-fault:{seed}:{site}:{token}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class FaultTrigger:
    """One line of an injection plan: site × condition × action."""

    site: str
    action: str
    #: Hash-derived firing probability over the site's key (or hit index).
    probability: float | None = None
    #: Fire exactly on the site's Nth hit in this process (1-based).
    nth: int | None = None
    #: ``fnmatch`` pattern over the worker identity; no match, no fire.
    worker: str | None = None
    #: ``errno`` name raised by ``raise`` / ``torn_write`` faults.
    errno_name: str = "EIO"
    #: Exception class name for non-OSError ``raise`` faults.
    exception: str | None = None
    #: ``sleep`` action duration.
    seconds: float = 0.05
    #: ``torn_write`` cut point as a fraction of the payload.
    fraction: float = 0.5
    #: ``kill`` action exit status.
    exit_code: int = 86
    #: Max fires of this trigger per process (``None`` = unlimited).
    limit: int | None = None

    @property
    def errno_code(self) -> int:
        return getattr(errno_module, self.errno_name)

    def exception_class(self) -> type[BaseException] | None:
        if self.exception is None:
            return None
        return getattr(builtins, self.exception)


@dataclass(frozen=True)
class InjectionPlan:
    """A named, seeded set of fault triggers."""

    seed: int
    triggers: tuple[FaultTrigger, ...]
    name: str = ""

    def triggers_for(self, site: str) -> tuple[FaultTrigger, ...]:
        return tuple(t for t in self.triggers if t.site == site)

    def sites(self) -> set[str]:
        return {t.site for t in self.triggers}


def _validate_trigger(entry: dict, index: int, strict: bool) -> FaultTrigger:
    where = f"trigger #{index + 1}"
    if not isinstance(entry, dict):
        raise FaultPlanError(f"{where} must be an object, got {entry!r}")
    unknown = set(entry) - {
        "site", "action", "probability", "nth", "worker", "errno",
        "exception", "seconds", "fraction", "exit_code", "limit",
    }
    if unknown:
        raise FaultPlanError(f"{where} has unknown fields {sorted(unknown)}")
    site = entry.get("site")
    if not isinstance(site, str) or not site:
        raise FaultPlanError(f"{where} needs a 'site' string")
    if strict and site not in FAILPOINT_SITES:
        raise FaultPlanError(
            f"{where} names unknown site {site!r}; known sites: "
            f"{', '.join(sorted(FAILPOINT_SITES))}"
        )
    action = entry.get("action")
    if action not in ACTIONS:
        raise FaultPlanError(
            f"{where} action {action!r} is not one of {ACTIONS}"
        )
    probability = entry.get("probability")
    if probability is not None and not (0.0 < float(probability) <= 1.0):
        raise FaultPlanError(f"{where} probability must be in (0, 1]")
    nth = entry.get("nth")
    if nth is not None and int(nth) < 1:
        raise FaultPlanError(f"{where} nth must be >= 1 (1-based hits)")
    if probability is None and nth is None and entry.get("worker") is None:
        raise FaultPlanError(
            f"{where} would fire on every hit everywhere — give it a "
            "'probability', an 'nth' hit, or a 'worker' pattern"
        )
    errno_name = str(entry.get("errno", "EIO"))
    if not isinstance(getattr(errno_module, errno_name, None), int):
        raise FaultPlanError(f"{where} names unknown errno {errno_name!r}")
    exception = entry.get("exception")
    if exception is not None:
        candidate = getattr(builtins, str(exception), None)
        if not (isinstance(candidate, type)
                and issubclass(candidate, BaseException)):
            raise FaultPlanError(
                f"{where} names unknown exception class {exception!r}"
            )
    fraction = float(entry.get("fraction", 0.5))
    if not (0.0 < fraction < 1.0):
        raise FaultPlanError(f"{where} fraction must be in (0, 1)")
    seconds = float(entry.get("seconds", 0.05))
    if seconds < 0:
        raise FaultPlanError(f"{where} seconds must be >= 0")
    limit = entry.get("limit")
    if limit is not None and int(limit) < 1:
        raise FaultPlanError(f"{where} limit must be >= 1")
    return FaultTrigger(
        site=site,
        action=str(action),
        probability=None if probability is None else float(probability),
        nth=None if nth is None else int(nth),
        worker=entry.get("worker"),
        errno_name=errno_name,
        exception=None if exception is None else str(exception),
        seconds=seconds,
        fraction=fraction,
        exit_code=int(entry.get("exit_code", 86)),
        limit=None if limit is None else int(limit),
    )


def plan_from_dict(
    document: dict, *, seed: int | None = None, strict: bool = True
) -> InjectionPlan:
    """Build a validated plan; ``seed`` overrides the document's."""
    if not isinstance(document, dict):
        raise FaultPlanError(f"a plan must be an object, got {document!r}")
    raw_triggers = document.get("triggers")
    if not isinstance(raw_triggers, list):
        raise FaultPlanError("a plan needs a 'triggers' list")
    effective_seed = seed if seed is not None else document.get("seed", 0)
    try:
        effective_seed = int(effective_seed)
    except (TypeError, ValueError):
        raise FaultPlanError(f"plan seed must be an integer, got "
                             f"{effective_seed!r}") from None
    triggers = tuple(
        _validate_trigger(entry, index, strict)
        for index, entry in enumerate(raw_triggers)
    )
    return InjectionPlan(
        seed=effective_seed,
        triggers=triggers,
        name=str(document.get("name", "")),
    )


def plan_to_dict(plan: InjectionPlan) -> dict:
    """The JSON form of a plan (round-trips through ``plan_from_dict``)."""
    triggers = []
    for trigger in plan.triggers:
        entry: dict = {"site": trigger.site, "action": trigger.action}
        if trigger.probability is not None:
            entry["probability"] = trigger.probability
        if trigger.nth is not None:
            entry["nth"] = trigger.nth
        if trigger.worker is not None:
            entry["worker"] = trigger.worker
        if trigger.errno_name != "EIO":
            entry["errno"] = trigger.errno_name
        if trigger.exception is not None:
            entry["exception"] = trigger.exception
        if trigger.action == "sleep":
            entry["seconds"] = trigger.seconds
        if trigger.action == "torn_write":
            entry["fraction"] = trigger.fraction
        if trigger.action == "kill" and trigger.exit_code != 86:
            entry["exit_code"] = trigger.exit_code
        if trigger.limit is not None:
            entry["limit"] = trigger.limit
        triggers.append(entry)
    document: dict = {"seed": plan.seed, "triggers": triggers}
    if plan.name:
        document["name"] = plan.name
    return document


def load_plan(
    path: str | Path, *, seed: int | None = None, strict: bool = True
) -> InjectionPlan:
    """Load and validate a plan file; ``seed`` overrides the file's."""
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise FaultPlanError(f"cannot read plan {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise FaultPlanError(f"plan {path} is not valid JSON: {error}") from error
    return plan_from_dict(document, seed=seed, strict=strict)
