"""Worker-thread plumbing for the compiled kernel's parallel sweep.

The selection sweep's per-candidate work (sorting each σ row, extracting
the ``Npf + 1``-th smallest) is embarrassingly parallel over rows and is
numpy-bound, so threads — not processes — are the right vehicle: numpy
releases the GIL inside its sort kernels and the workers operate on
disjoint row blocks of one shared array (no pickling, no copies).

Determinism: the workers only ever *compute* per-row values into
preassigned slots; the reduction (argmax with the sequential tie-break
order) stays serial in the caller.  Result arrays are therefore
bit-identical at any worker count — which the ``kernel-parallel-smoke``
CI job pins against the serial run.

Executors are memoized per worker count and reused across runs; threads
are daemonic (an interpreter exit never hangs on the pool).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor

_EXECUTORS: dict[int, ThreadPoolExecutor] = {}


def resolve_workers(requested: int | None) -> int:
    """Effective worker count: explicit option, else environment, else 0.

    Values below 2 mean "stay serial" (a 1-worker pool would only add
    dispatch overhead).
    """
    if requested is None:
        try:
            requested = int(os.environ.get("REPRO_SWEEP_WORKERS", "0"))
        except ValueError:
            requested = 0
    return requested if requested >= 2 else 0


def get_executor(workers: int) -> ThreadPoolExecutor:
    """Shared thread pool for ``workers`` threads (memoized)."""
    executor = _EXECUTORS.get(workers)
    if executor is None:
        executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-sweep"
        )
        _EXECUTORS[workers] = executor
    return executor


def shard_ranges(count: int, workers: int) -> list[tuple[int, int]]:
    """Split ``range(count)`` into up to ``workers`` contiguous blocks."""
    if count <= 0:
        return []
    workers = min(workers, count)
    step = -(-count // workers)
    return [(lo, min(lo + step, count)) for lo in range(0, count, step)]


def run_sharded(workers: int, count: int, task) -> None:
    """Run ``task(lo, hi)`` over contiguous shards on the shared pool.

    Blocks until every shard finished; exceptions propagate to the
    caller (re-raised by ``result()``).
    """
    shards = shard_ranges(count, workers)
    if len(shards) <= 1:
        if shards:
            task(0, count)
        return
    executor = get_executor(workers)
    futures = [executor.submit(task, lo, hi) for lo, hi in shards]
    for future in futures:
        future.result()
