"""The ``Minimize_start_time`` procedure (section 4.2, steps Ê–Ñ).

Before a replica of the selected operation ``o`` is placed on processor
``p``, the procedure tries to *duplicate* the operation's Latest
Immediate Predecessor (LIP) — the predecessor whose data arrives last in
the worst case — onto ``p`` itself.  A co-located predecessor feeds the
replica through a zero-cost intra-processor communication, so a
successful duplication removes the critical comm.  Duplications are kept
only while ``S_worst(o, p)`` strictly improves; otherwise they are rolled
back via the schedule's O(changes) mutation log (step Ð).  The procedure
recurses: the
duplicated LIP's own start is minimised the same way (step Í), following
Ahmad & Kwok's duplication-based scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import SchedulingError
from repro.graphs.operations import is_memory_half
from repro.core.placement import PlacementPlan, PlacementPlanner, commit_plan
from repro.schedule.events import ScheduledOperation
from repro.schedule.schedule import Schedule
from repro.timing.exec_times import ExecutionTimes

_EPSILON = 1e-9


@dataclass
class DuplicationStats:
    """Counters reported by the scheduler for the ablation benches."""

    attempts: int = 0
    kept: int = 0
    rolled_back: int = 0
    extra_replicas: int = 0

    def merge(self, other: "DuplicationStats") -> None:
        """Accumulate another run's counters into this one."""
        self.attempts += other.attempts
        self.kept += other.kept
        self.rolled_back += other.rolled_back
        self.extra_replicas += other.extra_replicas


@dataclass
class StartTimeMinimizer:
    """Places replicas, duplicating LIPs while the start time improves."""

    planner: PlacementPlanner
    exec_times: ExecutionTimes
    duplication: bool = True
    stats: DuplicationStats = field(default_factory=DuplicationStats)

    def place(
        self,
        operation: str,
        processor: str,
        schedule: Schedule,
        duplicated: bool = False,
    ) -> ScheduledOperation:
        """Implement ``Minimize_start_time(operation, processor)``.

        Returns the placed replica.  Raises
        :class:`~repro.exceptions.SchedulingError` when the operation
        cannot run on the processor (step Ë: ``S_worst`` undefined).
        """
        plan = self.planner.plan(operation, processor, schedule)
        if plan is None:
            raise SchedulingError(
                f"operation {operation!r} cannot be scheduled on {processor!r}"
            )
        if self.duplication:
            plan = self._improve_by_duplication(plan, schedule)
        return commit_plan(plan, schedule, duplicated=duplicated)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _improve_by_duplication(
        self, plan: PlacementPlan, schedule: Schedule
    ) -> PlacementPlan:
        operation, processor = plan.operation, plan.processor
        best_worst = plan.s_worst
        while True:
            lip = self._duplicable_lip(plan, schedule)
            if lip is None:
                return plan
            self.stats.attempts += 1
            saved = schedule.mark()
            try:
                # Step Í: recursively minimise the LIP's start on p, which
                # places an extra (duplicated) replica of the LIP there.
                self.place(lip, processor, schedule, duplicated=True)
            except SchedulingError:
                schedule.undo_to(saved)
                self.stats.rolled_back += 1
                return plan
            new_plan = self.planner.plan(operation, processor, schedule)
            if new_plan is None or new_plan.s_worst >= best_worst - _EPSILON:
                # Step Ð: the replication does not pay off — undo it all.
                schedule.undo_to(saved)
                self.stats.rolled_back += 1
                return plan
            # Step Ñ: improvement kept; hunt for the new LIP.
            self.stats.kept += 1
            self.stats.extra_replicas += 1
            best_worst = new_plan.s_worst
            plan = new_plan

    def _duplicable_lip(
        self, plan: PlacementPlan, schedule: Schedule
    ) -> str | None:
        """Step Ì: the LIP of the plan, when duplicating it can help.

        The LIP's feed must be remote (a co-located predecessor already
        costs nothing), the predecessor must be allowed on the processor,
        must not be a memory half (register replicas are pinned together
        and never duplicated), and must not already have a replica there.
        """
        feed = plan.critical_feed()
        if feed is None or feed.local_end is not None:
            return None
        predecessor = feed.predecessor
        if is_memory_half(predecessor):
            return None
        if not self.exec_times.is_allowed(predecessor, plan.processor):
            return None
        if schedule.replica_on(predecessor, plan.processor) is not None:
            return None
        return predecessor
