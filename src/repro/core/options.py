"""Tunable knobs of the FTBAR scheduler.

The defaults reproduce the paper's algorithm; the flags exist for the
ablation experiments (E8 in DESIGN.md) that quantify how much each
design choice contributes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SchedulerOptions:
    """Configuration of :class:`~repro.core.ftbar.FTBARScheduler`.

    Parameters
    ----------
    duplication:
        Apply the ``Minimize_start_time`` LIP-duplication procedure when
        placing replicas (section 4.2, micro-step Â).  Disabling it
        yields plain active replication.
    link_insertion:
        Allow comms to be inserted into idle gaps of link timelines
        instead of always appending after the last scheduled comm.  The
        paper's description is append-only; insertion is a common
        refinement and is measured by the ablation bench.
    processor_aware_pressure:
        Replace the paper's pressure ``σ = S_worst(o, p) + S̄(o)`` (whose
        ``S̄`` uses the *average* execution time of ``o``) by the
        processor-aware ``σ = S_worst(o, p) + Exe(o, p) + tail(o)``,
        which accounts for how slowly ``o`` actually runs on ``p``.
        Off by default: the paper's formula is what reproduces its
        numbers exactly (the worked example lands on 15.05 with it); the
        aware variant is an improvement measured by the ablation bench
        (it finds 12.05 on the same example).
    incremental:
        Run the incremental engine: indegree-counter candidate
        maintenance plus the dirty-set pressure cache (see
        :mod:`repro.core.ftbar`).  The produced schedules and observer
        streams are bit-identical to the legacy full-recompute path —
        the flag is a pure-performance escape hatch kept so the E6
        runtime bench can measure the speedup in-repo and so a
        regression can be bisected to the caching layer.
    npl:
        Override of the problem's link-failure hypothesis ``Npl``
        (``None`` keeps the problem's own value).  With an effective
        ``Npl >= 1`` every inter-processor transfer is scheduled over
        ``Npl + 1`` link-disjoint routes; ``Npl = 0`` is bit-identical
        to the paper's single-route engine.
    compiled:
        Run the compiled scheduling kernel: operations, processors,
        links and edges are interned to dense integer ids once per
        problem and the per-step inner loop (ready-set sweep, candidate
        pressure evaluation, placement trials) runs as batched passes
        over flat preallocated arrays instead of per-pair object graphs
        (see :mod:`repro.core.kernel`).  The produced schedules,
        observer streams, content hashes and evaluation counters are
        bit-identical to the object path — the flag is a
        pure-performance escape hatch, kept so the equivalence corpus
        can pin compiled-vs-legacy and a regression can be bisected to
        the compilation layer.  Composes with ``incremental`` (the plan
        cache then runs on id-indexed dirty rows).  Ignored (object
        path used) when ``link_insertion`` is set: gap insertion makes
        whole link timelines relevant, which the flat append-mode
        arrays deliberately do not model.
    symmetry:
        Prune isomorphic candidate placements in the compiled kernel:
        the architecture's processor/link automorphism group is computed
        at compile time (:mod:`repro.core.symmetry`) and, while the
        partial schedule is still invariant under a generator, only one
        representative processor per orbit is evaluated — the σ of the
        other orbit members is a bit-identical copy, so schedules,
        observer streams and content hashes are unchanged (the
        ``pressure_evaluations`` / ``cache_hits`` counters shrink;
        ``FTBARStats.symmetry_pruned`` counts the skipped pairs).  Only
        the compiled kernel implements the pruning; the object engine
        ignores the flag.  ``symmetry=False`` is the escape hatch that
        restores the exhaustive sweep (and the PR-5 counter pins).
    sweep_workers:
        Worker-thread count of the compiled kernel's parallel selection
        sweep (:mod:`repro.core.parallel`).  ``None`` reads the
        ``REPRO_SWEEP_WORKERS`` environment variable (0 when unset);
        values below 2 keep the sweep serial.  The parallel reduction
        preserves the sequential tie-break order, so results and
        counters are identical at any worker count.
    """

    duplication: bool = True
    link_insertion: bool = False
    processor_aware_pressure: bool = False
    incremental: bool = True
    npl: int | None = None
    compiled: bool = True
    symmetry: bool = True
    sweep_workers: int | None = None
