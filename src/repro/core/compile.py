"""Problem lowering for the compiled scheduling kernel.

The object engine spends its inner loop walking string-keyed dicts:
``ExecutionTimes.time_of`` and ``CommunicationTimes.time_of`` hash a
freshly built tuple per lookup, ``Architecture.links_between`` hashes a
processor-name pair, and every trial plan allocates a
:class:`~repro.core.placement.PlacementPlan` object graph.  None of that
varies across the thousands of candidate evaluations of one run, so —
exactly like :mod:`repro.simulation.compiled` does for the batched
failure simulator — :class:`CompiledProblem` interns every operation,
processor, link and edge to a dense integer id *once per problem* and
lowers the tables the hot loop reads into flat preallocated lists:

* ``exe[o * P + p]`` — execution durations (``inf`` = forbidden pair);
* ``comm_rows[q * O + o]`` — per-link transfer durations of one edge;
* ``sbar[o]`` / ``tail[o]`` — the static pressure terms, produced by the
  same :class:`~repro.core.pressure.PressureCalculator` arithmetic so
  the floats are bit-identical to the object path;
* ``direct[a * P + b]`` — ids of the direct links joining two
  processors, in sorted-name order;
* ``preds[o]`` / ``succs[o]`` — the algorithm adjacency as id tuples.

Ids are assigned in sorted-name order, so every name-based tie-break of
the paper's heuristic (candidate selection, link choice, processor
ranking) translates to a plain integer comparison.

Multi-hop routes and ``npl``-replicated disjoint route sets depend on
the (dynamic) relay-avoidance preference, so they are translated lazily
through the architecture's memoizing
:class:`~repro.hardware.routing.RoutePlanner` and cached per query key.
"""

from __future__ import annotations

import math

from repro.graphs.algorithm import AlgorithmGraph
from repro.graphs.operations import is_memory_half
from repro.hardware.architecture import Architecture
from repro.timing.comm_times import CommunicationTimes
from repro.timing.exec_times import ExecutionTimes

_INF = math.inf


class CompiledProblem:
    """Flat, int-indexed view of one (expanded) scheduling problem.

    Built once per scheduler instance and shared by every evaluation of
    the run; all contained tables are read-only after construction.
    """

    __slots__ = (
        "op_names", "op_ids", "proc_names", "proc_ids", "link_names",
        "link_ids", "n_ops", "n_procs", "n_links", "exe", "preds", "succs",
        "comm_rows", "sbar", "tail", "direct", "is_memory_half", "pins",
        "allowed", "npf", "npl", "architecture", "_hops", "_routes",
    )

    def __init__(
        self,
        algorithm: AlgorithmGraph,
        architecture: Architecture,
        exec_times: ExecutionTimes,
        comm_times: CommunicationTimes,
        npf: int,
        npl: int,
        pins: dict[str, str] | None = None,
    ) -> None:
        self.architecture = architecture
        self.npf = npf
        self.npl = npl
        op_names = algorithm.operation_names()
        proc_names = architecture.processor_names()
        link_names = architecture.link_names()
        self.op_names = op_names
        self.proc_names = proc_names
        self.link_names = link_names
        self.op_ids = {name: i for i, name in enumerate(op_names)}
        self.proc_ids = {name: i for i, name in enumerate(proc_names)}
        self.link_ids = {name: i for i, name in enumerate(link_names)}
        n_ops = len(op_names)
        n_procs = len(proc_names)
        self.n_ops = n_ops
        self.n_procs = n_procs
        self.n_links = len(link_names)
        # --- timing tables -------------------------------------------------
        # Raw-dict pivots: both tables are validated complete, so one
        # snapshot each replaces per-pair method calls (and the comm
        # table's per-lookup key normalization).
        raw_exe = exec_times.entries()
        exe = [0.0] * (n_ops * n_procs)
        for o, op in enumerate(op_names):
            base = o * n_procs
            for p, proc in enumerate(proc_names):
                exe[base + p] = raw_exe[(op, proc)]
        self.exe = exe
        raw_comm = comm_times.entries()
        comm_rows: dict[int, tuple[float, ...]] = {}
        for edge in algorithm.dependencies():
            key = self.op_ids[edge[0]] * n_ops + self.op_ids[edge[1]]
            comm_rows[key] = tuple(
                raw_comm[(edge, link)] for link in link_names
            )
        self.comm_rows = comm_rows
        # --- algorithm adjacency ------------------------------------------
        ids = self.op_ids
        self.preds = tuple(
            tuple(ids[q] for q in algorithm.predecessors(op))
            for op in op_names
        )
        self.succs = tuple(
            tuple(ids[s] for s in algorithm.successors(op))
            for op in op_names
        )
        self.is_memory_half = tuple(is_memory_half(op) for op in op_names)
        self.pins = {
            ids[op]: ids[anchor] for op, anchor in (pins or {}).items()
        }
        self.allowed = tuple(
            tuple(
                p for p in range(n_procs)
                if exe[o * n_procs + p] != _INF
            )
            for o in range(n_ops)
        )
        # --- static pressure terms (bit-identical to the object path) -----
        # Same arithmetic as PressureCalculator.sbar/tail on the flat
        # tables: averages sum in sorted-name order (== row order), the
        # reverse-topological sweep maxes over sorted successors, and
        # the recurrence is order-independent — cross-checked against
        # ``PressureCalculator.static_tables`` by the equivalence tests.
        average_exe = [0.0] * n_ops
        for o in range(n_ops):
            base = o * n_procs
            finite = [
                exe[base + p] for p in range(n_procs)
                if exe[base + p] != _INF
            ]
            average_exe[o] = sum(finite) / len(finite)
        n_links = self.n_links
        average_comm: dict[int, float] = {}
        for key, comm_row in comm_rows.items():
            average_comm[key] = (
                sum(comm_row) / n_links if n_links else 0.0
            )
        sbar = [0.0] * n_ops
        for op in reversed(algorithm.topological_order()):
            o = ids[op]
            tail = 0.0
            for successor in self.succs[o]:
                candidate = average_comm[o * n_ops + successor] + sbar[successor]
                if candidate > tail:
                    tail = candidate
            sbar[o] = average_exe[o] + tail
        self.sbar = sbar
        self.tail = [sbar[o] - average_exe[o] for o in range(n_ops)]
        # --- interconnect -------------------------------------------------
        link_ids = self.link_ids
        direct: list[tuple[int, ...]] = [()] * (n_procs * n_procs)
        for a, first in enumerate(proc_names):
            for b, second in enumerate(proc_names):
                if a == b:
                    continue
                direct[a * n_procs + b] = tuple(
                    link_ids[link.name]
                    for link in architecture.links_between(first, second)
                )
        self.direct = direct
        self._hops: dict[int, tuple[tuple[str, int, str], ...]] = {}
        self._routes: dict[tuple, tuple] = {}

    # ------------------------------------------------------------------
    # lazy routing translations
    # ------------------------------------------------------------------
    def route_hops(self, a: int, b: int) -> tuple[tuple[str, int, str], ...]:
        """Shortest route ``a -> b`` as ``(origin, link_id, relay)`` hops.

        Origin/relay stay names (they feed straight into
        ``Schedule.place_comm``); the link is an id so the reservation
        loop stays on flat arrays.  Memoized per ordered pair.
        """
        key = a * self.n_procs + b
        cached = self._hops.get(key)
        if cached is None:
            cached = tuple(
                (origin, self.link_ids[link.name], relay)
                for origin, link, relay in self.architecture.route_hops(
                    self.proc_names[a], self.proc_names[b]
                )
            )
            self._hops[key] = cached
        return cached

    def disjoint_routes(
        self, source: str, target: str, avoid: frozenset[str]
    ) -> tuple[tuple[tuple[str, int, str], ...], ...]:
        """``npl + 1`` link-disjoint routes with links as ids.

        Delegates the route computation (and its determinism guarantees)
        to the architecture's :class:`~repro.hardware.routing
        .RoutePlanner` and memoizes the id translation per
        ``(source, target, avoid)`` query.
        """
        key = (source, target, avoid)
        cached = self._routes.get(key)
        if cached is None:
            link_ids = self.link_ids
            cached = tuple(
                tuple(
                    (origin, link_ids[link.name], relay)
                    for origin, link, relay in hops
                )
                for hops in self.architecture.route_planner.disjoint_routes(
                    source, target, self.npl + 1, avoid=avoid
                )
            )
            self._routes[key] = cached
        return cached
