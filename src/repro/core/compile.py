"""Problem lowering for the compiled scheduling kernel.

The object engine spends its inner loop walking string-keyed dicts:
``ExecutionTimes.time_of`` and ``CommunicationTimes.time_of`` hash a
freshly built tuple per lookup, ``Architecture.links_between`` hashes a
processor-name pair, and every trial plan allocates a
:class:`~repro.core.placement.PlacementPlan` object graph.  None of that
varies across the thousands of candidate evaluations of one run, so —
exactly like :mod:`repro.simulation.compiled` does for the batched
failure simulator — :class:`CompiledProblem` interns every operation,
processor, link and edge to a dense integer id *once per problem* and
lowers the tables the hot loop reads into flat preallocated lists:

* ``exe[o * P + p]`` — execution durations (``inf`` = forbidden pair);
* ``comm_rows[q * O + o]`` — per-link transfer durations of one edge;
* ``sbar[o]`` / ``tail[o]`` — the static pressure terms, produced by the
  same :class:`~repro.core.pressure.PressureCalculator` arithmetic so
  the floats are bit-identical to the object path;
* ``direct[a * P + b]`` — ids of the direct links joining two
  processors, in sorted-name order;
* ``preds[o]`` / ``succs[o]`` — the algorithm adjacency as id tuples.

Ids are assigned in sorted-name order, so every name-based tie-break of
the paper's heuristic (candidate selection, link choice, processor
ranking) translates to a plain integer comparison.

Multi-hop routes and ``npl``-replicated disjoint route sets depend on
the (dynamic) relay-avoidance preference, so they are translated lazily
through the architecture's memoizing
:class:`~repro.hardware.routing.RoutePlanner` and cached per query key.

Shared compilation
------------------
A campaign grid re-solves the same workload under many ``npf`` / ``npl``
/ ``ccr`` variants, and every variant used to pay a full compilation.
The tables are therefore split into a :class:`CompiledCore` — the parts
invariant under those axes: interning, the execution table, the
algorithm adjacency, pins, the interconnect tables and the lazy route
memos — keyed by a **content hash** and memoized process-wide, plus the
variant parts (``comm_rows``, ``sbar`` / ``tail``) memoized per
``(core, comm-table hash)``.  One compilation of the core is thus shared
across a grid's variants within a worker (campaign workers are
long-lived, so the reuse spans jobs); :func:`compile_cache_stats`
exposes the hit counts the campaign records.
"""

from __future__ import annotations

import hashlib
import math
from array import array
from collections import OrderedDict

from repro import obs
from repro.graphs.algorithm import AlgorithmGraph
from repro.graphs.operations import is_memory_half
from repro.hardware.architecture import Architecture
from repro.timing.comm_times import CommunicationTimes
from repro.timing.exec_times import ExecutionTimes

_INF = math.inf

#: Process-level memos (bounded LRU).  Entries are read-only after
#: construction — the lazy route memos they carry only ever *add*
#: deterministic translations — so sharing across runs and workers is
#: safe.
_CORE_MEMO: "OrderedDict[str, CompiledCore]" = OrderedDict()
_VARIANT_MEMO: "OrderedDict[tuple, tuple]" = OrderedDict()
#: Verified symmetry groups per (core, comm-hash, npl) — the group
#: verification walks every candidate permutation against the tables,
#: which is worth sharing across the runs of one benchmark/campaign.
_SYMMETRY_MEMO: "OrderedDict[tuple, object]" = OrderedDict()
#: Content hashes of problems that already passed ``ProblemSpec.validate``
#: (keyed per npf/npl, which the replica- and route-feasibility checks
#: depend on).  The compiled path validates each distinct problem
#: *content* once: re-running the same problem — the common shape in
#: benchmarks and campaign grids — skips straight to scheduling.
_VALIDATED_MEMO: "OrderedDict[tuple, bool]" = OrderedDict()
_CORE_CAP = 64
_VARIANT_CAP = 128
_SYMMETRY_CAP = 128
_VALIDATED_CAP = 256

_STATS = {
    "core_hits": 0,
    "core_misses": 0,
    "variant_hits": 0,
    "variant_misses": 0,
}


def compile_cache_stats() -> dict[str, int]:
    """Hit/miss counters of the shared-compilation memos (cumulative)."""
    stats = dict(_STATS)
    stats["core_entries"] = len(_CORE_MEMO)
    stats["variant_entries"] = len(_VARIANT_MEMO)
    return stats


def reset_compile_cache() -> None:
    """Empty the memos and zero the counters (tests and benchmarks)."""
    _CORE_MEMO.clear()
    _VARIANT_MEMO.clear()
    _SYMMETRY_MEMO.clear()
    _VALIDATED_MEMO.clear()
    for key in _STATS:
        _STATS[key] = 0


# The memos keep the one source of truth; the metrics registry pulls
# from it on snapshot instead of mirroring the counters.
obs.metrics.register_collector("compile_cache", compile_cache_stats)


def validated_once(compiled: "CompiledProblem", problem) -> None:
    """Run ``problem.validate()`` once per problem content.

    The compiled path already derives a content hash of everything
    ``validate`` cross-checks (graph structure, both timing tables, the
    interconnect); equal hashes mean an equal validation outcome, so a
    content seen passing before is not re-checked.  ``npf`` / ``npl``
    join the key because the replica-count and disjoint-route
    feasibility checks depend on them.
    """
    key = (*compiled._variant_key, problem.npf, problem.npl)
    if key in _VALIDATED_MEMO:
        _VALIDATED_MEMO.move_to_end(key)
        return
    problem.validate()
    _remember(_VALIDATED_MEMO, _VALIDATED_CAP, key, True)


def _remember(memo: OrderedDict, cap: int, key, value) -> None:
    memo[key] = value
    memo.move_to_end(key)
    while len(memo) > cap:
        memo.popitem(last=False)


class CompiledCore:
    """The npf/npl/ccr-invariant half of a compiled problem.

    Everything here depends only on the (expanded) algorithm shape, the
    execution-time table, the pins and the interconnect — the axes a
    campaign grid varies (``npf``, ``npl``, the ccr-scaled comm table)
    leave it untouched, which is what makes the content-hash reuse
    sound.  The lazy route memos live here too: routes depend only on
    the interconnect (plus ``npl``, which is part of their query key).
    """

    __slots__ = (
        "key", "op_names", "op_ids", "proc_names", "proc_ids",
        "link_names", "link_ids", "n_ops", "n_procs", "n_links", "exe",
        "preds", "succs", "is_memory_half", "pins", "allowed", "direct",
        "average_exe", "architecture", "_hops", "_routes",
    )

    def __init__(
        self,
        key: str,
        algorithm: AlgorithmGraph,
        architecture: Architecture,
        exec_times: ExecutionTimes,
        pins: dict[str, str] | None,
    ) -> None:
        self.key = key
        self.architecture = architecture
        op_names = algorithm.operation_names()
        proc_names = architecture.processor_names()
        link_names = architecture.link_names()
        self.op_names = op_names
        self.proc_names = proc_names
        self.link_names = link_names
        self.op_ids = {name: i for i, name in enumerate(op_names)}
        self.proc_ids = {name: i for i, name in enumerate(proc_names)}
        self.link_ids = {name: i for i, name in enumerate(link_names)}
        n_ops = len(op_names)
        n_procs = len(proc_names)
        self.n_ops = n_ops
        self.n_procs = n_procs
        self.n_links = len(link_names)
        # Raw-dict pivot: the table is validated complete, so one
        # snapshot replaces per-pair method calls.
        raw_exe = exec_times.entries()
        exe = [0.0] * (n_ops * n_procs)
        for o, op in enumerate(op_names):
            base = o * n_procs
            for p, proc in enumerate(proc_names):
                exe[base + p] = raw_exe[(op, proc)]
        self.exe = exe
        ids = self.op_ids
        self.preds = tuple(
            tuple(ids[q] for q in algorithm.predecessors(op))
            for op in op_names
        )
        self.succs = tuple(
            tuple(ids[s] for s in algorithm.successors(op))
            for op in op_names
        )
        self.is_memory_half = tuple(is_memory_half(op) for op in op_names)
        self.pins = {
            ids[op]: ids[anchor] for op, anchor in (pins or {}).items()
        }
        self.allowed = tuple(
            tuple(
                p for p in range(n_procs)
                if exe[o * n_procs + p] != _INF
            )
            for o in range(n_ops)
        )
        average_exe = [0.0] * n_ops
        for o in range(n_ops):
            base = o * n_procs
            finite = [
                exe[base + p] for p in range(n_procs)
                if exe[base + p] != _INF
            ]
            average_exe[o] = sum(finite) / len(finite)
        self.average_exe = average_exe
        link_ids = self.link_ids
        direct: list[tuple[int, ...]] = [()] * (n_procs * n_procs)
        for a, first in enumerate(proc_names):
            for b, second in enumerate(proc_names):
                if a == b:
                    continue
                direct[a * n_procs + b] = tuple(
                    link_ids[link.name]
                    for link in architecture.links_between(first, second)
                )
        self.direct = direct
        self._hops: dict[int, tuple[tuple[str, int, str], ...]] = {}
        self._routes: dict[tuple, tuple] = {}


def _core_key(
    algorithm: AlgorithmGraph,
    architecture: Architecture,
    exec_times: ExecutionTimes,
    pins: dict[str, str] | None,
) -> str:
    """Content hash of the npf/npl/ccr-invariant compilation inputs.

    The structural parts (names, adjacency, link endpoints, pins) hash
    via their ``repr``; the execution table — the bulk of the content —
    streams in as packed IEEE-754 bytes, which round-trip exactly and
    skip the per-float ``repr`` cost.  ``\\x00`` separators (absent from
    any ``repr``) keep the sections unambiguous.  This runs per
    scheduler construction even on memo hits, so it must stay cheap
    relative to a small run: the digest of the last computation is
    cached on the execution table, guarded by the identity and
    mutation version of every input, which makes the re-run of an
    unchanged problem — the benchmark and campaign shape — O(1).
    """
    pins_snapshot = tuple(sorted((pins or {}).items()))
    cached = getattr(exec_times, "_core_key_cache", None)
    if (
        cached is not None
        and cached[0] is algorithm
        and cached[1] == algorithm._version
        and cached[2] is architecture
        and cached[3] == architecture._version
        and cached[4] == exec_times._version
        and cached[5] == pins_snapshot
    ):
        return cached[6]
    raw_exe = exec_times.entries()
    ops = algorithm.operation_names()
    procs = architecture.processor_names()
    digest = hashlib.sha256()
    digest.update(
        repr(tuple((op, algorithm.predecessors(op)) for op in ops)).encode()
    )
    digest.update(b"\x00")
    digest.update(repr(procs).encode())
    digest.update(b"\x00")
    exe_values = array("d")
    for proc in procs:
        exe_values.extend(raw_exe[(op, proc)] for op in ops)
    digest.update(exe_values.tobytes())
    digest.update(b"\x00")
    digest.update(
        repr(tuple(
            (link.name, str(link.kind), tuple(sorted(link.endpoints)))
            for link in architecture.links()
        )).encode()
    )
    digest.update(b"\x00")
    digest.update(repr(pins_snapshot).encode())
    key = digest.hexdigest()
    exec_times._core_key_cache = (
        algorithm, algorithm._version, architecture, architecture._version,
        exec_times._version, pins_snapshot, key,
    )
    return key


def _comm_hash(comm_rows: dict[int, tuple[float, ...]]) -> str:
    """Content hash of the lowered comm table (the ccr-variant part).

    Keys and the fixed-width duration rows pack as raw bytes — the row
    widths are pinned by the core key's link list, so the concatenation
    is unambiguous.
    """
    keys = sorted(comm_rows)
    digest = hashlib.sha256()
    digest.update(array("q", keys).tobytes())
    digest.update(b"\x00")
    values = array("d")
    for key in keys:
        values.extend(comm_rows[key])
    digest.update(values.tobytes())
    return digest.hexdigest()


class CompiledProblem:
    """Flat, int-indexed view of one (expanded) scheduling problem.

    Built once per scheduler instance; all contained tables are
    read-only after construction.  The invariant tables live in a
    content-hash-memoized :class:`CompiledCore` shared across the
    ``npf`` / ``npl`` / ``ccr`` variants of one workload (and, within a
    campaign worker, across jobs); only the comm-dependent tables are
    (re)computed — and themselves memoized — per variant.
    """

    __slots__ = (
        "core", "op_names", "op_ids", "proc_names", "proc_ids",
        "link_names", "link_ids", "n_ops", "n_procs", "n_links", "exe",
        "preds", "succs", "comm_rows", "sbar", "tail", "direct",
        "is_memory_half", "pins", "allowed", "npf", "npl", "architecture",
        "_hops", "_routes", "_symmetry", "_variant_key",
    )

    def __init__(
        self,
        algorithm: AlgorithmGraph,
        architecture: Architecture,
        exec_times: ExecutionTimes,
        comm_times: CommunicationTimes,
        npf: int,
        npl: int,
        pins: dict[str, str] | None = None,
    ) -> None:
        key = _core_key(algorithm, architecture, exec_times, pins)
        core = _CORE_MEMO.get(key)
        if core is None:
            _STATS["core_misses"] += 1
            core = CompiledCore(key, algorithm, architecture, exec_times, pins)
            _remember(_CORE_MEMO, _CORE_CAP, key, core)
        else:
            _STATS["core_hits"] += 1
            _CORE_MEMO.move_to_end(key)
        self.core = core
        self.npf = npf
        self.npl = npl
        # The shared tables are referenced, not copied: the kernel reads
        # them as attributes of this object on its hot path.
        self.architecture = core.architecture
        self.op_names = core.op_names
        self.op_ids = core.op_ids
        self.proc_names = core.proc_names
        self.proc_ids = core.proc_ids
        self.link_names = core.link_names
        self.link_ids = core.link_ids
        self.n_ops = core.n_ops
        self.n_procs = core.n_procs
        self.n_links = core.n_links
        self.exe = core.exe
        self.preds = core.preds
        self.succs = core.succs
        self.is_memory_half = core.is_memory_half
        self.pins = core.pins
        self.allowed = core.allowed
        self.direct = core.direct
        self._hops = core._hops
        self._routes = core._routes
        self._symmetry = None
        # --- comm-dependent tables (the ccr-variant half) -----------------
        # Lowering the comm table touches every (edge, link) pair, so
        # the result (and its hash) is cached on the table itself: the
        # core key pins the id/link layout and the version counter
        # guards against mutation, making an unchanged re-run O(1).
        n_ops = core.n_ops
        cached_rows = getattr(comm_times, "_row_cache", None)
        if (
            cached_rows is not None
            and cached_rows[0] == key
            and cached_rows[1] == comm_times._version
        ):
            comm_rows = cached_rows[2]
            variant_key = cached_rows[3]
        else:
            raw_comm = comm_times.entries()
            comm_rows = {}
            link_names = core.link_names
            ids = core.op_ids
            for edge in algorithm.dependencies():
                row_key = ids[edge[0]] * n_ops + ids[edge[1]]
                comm_rows[row_key] = tuple(
                    raw_comm[(edge, link)] for link in link_names
                )
            variant_key = (key, _comm_hash(comm_rows))
            comm_times._row_cache = (
                key, comm_times._version, comm_rows, variant_key,
            )
        self.comm_rows = comm_rows
        self._variant_key = variant_key
        variant = _VARIANT_MEMO.get(variant_key)
        if variant is not None:
            _STATS["variant_hits"] += 1
            _VARIANT_MEMO.move_to_end(variant_key)
            self.sbar, self.tail = variant
            return
        _STATS["variant_misses"] += 1
        # --- static pressure terms (bit-identical to the object path) -----
        # Same arithmetic as PressureCalculator.sbar/tail on the flat
        # tables: averages sum in sorted-name order (== row order), the
        # reverse-topological sweep maxes over sorted successors, and
        # the recurrence is order-independent — cross-checked against
        # ``PressureCalculator.static_tables`` by the equivalence tests.
        n_links = core.n_links
        average_exe = core.average_exe
        # Rebind: the comm-row fast path above skips the lowering block
        # that first assigned ``ids`` (row cache hit on the table, but
        # variant memo miss — e.g. after ``reset_compile_cache()``).
        ids = core.op_ids
        average_comm: dict[int, float] = {}
        for row_key, comm_row in comm_rows.items():
            average_comm[row_key] = (
                sum(comm_row) / n_links if n_links else 0.0
            )
        sbar = [0.0] * n_ops
        for op in reversed(algorithm.topological_order()):
            o = ids[op]
            tail = 0.0
            for successor in core.succs[o]:
                candidate = average_comm[o * n_ops + successor] + sbar[successor]
                if candidate > tail:
                    tail = candidate
            sbar[o] = average_exe[o] + tail
        self.sbar = sbar
        self.tail = [sbar[o] - average_exe[o] for o in range(n_ops)]
        _remember(
            _VARIANT_MEMO, _VARIANT_CAP, variant_key, (self.sbar, self.tail)
        )

    # ------------------------------------------------------------------
    # topology symmetry
    # ------------------------------------------------------------------
    def symmetry_group(self):
        """The verified automorphism generators of this problem.

        Computed lazily (``SchedulerOptions.symmetry=False`` runs never
        pay for it) by :mod:`repro.core.symmetry`: candidate processor
        permutations from the interconnect shape, each verified against
        the execution and communication tables and the route planner's
        equivariance, so copying a representative's σ to its orbit is
        bit-exact.  Returns ``None`` when the problem has no usable
        symmetry.
        """
        if self._symmetry is None:
            sym_key = (*self._variant_key, self.npl)
            group = _SYMMETRY_MEMO.get(sym_key)
            if group is None:
                from repro.core.symmetry import build_symmetry

                group = build_symmetry(self)
                _remember(_SYMMETRY_MEMO, _SYMMETRY_CAP, sym_key, group)
            else:
                _SYMMETRY_MEMO.move_to_end(sym_key)
            self._symmetry = group
        return self._symmetry if self._symmetry.generators else None

    # ------------------------------------------------------------------
    # lazy routing translations
    # ------------------------------------------------------------------
    def route_hops(self, a: int, b: int) -> tuple[tuple[str, int, str], ...]:
        """Shortest route ``a -> b`` as ``(origin, link_id, relay)`` hops.

        Origin/relay stay names (they feed straight into
        ``Schedule.place_comm``); the link is an id so the reservation
        loop stays on flat arrays.  Memoized per ordered pair.
        """
        key = a * self.n_procs + b
        cached = self._hops.get(key)
        if cached is None:
            cached = tuple(
                (origin, self.link_ids[link.name], relay)
                for origin, link, relay in self.architecture.route_hops(
                    self.proc_names[a], self.proc_names[b]
                )
            )
            self._hops[key] = cached
        return cached

    def disjoint_routes(
        self, source: str, target: str, avoid: frozenset[str]
    ) -> tuple[tuple[tuple[str, int, str], ...], ...]:
        """``npl + 1`` link-disjoint routes with links as ids.

        Delegates the route computation (and its determinism guarantees)
        to the architecture's :class:`~repro.hardware.routing
        .RoutePlanner` and memoizes the id translation per
        ``(npl, source, target, avoid)`` query (the route memo is shared
        across the ``npl`` variants of one core, hence the ``npl`` in
        the key).
        """
        key = (self.npl, source, target, avoid)
        cached = self._routes.get(key)
        if cached is None:
            link_ids = self.link_ids
            cached = tuple(
                tuple(
                    (origin, link_ids[link.name], relay)
                    for origin, link, relay in hops
                )
                for hops in self.architecture.route_planner.disjoint_routes(
                    source, target, self.npl + 1, avoid=avoid
                )
            )
            self._routes[key] = cached
        return cached
