"""The compiled scheduling kernel: flat-array candidate evaluation.

This module is the execution engine behind ``SchedulerOptions(compiled
=True)``.  It consumes the dense id tables of
:class:`~repro.core.compile.CompiledProblem` and rewrites the FTBAR
inner loop — the per-step ready-set sweep, the per-candidate
``(operation, processor)`` trial plan, the append-mode link reservation
and the pressure/σ computation — as tight passes over preallocated
lists with reused scratch buffers, instead of the per-pair
:class:`~repro.core.placement.PlacementPlan` object graphs of the
object engine.  The HBP baseline's ordered-pair cost search runs on the
same kernel (:meth:`SchedulingKernel.pair_cost`), keeping the E6
runtime comparison apples-to-apples.

Bit-identity contract
---------------------
Every float expression mirrors the object path *textually*, not just
mathematically: the link reservation advances its free pointer by
re-deriving the duration (``start + (end - start)``, see
``LinkState.reserve``), the worst-case arrival is the ``(npf + 1)``-th
of a sorted copy, ties break on ids — which equal name order because
:class:`CompiledProblem` interns ids in sorted-name order.  The plan
cache (:class:`~repro.core.incremental.KernelPlanCache`) reproduces the
object engine's dirty-set semantics on id-indexed rows: entries are
dropped when a predecessor's replica set grows, flagged suspect when a
threshold link's availability grows past the first planned start, and
*repaired* in place by replaying the recorded reservation chains when
the plan is repairable (every transfer single-hop on a unique direct
link).  Schedules, observer streams, content hashes, and the
``pressure_evaluations`` / ``cache_hits`` counters are bit-identical to
the object engine — enforced by the goldens and by the randomized
corpus of ``tests/test_compiled_kernel.py``.

Scratch-buffer reuse
--------------------
Trial link reservations use one pair of flat arrays (``free`` value +
``stamp`` epoch) for the whole run: bumping the epoch invalidates every
stale slot in O(1), so a trial plan costs zero allocation for its
overlay.  ``buffer_reuses`` counts how many trial plans were served by
the reused buffers (recorded by ``benchmarks/bench_runtime.py``).

Replay pools
------------
Most cached entries qualify for the *replay pools*: their worst-case
start is a closed form over the current link availabilities (chains at
most two deep, at most two arrivals per feed), so one batched numpy
pass per macro-step recomputes all of them at once — the vectorised
equivalent of the object engine's per-entry threshold repairs, with
identical floats.  Only entries outside that shape (deep chains,
parallel-link choices, multi-hop or ``npl`` routes) keep the scalar
threshold/suspect/repair machinery.

Deferred materialization
------------------------
Nothing reads the :class:`~repro.schedule.schedule.Schedule` during a
compiled run — resource availabilities, replica sets and the makespan
live in flat kernel mirrors — so placements are buffered (rollbacks
inside the duplication procedure just truncate the buffers) and only
the *surviving* placements are written into the schedule at the end,
through the exact calls the object engine's ``commit_plan`` makes.
"""

from __future__ import annotations

import math
import time

try:  # Vectorised sweep; the kernel degrades to its pure-Python loops
    import numpy as _np  # when numpy is not installed (results identical).
except ImportError:  # pragma: no cover - numpy present in the dev image
    _np = None

from repro.core.compile import CompiledProblem
from repro.core.incremental import KernelPlanCache
from repro.core.minimize import DuplicationStats
from repro.core.parallel import run_sharded
from repro.core.symmetry import orbit_representatives
from repro.exceptions import InfeasibleReplicationError, SchedulingError
from repro.schedule.schedule import Schedule

_INF = math.inf
#: Sigma matrices smaller than this stay on one thread: the sharding
#: dispatch costs more than the partition it would split.
_PARALLEL_MIN_ELEMS = 4096
#: Problems with fewer than this many (operation, processor) cells run
#: the scalar sweep: per-sweep numpy dispatch overhead dominates small
#: candidate sets (the measured crossover on 4-processor problems sits
#: around N≈300).  Both sweeps are bit-identical, so the gate is purely
#: a speed choice.
_VECTOR_MIN_CELLS = 1280
#: Improvement threshold of the duplication procedure (same constant as
#: :mod:`repro.core.minimize` — step Ð keeps a duplication only when
#: ``S_worst`` strictly improves beyond it).
_EPSILON = 1e-9

#: Cached marker for a forbidden pair (``Exe = inf``): the object engine
#: caches these too, so the hit counters stay aligned.
_FORBIDDEN = (None,)

#: Shared empty threshold list for plans that record no chains.
_NO_THRESHOLDS: list = []


#: One predecessor feed of a kernel plan, as a plain tuple:
#: ``(pred_id, local_end | None, arrivals | None, firsts | None)``.
#: Plain tuples keep the trial-plan hot path allocation-light; the
#: object engine's :class:`~repro.core.placement.PredecessorFeed`
#: remains the readable counterpart.
_FEED_PRED = 0
_FEED_LOCAL_END = 1
_FEED_ARRIVALS = 2
_FEED_FIRSTS = 3

#: One planned hop, as a plain tuple mirroring
#: :class:`~repro.core.placement.PlannedComm`:
#: ``(source, target, source_replica, link, start, end,
#:    source_processor, target_processor, hop_index, route, link_id)``
#: — ``link_id`` rides along so the kernel's commit can update its
#: link-availability mirror without a name lookup.


class KernelPlan:
    """Flat trial plan of the compiled kernel.

    ``operation`` / ``processor`` are names (they feed the schedule's
    placement API), ``op`` / ``proc`` the dense ids; ``earliest`` /
    ``worst`` are the feed aggregates the object plan computes lazily;
    ``comms`` is the flat hop-tuple list a commit replays (in the exact
    order ``commit_plan`` would place them).
    """

    __slots__ = (
        "operation", "processor", "op", "proc", "duration",
        "processor_ready", "feeds", "comms", "earliest", "worst",
        "feed_worsts", "thresholds", "chains", "repairable",
        "pool_rows", "pool_feeds", "has_choice",
    )

    @property
    def s_best(self) -> float:
        """Earliest start (first complete input set — paper's S_best)."""
        return max(self.processor_ready, self.earliest)

    @property
    def s_worst(self) -> float:
        """Earliest start in the worst failure case (paper's S_worst)."""
        return max(self.processor_ready, self.worst)


class CompiledReadySet:
    """Id-level mirror of :class:`~repro.core.incremental.ReadySet`.

    Same indegree-counter maintenance over the compiled adjacency;
    ``candidates()`` returns sorted ids, which is exactly the sorted
    name order the legacy rescan produced (ids are interned in
    sorted-name order), without re-sorting strings every macro-step.
    """

    __slots__ = ("_succs", "_pin_dependents", "_waiting", "_ready")

    def __init__(self, compiled: CompiledProblem) -> None:
        self._succs = compiled.succs
        self._pin_dependents: dict[int, list[int]] = {}
        self._waiting: dict[int, int] = {}
        self._ready: set[int] = set()
        for operation in range(compiled.n_ops):
            count = len(compiled.preds[operation])
            anchor = compiled.pins.get(operation)
            if anchor is not None and anchor not in compiled.preds[operation]:
                count += 1
                self._pin_dependents.setdefault(anchor, []).append(operation)
            if count == 0:
                self._ready.add(operation)
            else:
                self._waiting[operation] = count

    def candidates(self) -> list[int]:
        """The current candidate ids, sorted (= sorted-name order)."""
        return sorted(self._ready)

    def mark_scheduled(self, operation: int) -> None:
        """Retire a scheduled operation and release its dependents."""
        self._ready.discard(operation)
        for successor in self._succs[operation]:
            self._release(successor)
        for dependent in self._pin_dependents.get(operation, ()):
            self._release(dependent)

    def _release(self, operation: int) -> None:
        remaining = self._waiting[operation] - 1
        if remaining == 0:
            del self._waiting[operation]
            self._ready.add(operation)
        else:
            self._waiting[operation] = remaining


class _RowPool:
    """Append-only column store for the replay pools.

    Columns carry the static operands of the replay passes (float
    columns: ready instants and durations; int columns: link ids and
    scatter positions).  Appends go to cheap Python staging lists;
    :meth:`flush` batch-copies the staged tail into the numpy columns
    once per sweep.  Rows, slots and arrival positions are never
    reused, so rows of discarded entries need no tombstones — they keep
    computing into positions nothing reads.  Total rows are bounded by
    the run's miss count.
    """

    __slots__ = ("float_cols", "int_cols", "float_stage", "int_stage", "count")

    def __init__(self, float_width: int, int_width: int) -> None:
        self.float_cols = [_np.zeros(0) for _ in range(float_width)]
        self.int_cols = [
            _np.zeros(0, dtype=_np.int64) for _ in range(int_width)
        ]
        self.float_stage: list[list] = [[] for _ in range(float_width)]
        self.int_stage: list[list] = [[] for _ in range(int_width)]
        self.count = 0

    def append(self, float_row: tuple, int_row: tuple) -> int:
        for column, value in zip(self.float_stage, float_row):
            column.append(value)
        for column, value in zip(self.int_stage, int_row):
            column.append(value)
        index = self.count
        self.count = index + 1
        return index

    def flush(self) -> None:
        """Copy the staged tail into the numpy columns."""
        stage = self.int_stage[0] if self.int_stage else self.float_stage[0]
        staged = len(stage)
        if not staged:
            return
        count = self.count
        base = count - staged
        reference = self.int_cols[0] if self.int_cols else self.float_cols[0]
        if count > len(reference):
            capacity = max(64, 2 * count)
            for cols, dtype in (
                (self.float_cols, None), (self.int_cols, _np.int64)
            ):
                for index, column in enumerate(cols):
                    grown = _np.zeros(capacity, dtype=dtype or column.dtype)
                    grown[:base] = column[:base]
                    cols[index] = grown
        for cols, stages in (
            (self.float_cols, self.float_stage),
            (self.int_cols, self.int_stage),
        ):
            for index, column in enumerate(cols):
                column[base:count] = stages[index]
                stages[index] = []


class SchedulingKernel:
    """Per-run state of the compiled engine.

    One kernel serves one schedule under construction: it owns the
    availability snapshots, the scratch reservation buffers, the
    id-indexed plan cache (when ``cache`` is set — the compiled
    counterpart of ``SchedulerOptions.incremental``) and the
    duplication statistics of the placement path.
    """

    def __init__(
        self,
        compiled: CompiledProblem,
        schedule: Schedule,
        cache: bool = True,
        processor_aware: bool = False,
        duplication: bool = True,
        vector: bool = True,
        symmetry: bool = True,
        workers: int = 0,
    ) -> None:
        self._c = compiled
        self._schedule = schedule
        self._aware = processor_aware
        self._duplication = duplication
        self._P = compiled.n_procs
        self._all_procs = tuple(range(compiled.n_procs))
        self._workers = workers if _np is not None else 0
        # Macro-step trial batching is exact only when every overlay
        # advance matches the committed advance: on all-direct
        # interconnects (every ordered pair has a direct link and
        # npl == 0) both use the re-derived ``start + (end - start)``.
        # Multi-hop and npl routes advance the overlay by the previewed
        # end instead, so those topologies keep the sequential path.
        P = compiled.n_procs
        self._batch_ok = compiled.npl == 0 and all(
            compiled.direct[a * P + b]
            for a in range(P) for b in range(P) if a != b
        )
        # Symmetry pruning: the verified automorphism generators of the
        # problem (None when there are none).  A generator stays usable
        # while the partial schedule is invariant under it — checked per
        # sweep in :meth:`_orbit_reps` — and the drop is monotone.
        group = compiled.symmetry_group() if symmetry else None
        #: ``{phase: [total_s, count]}`` accumulator for sub-step phases
        #: too hot to span individually; ``None`` (the default) disables
        #: the timing reads entirely.  The scheduler turns it on when
        #: tracing is active and emits the totals as aggregate spans.
        self.phase_times: dict[str, list] | None = None
        self._sym_alive = list(group.generators) if group is not None else []
        self._sym_mark = 0
        self._sym_reps: list[int] | None = None
        self.symmetry_pruned = 0
        # Resource mirrors.  Every placement of a kernel run flows
        # through :meth:`_commit` (and rollbacks through
        # :meth:`_undo_to`), so availability, replica presence and
        # replica order are maintained as flat arrays instead of being
        # re-read from the schedule's name-keyed indexes on every trial
        # plan.  The schedule must be empty at kernel construction.
        self._proc_avail = [0.0] * compiled.n_procs
        self._link_avail = [0.0] * compiled.n_links
        #: End of the replica of op ``o`` on proc ``p`` (0.0 = absent;
        #: real ends are strictly positive).
        self._rep_end = [0.0] * (compiled.n_ops * compiled.n_procs)
        #: Per-op replica list in placement order: ``(proc_id, end)``.
        self._rep_list: list[list[tuple[int, float]]] = [
            [] for _ in range(compiled.n_ops)
        ]
        #: Placement buffers: commits land here (LIFO undo by
        #: truncation) and only the survivors are materialized into the
        #: schedule when the run finishes.
        self._op_buffer: list[tuple] = []
        self._comm_buffer: list[tuple] = []
        self._makespan = 0.0
        # Scratch reservation overlay: value + epoch stamp per link.
        # Bumping the epoch resets the whole overlay in O(1).
        self._link_free = [0.0] * compiled.n_links
        self._link_stamp = [0] * compiled.n_links
        self._epoch = 0
        self._cache = KernelPlanCache() if cache else None
        self._suspects: set[int] = set()
        self._step_mark = 0
        self._step_comm_mark = 0
        self.evaluations = 0
        self.buffer_reuses = 0
        self.dup_stats = DuplicationStats()
        # Vectorised sweep state: parallel arrays mirroring the cache
        # entries' (state, worst, static, duration) so a whole selection
        # sweep is one gather + maximum + add.  Pinned memory halves
        # have per-candidate pools, which the vector sweep does not
        # model — such problems use the scalar sweep.  HBP kernels pass
        # ``vector=False``: their pair keys index a P²-per-task space
        # the sweep arrays do not cover.  Below ``_VECTOR_MIN_CELLS``
        # the per-sweep numpy dispatch overhead outweighs the batched
        # arithmetic and the scalar sweep is faster — unless a worker
        # pool was requested, which only the vector sweep can shard.
        self._vector = (
            vector and _np is not None and cache and not compiled.pins
            and (
                compiled.n_ops * compiled.n_procs >= _VECTOR_MIN_CELLS
                or self._workers >= 2
            )
        )
        if self._vector:
            size = compiled.n_ops * compiled.n_procs
            #: 0 = absent, 1 = forbidden (Exe = inf), 2 = cached plan.
            self._arr_state = _np.zeros(size, dtype=_np.int8)
            self._arr_worst = _np.zeros(size)
            self._arr_static = _np.zeros(size)
            self._arr_duration = _np.zeros(size)
            self._pool_offsets = _np.arange(compiled.n_procs, dtype=_np.int64)
            # Replay pools: entries whose reservation chains are at
            # most two deep and whose remote feeds carry at most two
            # arrivals have a closed-form worst over the *current* link
            # availabilities, recomputed wholesale by one batched pass
            # per sweep (`_pool_pass`).  Pooled entries register no
            # thresholds and are never repaired; the recomputation IS
            # the repair (same floats).  Everything is append-only —
            # rows, arrival positions and slots of dropped entries are
            # simply never read again — and bounded by the run's miss
            # count.
            self._feed_width = max(
                [len(preds) for preds in compiled.preds] or [1]
            ) or 1
            self._slot_of: dict[int, int] = {}
            self._slot_count = 0
            self._slot_key = _np.zeros(0, dtype=_np.int64)
            self._slot_alive = _np.zeros(0, dtype=bool)
            self._slot_worst = _np.zeros((0, self._feed_width))
            #: Arrival value store, rewritten by the level passes.
            self._arrivals = _np.zeros(0)
            self._arrival_count = 0
            #: Reservation rows, leveled by replay dependency depth: a
            #: row's free pointer may queue behind an earlier row on the
            #: same link of the same plan (``free_dep``) and its ready
            #: instant behind the previous hop of the same transfer
            #: (``ready_dep``); level = 1 + max(dep levels), so one pass
            #: per level replays every chain of any depth.
            #: Columns: (ready, dur | link, free_dep, ready_dep, gid, mode);
            #: mode 1 advances the link by the re-derived duration
            #: (direct branch), mode 0 by the previewed end (routes).
            self._row_levels: list[_RowPool] = []
            self._row_level_of: list[int] = []
            self._row_count = 0
            self._row_start = _np.zeros(0)
            self._row_end = _np.zeros(0)
            self._row_free = _np.zeros(0)
            #: Arrival reductions: one-route copy rows (gid, apos) and,
            #: per route count, the max over route ends (npl plans).
            self._acopy = _RowPool(0, 2)
            self._aroute: dict[int, _RowPool] = {}
            #: Feed reductions, per arity: the ``npf``-capped k-th
            #: smallest of the feed's arrivals into its worst slot.
            self._afeeds: dict[int, _RowPool] = {}
            #: Volatile pooled entries (multi-hop / npl routes, no
            #: parallel-link choice): the pool pass recomputes them
            #: every sweep, but their staleness must still be accounted
            #: as the scalar discard + miss — key -> [(threshold item,
            #: first row gid)] for the refresh.
            self._volatile: dict[int, list[tuple[list, int]]] = {}

    @property
    def hits(self) -> int:
        """Plan-cache hits (0 without a cache), for ``FTBARStats``."""
        return self._cache.hits if self._cache is not None else 0

    @property
    def misses(self) -> int:
        """Plan-cache misses (0 without a cache)."""
        return self._cache.misses if self._cache is not None else 0

    # ------------------------------------------------------------------
    # mirrored commits and rollbacks
    # ------------------------------------------------------------------
    def _commit(self, plan: KernelPlan, duplicated: bool = False) -> None:
        """Record a placement in the buffers and the kernel mirrors.

        Nothing reads the schedule during a compiled run (the mirrors
        answer every query), so placements are buffered and only the
        survivors are materialized into the schedule at the end —
        rolled-back duplication trials never touch it.  The mirrors
        mirror the schedule's arithmetic exactly: the operation end is
        ``start + duration``, a link's availability is the *committed*
        comm's end ``start + (end - start)`` (``place_comm`` re-derives
        the duration), and the makespan is the running max of event
        ends.
        """
        o = plan.op
        p = plan.proc
        start = plan.s_best
        duration = plan.duration
        end = start + duration
        link_avail = self._link_avail
        comm_buffer = self._comm_buffer
        comm_mark = len(comm_buffer)
        makespan = self._makespan
        prev_makespan = makespan
        if end > makespan:
            makespan = end
        for comm in plan.comms:
            link = comm[10]
            comm_buffer.append((comm, link_avail[link]))
            comm_start = comm[4]
            committed_end = comm_start + (comm[5] - comm_start)
            link_avail[link] = committed_end
            if committed_end > makespan:
                makespan = committed_end
        self._makespan = makespan
        proc_avail = self._proc_avail
        key = o * self._P + p
        self._op_buffer.append((
            plan.operation, plan.processor, start, duration, duplicated,
            key, o, p, proc_avail[p], prev_makespan, comm_mark,
        ))
        proc_avail[p] = end
        self._rep_end[key] = end
        self._rep_list[o].append((p, end))

    def _mark(self) -> int:
        """A rollback point over the placement buffers (LIFO only)."""
        return len(self._op_buffer)

    def _undo_to(self, mark: int) -> None:
        """Unwind placements made since ``mark``, newest first."""
        ops = self._op_buffer
        comm_buffer = self._comm_buffer
        proc_avail = self._proc_avail
        link_avail = self._link_avail
        while len(ops) > mark:
            record = ops.pop()
            key, o, p = record[5], record[6], record[7]
            proc_avail[p] = record[8]
            self._makespan = record[9]
            self._rep_end[key] = 0.0
            self._rep_list[o].pop()
            comm_mark = record[10]
            for comm, previous in reversed(comm_buffer[comm_mark:]):
                link_avail[comm[10]] = previous
            del comm_buffer[comm_mark:]

    @property
    def makespan(self) -> float:
        """Completion date of the buffered schedule (0 when empty)."""
        return self._makespan

    def materialize(self) -> Schedule:
        """Write the surviving placements into the real schedule.

        Replays the buffers in commit order, so replica indexes, event
        objects, timelines and indexes land exactly as the object
        engine's immediate commits would have produced them.
        """
        schedule = self._schedule
        op_buffer = self._op_buffer
        comm_buffer = self._comm_buffer
        total_comms = len(comm_buffer)
        for index, record in enumerate(op_buffer):
            event = schedule.place_operation(
                record[0], record[1], record[2], record[3],
                duplicated=record[4],
            )
            target_replica = event.replica
            comm_end = (
                op_buffer[index + 1][10]
                if index + 1 < len(op_buffer) else total_comms
            )
            for position in range(record[10], comm_end):
                comm = comm_buffer[position][0]
                schedule.place_comm(
                    source=comm[0],
                    target=comm[1],
                    source_replica=comm[2],
                    target_replica=target_replica,
                    link=comm[3],
                    start=comm[4],
                    duration=comm[5] - comm[4],
                    source_processor=comm[6],
                    target_processor=comm[7],
                    hop_index=comm[8],
                    route=comm[9],
                )
        return schedule

    # ------------------------------------------------------------------
    # trial planning (the flat counterpart of PlacementPlanner.plan)
    # ------------------------------------------------------------------
    def _plan(
        self,
        o: int,
        p: int,
        record_comms: bool,
        record_chains: bool,
        shared_overlay: bool = False,
    ) -> KernelPlan | None:
        """Plan the next replica of ``o`` on ``p`` against the mirrors.

        ``record_comms`` builds the hop records a commit needs;
        ``record_chains`` the threshold / replay-chain records a cache
        entry needs.  ``shared_overlay`` keeps the previous plan's
        trial reservations visible (the HBP pair cost plans both
        replicas against one overlay).
        """
        c = self._c
        n_procs = self._P
        duration = c.exe[o * n_procs + p]
        if duration == _INF:
            return None
        rep_end = self._rep_end
        if rep_end[o * n_procs + p] != 0.0:
            return None
        op_name = c.op_names[o]
        proc_name = c.proc_names[p]
        if not shared_overlay:
            self._epoch += 1
            if self._epoch > 1:
                self.buffer_reuses += 1
        epoch = self._epoch
        stamp = self._link_stamp
        free = self._link_free
        base = self._link_avail
        npf = c.npf
        npl = c.npl
        n_ops = c.n_ops
        op_names = c.op_names
        proc_names = c.proc_names
        rep_list = self._rep_list
        feeds: list[tuple] = []
        comms: list[tuple] | None = [] if record_comms else None
        feed_worsts: list[float] = []
        worst = -_INF
        earliest = -_INF
        if record_chains:
            thresholds: list[list] = []
            thr_seen: set[int] = set()
            chains: dict[int, list[tuple[int, int, float, float]]] = {}
            # Replay-pool recording (vector kernels only): every
            # reservation as (link, ready, ready_dep, dur, mode) plus
            # the per-feed arrival structure the reductions need.
            pool_rows: list[tuple] | None = [] if self._vector else None
            pool_feeds: list | None = [] if self._vector else None
        else:
            thresholds = _NO_THRESHOLDS
            chains = None
            pool_rows = None
            pool_feeds = None
        has_choice = False
        repairable = not npl
        feed_index = 0
        for q in c.preds[o]:
            local_end = rep_end[q * n_procs + p]
            if local_end != 0.0:
                # §4.1 first case: co-located predecessor, zero-cost
                # intra-processor comm, remote replicas do not send.
                feeds.append((q, local_end, None, None))
                feed_worsts.append(local_end)
                if local_end > worst:
                    worst = local_end
                if local_end > earliest:
                    earliest = local_end
                if pool_feeds is not None:
                    pool_feeds.append(None)
                feed_index += 1
                continue
            row = c.comm_rows[q * n_ops + o]
            replicas = rep_list[q]
            arrivals: list[float] = []
            firsts: list[float] | None = [] if npl else None
            feed_desc: list | None = [] if pool_feeds is not None else None
            if npl:
                sender_hosts = frozenset(
                    proc_names[host] for host, _ in replicas
                )
            arrival_index = 0
            for replica_index, (rp, rend) in enumerate(replicas):
                if npl:
                    rproc = proc_names[rp]
                    routes = c.disjoint_routes(
                        rproc, proc_name, sender_hosts - {rproc}
                    )
                    first_copy = _INF
                    guaranteed = -_INF
                    route_ends: list[int] | None = (
                        [] if feed_desc is not None else None
                    )
                    for route_index, hops in enumerate(routes):
                        ready = rend
                        prev_row = -1
                        for hop_index, (origin, link, relay) in enumerate(hops):
                            current = free[link] if stamp[link] == epoch else base[link]
                            start = ready if ready > current else current
                            end = start + row[link]
                            stamp[link] = epoch
                            free[link] = end
                            if record_chains and link not in thr_seen:
                                thr_seen.add(link)
                                thresholds.append([link, start])
                            if pool_rows is not None:
                                dep = prev_row
                                prev_row = len(pool_rows)
                                pool_rows.append(
                                    (link, rend, dep, row[link], 0)
                                )
                            if record_comms:
                                comms.append((
                                    op_names[q], op_name, replica_index,
                                    c.link_names[link], start, end,
                                    origin, relay, hop_index, route_index,
                                    link,
                                ))
                            ready = end
                        if route_ends is not None:
                            route_ends.append(prev_row)
                        if ready < first_copy:
                            first_copy = ready
                        if ready > guaranteed:
                            guaranteed = ready
                    if feed_desc is not None:
                        feed_desc.append(tuple(route_ends))
                    arrivals.append(guaranteed)
                    firsts.append(first_copy)
                    arrival_index += 1
                    continue
                direct = c.direct[rp * n_procs + p]
                if direct:
                    if len(direct) == 1:
                        # The common case (p2p and bus topologies): one
                        # direct link, no min-end choice to make.
                        best_link = direct[0]
                        current = (
                            free[best_link] if stamp[best_link] == epoch
                            else base[best_link]
                        )
                        best_start = rend if rend > current else current
                        best_end = best_start + row[best_link]
                    else:
                        repairable = False
                        has_choice = True
                        best_end = _INF
                        best_start = 0.0
                        best_link = -1
                        for link in direct:
                            current = free[link] if stamp[link] == epoch else base[link]
                            start = rend if rend > current else current
                            end = start + row[link]
                            if end < best_end:
                                best_end = end
                                best_start = start
                                best_link = link
                    # Mirror LinkState.reserve: the free pointer advances
                    # by the re-derived duration, not the previewed end.
                    stamp[best_link] = epoch
                    free[best_link] = best_start + (best_end - best_start)
                    if record_chains:
                        if best_link not in thr_seen:
                            thr_seen.add(best_link)
                            thresholds.append([best_link, best_start])
                        chains.setdefault(best_link, []).append(
                            (feed_index, arrival_index, rend, row[best_link])
                        )
                        if pool_rows is not None:
                            feed_desc.append(len(pool_rows))
                            pool_rows.append(
                                (best_link, rend, -1, row[best_link], 1)
                            )
                    if record_comms:
                        comms.append((
                            op_names[q], op_name, replica_index,
                            c.link_names[best_link], best_start, best_end,
                            proc_names[rp], proc_name, 0, 0, best_link,
                        ))
                    arrivals.append(best_end)
                else:
                    # Multi-hop store-and-forward over the shortest route.
                    repairable = False
                    ready = rend
                    prev_row = -1
                    for hop_index, (origin, link, relay) in enumerate(
                        c.route_hops(rp, p)
                    ):
                        current = free[link] if stamp[link] == epoch else base[link]
                        start = ready if ready > current else current
                        end = start + row[link]
                        stamp[link] = epoch
                        free[link] = end
                        if record_chains and link not in thr_seen:
                            thr_seen.add(link)
                            thresholds.append([link, start])
                        if pool_rows is not None:
                            dep = prev_row
                            prev_row = len(pool_rows)
                            pool_rows.append((link, rend, dep, row[link], 0))
                        if record_comms:
                            comms.append((
                                op_names[q], op_name, replica_index,
                                c.link_names[link], start, end,
                                origin, relay, hop_index, 0, link,
                            ))
                        ready = end
                    if feed_desc is not None:
                        feed_desc.append(prev_row)
                    arrivals.append(ready)
                arrival_index += 1
            if not arrivals:
                raise ValueError(
                    f"predecessor {op_names[q]!r} of {op_name!r} has no replica; "
                    f"candidate rule violated"
                )
            # Worst case: the (npf + 1)-th earliest arrival — i.e.
            # ``sorted(arrivals)[min(npf, len - 1)]``, specialised for
            # the tiny lists of the hot path (min/max pick the same
            # float without the sorted copy).
            count = len(arrivals)
            if count == 1:
                feed_worst = arrivals[0]
            elif npf == 0:
                feed_worst = min(arrivals)
            elif npf >= count - 1:
                feed_worst = max(arrivals)
            else:
                feed_worst = sorted(arrivals)[npf]
            feed_worsts.append(feed_worst)
            if feed_worst > worst:
                worst = feed_worst
            feed_earliest = min(arrivals if firsts is None else firsts)
            if feed_earliest > earliest:
                earliest = feed_earliest
            feeds.append((q, None, arrivals, firsts))
            if pool_feeds is not None:
                pool_feeds.append(feed_desc)
            feed_index += 1
        plan = KernelPlan()
        plan.operation = op_name
        plan.processor = proc_name
        plan.op = o
        plan.proc = p
        plan.duration = duration
        plan.processor_ready = self._proc_avail[p]
        plan.feeds = feeds
        plan.comms = comms
        plan.earliest = earliest
        plan.worst = worst
        plan.feed_worsts = feed_worsts
        plan.thresholds = thresholds
        plan.chains = chains if repairable else None
        plan.repairable = repairable
        plan.pool_rows = pool_rows
        plan.pool_feeds = pool_feeds
        plan.has_choice = has_choice
        return plan

    # ------------------------------------------------------------------
    # selection sweep (macro-steps À and Á)
    # ------------------------------------------------------------------
    def _orbit_reps(self) -> list[int] | None:
        """Orbit representatives under the still-usable generators.

        A generator is usable while the partial schedule is *invariant*
        under it: processor and link availabilities map to themselves,
        and every replica row does too — then ``σ(o, p)`` and
        ``σ(o, g(p))`` are the same IEEE floats (the state the plan
        reads is indistinguishable), so evaluating the orbit's smallest
        id covers all of them.  Between two sweeps the net state change
        is the surviving commit records (rollbacks restore exactly), so
        the replica check only walks the delta rows; the availability
        arrays are cheap enough to check whole.  The drop is monotone:
        a generator that dies is never re-admitted, which keeps the
        check O(delta) instead of O(schedule).
        """
        alive = self._sym_alive
        ops = self._op_buffer
        mark = self._sym_mark
        delta = (
            {record[6] for record in ops[mark:]} if len(ops) > mark else ()
        )
        self._sym_mark = len(ops)
        proc_avail = self._proc_avail
        link_avail = self._link_avail
        rep_end = self._rep_end
        n_procs = self._P
        survivors = []
        for gen in alive:
            gp = gen.proc
            ok = True
            for p in range(n_procs):
                if proc_avail[p] != proc_avail[gp[p]]:
                    ok = False
                    break
            if ok:
                for l, m in enumerate(gen.link):
                    if link_avail[l] != link_avail[m]:
                        ok = False
                        break
            if ok:
                for o in delta:
                    o_base = o * n_procs
                    if any(
                        rep_end[o_base + p] != rep_end[o_base + gp[p]]
                        for p in range(n_procs)
                    ):
                        ok = False
                        break
            if ok:
                survivors.append(gen)
        if len(survivors) != len(alive):
            self._sym_alive = survivors
            self._sym_reps = None
            if not survivors:
                return None
        if self._sym_reps is None:
            self._sym_reps = orbit_representatives(survivors, n_procs)
        return self._sym_reps

    def select(
        self, candidates: "list[str]", record: bool
    ) -> tuple[str, tuple[str, ...], float, dict | None]:
        """:meth:`select_ids` over candidate names (non-incremental path)."""
        op_ids = self._c.op_ids
        return self.select_ids(
            [op_ids[name] for name in candidates], record
        )

    def select_ids(
        self, candidates: "list[int]", record: bool
    ) -> tuple[str, tuple[str, ...], float, dict | None]:
        """Pick the most urgent candidate and its ``Npf + 1`` processors.

        Mirrors ``FTBARScheduler._select`` over candidate ids (sorted
        ids == the sorted-name candidate order); ``record`` materializes
        the per-pair σ mapping for the observer's :class:`StepRecord`
        (the evaluation pattern — and hence every counter — is
        identical either way).
        """
        if self._vector:
            return self._select_vector(candidates, record)
        c = self._c
        n_procs = self._P
        op_names = c.op_names
        proc_names = c.proc_names
        pins = c.pins
        npf = c.npf
        required = npf + 1
        pressures: dict | None = {} if record else None
        cache = self._cache
        cached = cache is not None
        entries = cache.entries if cached else None
        suspects = self._suspects
        proc_avail = self._proc_avail
        link_avail = self._link_avail
        aware = self._aware
        hits = 0
        two = required == 2
        one = required == 1
        best_urgency = 0.0
        best_op = -1
        best_p0 = best_p1 = -1
        best_kept: list[tuple[float, int]] | None = None
        reps = self._orbit_reps() if self._sym_alive else None
        row: list[float] | None = [0.0] * n_procs if reps is not None else None
        if cached and suspects:
            # Per-sweep suspect pass — the scalar mirror of the vector
            # sweep's: availabilities are frozen during a sweep and
            # every live entry's candidate is ready, so the whole
            # suspect set is due now; handling it here keeps the probe
            # loop below to one dict lookup per pair.  Repairs replay
            # the same chains from the same availabilities the lazy
            # per-probe scan would have seen, so every float — and
            # every hit/miss count, since repairs and discards are
            # unaccounted and the probe still pays the miss — is
            # identical.  Pruned columns are skipped (their cache state
            # stays untouched while pruned, as before) and dangling
            # flags of dropped entries wait for the entry to return.
            for key in tuple(suspects):
                if reps is not None and reps[key % n_procs] != key % n_procs:
                    continue
                entry = entries.get(key)
                if entry is None:
                    continue
                suspects.discard(key)
                chains = entry[2]
                if chains is None:
                    for threshold in entry[5]:
                        if link_avail[threshold[0]] > threshold[1]:
                            # Not repairable: drop it; the probe then
                            # replans, counting exactly as the lazy
                            # discard + miss did.
                            cache.discard(key)
                            break
                    continue
                feeds = entry[0]
                touched: set[int] | None = None
                for threshold in entry[5]:
                    available = link_avail[threshold[0]]
                    if available <= threshold[1]:
                        continue
                    free = available
                    first = None
                    for f_i, a_i, t_ready, dur in chains[threshold[0]]:
                        start = t_ready if t_ready > free else free
                        end = start + dur
                        feeds[f_i][2][a_i] = end
                        free = start + (end - start)
                        if touched is None:
                            touched = {f_i}
                        else:
                            touched.add(f_i)
                        if first is None:
                            first = start
                    threshold[1] = first
                if touched is not None:
                    feed_worsts = entry[4]
                    for f_i in touched:
                        arrivals = feeds[f_i][2]
                        count = len(arrivals)
                        if count == 2:
                            # The npf=1 common case: the k-th-smallest
                            # of a pair is its min or max outright.
                            a, b = arrivals
                            if npf:
                                feed_worsts[f_i] = a if a > b else b
                            else:
                                feed_worsts[f_i] = a if a < b else b
                        elif count == 1:
                            feed_worsts[f_i] = arrivals[0]
                        elif npf == 0:
                            feed_worsts[f_i] = min(arrivals)
                        elif npf >= count - 1:
                            feed_worsts[f_i] = max(arrivals)
                        else:
                            feed_worsts[f_i] = sorted(arrivals)[npf]
                    entry[3] = max(feed_worsts)
        for o in candidates:
            anchor = pins.get(o)
            if anchor is None:
                pool = self._all_procs
            else:
                pool = sorted(host for host, _ in self._rep_list[anchor])
            base_key = o * n_procs
            # The ``required`` smallest (σ, p) pairs, kept ascending —
            # the pool iterates ascending p and every comparison is
            # strict, so a σ tie keeps the earlier processor exactly
            # like the sorted ranked list this replaces (lexicographic
            # (σ, p) order).  ``required <= 2`` — every npf 0/1 run —
            # tracks the pair in plain registers; larger values fall
            # back to bounded insertion into a list.
            finite = 0
            if two:
                b0v = b1v = _INF
                b0p = b1p = -1
            elif one:
                b0v = _INF
                b0p = -1
            else:
                kept: list[tuple[float, int]] = []
                fill = 0
            for p in pool:
                if row is not None and reps[p] != p:
                    # Symmetry-pruned pair: its σ is a bit-identical
                    # copy of the orbit representative's (already
                    # computed — representatives are orbit minima and
                    # the pool iterates ascending).  No cache traffic.
                    value = row[reps[p]]
                    self.symmetry_pruned += 1
                # The hit fast path is inlined: one dict probe and two
                # adds (suspects were settled by the per-sweep pass
                # above) — this loop runs once per (candidate,
                # processor) pair per macro-step.
                elif cached:
                    key = base_key + p
                    entry = entries.get(key)
                    if entry is None:
                        value = self._miss(o, p, key)
                    elif entry[0] is None:
                        hits += 1
                        value = _INF
                    else:
                        hits += 1
                        ready = proc_avail[p]
                        worst = entry[3]
                        s_worst = ready if ready > worst else worst
                        if aware:
                            value = s_worst + entry[6] + entry[1]
                        else:
                            value = s_worst + entry[1]
                else:
                    value = self._fresh_sigma(o, p)
                if row is not None:
                    row[p] = value
                if record:
                    pressures[(op_names[o], proc_names[p])] = value
                if value == _INF:
                    continue
                finite += 1
                if two:
                    # Registers start at _INF, so the fill-up phase is
                    # the same strict-compare shift as steady state.
                    if value < b1v:
                        if value < b0v:
                            b1v = b0v
                            b1p = b0p
                            b0v = value
                            b0p = p
                        else:
                            b1v = value
                            b1p = p
                elif one:
                    if value < b0v:
                        b0v = value
                        b0p = p
                elif fill < required:
                    index = fill
                    while index and kept[index - 1][0] > value:
                        index -= 1
                    kept.insert(index, (value, p))
                    fill += 1
                elif value < kept[-1][0]:
                    # p exceeds every kept processor id, so a σ tie
                    # never displaces an earlier pair.
                    del kept[-1]
                    index = fill - 1
                    while index and kept[index - 1][0] > value:
                        index -= 1
                    kept.insert(index, (value, p))
            if finite < required:
                raise InfeasibleReplicationError(
                    f"operation {op_names[o]!r} can run on {finite} "
                    f"processor(s), {required} required to tolerate "
                    f"{npf} failure(s)"
                )
            urgency = b1v if two else b0v if one else kept[-1][0]
            if best_op < 0 or urgency > best_urgency or (
                urgency == best_urgency and o < best_op
            ):
                best_urgency = urgency
                best_op = o
                if two:
                    best_p0 = b0p
                    best_p1 = b1p
                elif one:
                    best_p0 = b0p
                else:
                    best_kept = kept
        if cached:
            cache.hits += hits
        assert best_op >= 0
        if two:
            placements = (proc_names[best_p0], proc_names[best_p1])
        elif one:
            placements = (proc_names[best_p0],)
        else:
            placements = tuple(proc_names[p] for _, p in best_kept)
        return (
            c.op_names[best_op],
            placements,
            best_urgency,
            pressures,
        )

    # ------------------------------------------------------------------
    # replay pools (vector mode)
    # ------------------------------------------------------------------
    def _try_pool(self, key: int, plan: KernelPlan) -> str | None:
        """Admit a cache entry to the replay pools when it qualifies.

        Every reservation becomes one leveled row whose replay from the
        *current* link availabilities reproduces the trial plan's
        floats exactly (the route structure, ready instants and
        durations are static while the entry is alive); arrival and
        feed reductions then rebuild the entry's worst — so the
        per-sweep pool pass is the batched equivalent of a fresh
        recomputation.  Repairable entries (``"pure"``) register no
        thresholds: the pass *is* their repair.  Multi-hop and npl
        entries (``"volatile"``) keep their thresholds so their
        staleness is still accounted as the scalar discard + miss (see
        the suspects loop).  Only plans that chose among parallel
        direct links stay out: the choice itself can flip with the
        availabilities.
        """
        rows = plan.pool_rows
        if rows is None or not rows or plan.has_choice:
            return None
        slot = self._alloc_slot(key)
        position_base = slot * self._feed_width
        row_worst = self._slot_worst[slot]
        feed_worsts = plan.feed_worsts
        for feed_index, feed in enumerate(plan.feeds):
            local_end = feed[_FEED_LOCAL_END]
            row_worst[feed_index] = (
                local_end if local_end is not None
                else feed_worsts[feed_index]
            )
        # Reservation rows: free deps follow per-link plan order (the
        # shared overlay the plan reserved against), ready deps the
        # recorded previous hop; level = 1 + max(dep levels).
        level_of = self._row_level_of
        levels = self._row_levels
        gids: list[int] = []
        last_on_link: dict[int, int] = {}
        for link, ready, ready_dep_local, duration, mode in rows:
            free_dep = last_on_link.get(link, -1)
            ready_dep = gids[ready_dep_local] if ready_dep_local >= 0 else -1
            level = 0
            if free_dep >= 0:
                level = level_of[free_dep] + 1
            if ready_dep >= 0 and level_of[ready_dep] + 1 > level:
                level = level_of[ready_dep] + 1
            gid = self._row_count
            self._row_count = gid + 1
            level_of.append(level)
            while level >= len(levels):
                levels.append(_RowPool(2, 5))
            levels[level].append(
                (ready, duration), (link, free_dep, ready_dep, gid, mode)
            )
            last_on_link[link] = gid
            gids.append(gid)
        for feed_index, descriptors in enumerate(plan.pool_feeds):
            if descriptors is None:
                continue  # local feed: static worst, written above
            positions: list[int] = []
            for descriptor in descriptors:
                apos = self._alloc_arrival()
                positions.append(apos)
                if isinstance(descriptor, int):
                    self._acopy.append((), (gids[descriptor], apos))
                else:
                    width = len(descriptor)
                    pool = self._aroute.get(width)
                    if pool is None:
                        pool = self._aroute[width] = _RowPool(0, width + 1)
                    pool.append(
                        (),
                        tuple(gids[i] for i in descriptor) + (apos,),
                    )
            arity = len(positions)
            pool = self._afeeds.get(arity)
            if pool is None:
                pool = self._afeeds[arity] = _RowPool(0, arity + 1)
            pool.append((), tuple(positions) + (position_base + feed_index,))
        if plan.repairable:
            return "pure"
        first_gid: dict[int, int] = {}
        for local, (link, _ready, _dep, _dur, _mode) in enumerate(rows):
            if link not in first_gid:
                first_gid[link] = gids[local]
        self._volatile[key] = [
            (threshold, first_gid[threshold[0]])
            for threshold in plan.thresholds
        ]
        return "volatile"

    def _alloc_slot(self, key: int) -> int:
        slot = self._slot_count
        if slot == len(self._slot_alive):
            capacity = max(64, 2 * slot)
            keys = _np.zeros(capacity, dtype=_np.int64)
            keys[:slot] = self._slot_key[:slot]
            self._slot_key = keys
            alive = _np.zeros(capacity, dtype=bool)
            alive[:slot] = self._slot_alive[:slot]
            self._slot_alive = alive
            worst = _np.full((capacity, self._feed_width), -_INF)
            worst[:slot] = self._slot_worst[:slot]
            self._slot_worst = worst
        self._slot_key[slot] = key
        self._slot_alive[slot] = True
        self._slot_worst[slot] = -_INF
        self._slot_count = slot + 1
        self._slot_of[key] = slot
        return slot

    def _alloc_arrival(self) -> int:
        # The store is only written by the level passes; capacity is
        # ensured in ``_pool_pass``.
        position = self._arrival_count
        self._arrival_count = position + 1
        return position

    def _release_keys(self, keys) -> None:
        """Drop the slots of dropped cache entries.

        Pool rows and arrival positions are append-only and never
        reused; a dead slot's rows keep computing into positions the
        final scatter filters out via ``_slot_alive``.
        """
        slot_of = self._slot_of
        slot_alive = self._slot_alive
        volatile = self._volatile
        for key in keys:
            slot = slot_of.pop(key, None)
            if slot is not None:
                slot_alive[slot] = False
                volatile.pop(key, None)

    def _pool_pass(self) -> None:
        """Replay-repair pass, timed into :attr:`phase_times` when on."""
        pt = self.phase_times
        if pt is None:
            return self._pool_pass_impl()
        t0 = time.perf_counter()
        try:
            return self._pool_pass_impl()
        finally:
            entry = pt.setdefault("kernel.replay_repair", [0.0, 0])
            entry[0] += time.perf_counter() - t0
            entry[1] += 1

    def _pool_pass_impl(self) -> None:
        """Recompute every pooled entry's worst from current availabilities.

        Two level passes replay the reservation chains (level 1 queues
        behind level 0's re-derived free pointer, mirroring
        ``LinkState.reserve``), two feed passes reduce arrivals to feed
        worsts, then a row-max and one scatter write the sweep's worst
        array — the batched equivalent of every scalar repair the
        object engine would perform this step.
        """
        np = _np
        slots = self._slot_count
        if not slots:
            return
        if self._arrival_count > len(self._arrivals):
            self._arrivals = np.zeros(max(64, 2 * self._arrival_count))
        if self._row_count > len(self._row_end):
            capacity = max(64, 2 * self._row_count)
            self._row_start = np.zeros(capacity)
            self._row_end = np.zeros(capacity)
            self._row_free = np.zeros(capacity)
        avail = np.array(self._link_avail)
        arrivals = self._arrivals
        row_start = self._row_start
        row_end = self._row_end
        row_free = self._row_free
        flat_worst = self._slot_worst.reshape(-1)
        for pool in self._row_levels:
            count = pool.count
            if not count:
                continue
            pool.flush()
            link = pool.int_cols[0][:count]
            free_dep = pool.int_cols[1][:count]
            ready_dep = pool.int_cols[2][:count]
            gid = pool.int_cols[3][:count]
            mode = pool.int_cols[4][:count]
            base = np.where(
                free_dep < 0,
                avail[link],
                row_free[np.maximum(free_dep, 0)],
            )
            ready = np.where(
                ready_dep < 0,
                pool.float_cols[0][:count],
                row_end[np.maximum(ready_dep, 0)],
            )
            start = np.maximum(ready, base)
            end = start + pool.float_cols[1][:count]
            # A queued reservation advances the link by the re-derived
            # duration (LinkState.reserve's ``start + (end - start)``)
            # on direct links (mode 1), by the previewed end on route
            # hops (mode 0) — both expressions verbatim from `_plan`.
            free = np.where(mode == 1, start + (end - start), end)
            row_start[gid] = start
            row_end[gid] = end
            row_free[gid] = free
        pool = self._acopy
        count = pool.count
        if count:
            pool.flush()
            arrivals[pool.int_cols[1][:count]] = (
                row_end[pool.int_cols[0][:count]]
            )
        for width, pool in self._aroute.items():
            count = pool.count
            if not count:
                continue
            pool.flush()
            # A replica's guaranteed arrival is the max over its
            # ``npl + 1`` disjoint routes' ends.
            guaranteed = row_end[pool.int_cols[0][:count]]
            for column in range(1, width):
                guaranteed = np.maximum(
                    guaranteed, row_end[pool.int_cols[column][:count]]
                )
            arrivals[pool.int_cols[width][:count]] = guaranteed
        npf = self._c.npf
        for arity, pool in self._afeeds.items():
            count = pool.count
            if not count:
                continue
            pool.flush()
            positions = pool.int_cols[arity][:count]
            if arity == 1:
                flat_worst[positions] = arrivals[pool.int_cols[0][:count]]
                continue
            k = npf if npf < arity - 1 else arity - 1
            if k == 0:
                reduced = arrivals[pool.int_cols[0][:count]]
                for column in range(1, arity):
                    reduced = np.minimum(
                        reduced, arrivals[pool.int_cols[column][:count]]
                    )
            elif k == arity - 1:
                reduced = arrivals[pool.int_cols[0][:count]]
                for column in range(1, arity):
                    reduced = np.maximum(
                        reduced, arrivals[pool.int_cols[column][:count]]
                    )
            else:
                stacked = np.stack([
                    arrivals[pool.int_cols[column][:count]]
                    for column in range(arity)
                ])
                reduced = np.partition(stacked, k, axis=0)[k]
            flat_worst[positions] = reduced
        entry_worst = self._slot_worst[:slots].max(axis=1)
        alive = self._slot_alive[:slots]
        if alive.all():
            self._arr_worst[self._slot_key[:slots]] = entry_worst
        else:
            self._arr_worst[self._slot_key[:slots][alive]] = entry_worst[alive]

    def _select_vector(
        self, candidates: "list[int]", record: bool
    ) -> tuple[str, tuple[str, ...], float, dict | None]:
        """The selection sweep as array passes (numpy available, no pins).

        Suspect and absent entries are reconciled through the same
        scalar ``_miss`` / ``_repair`` paths first (they are the rare
        cases and they mutate cache state); every surviving hit is then
        served by one gather + ``maximum`` + add over the parallel
        arrays.  Sigma values, tie-breaks and counters are identical to
        the scalar sweep: float64 arithmetic is the same IEEE arithmetic,
        ids are name-ordered, and ``argmax`` / stable ``argsort`` pick
        the same first-of-equals the tuple comparisons do.
        """
        np = _np
        c = self._c
        n_procs = self._P
        cache = self._cache
        entries = cache.entries
        self._pool_pass()
        reps = self._orbit_reps() if self._sym_alive else None
        ids = np.fromiter(
            candidates, dtype=np.int64, count=len(candidates)
        )
        if reps is None:
            cols = self._pool_offsets
            rep_cols: list[int] | None = None
        else:
            rep_cols = sorted(set(reps))
            cols = np.fromiter(rep_cols, dtype=np.int64, count=len(rep_cols))
        keys = ids[:, None] * n_procs + cols[None, :]
        flat = keys.ravel()
        misses_before = cache.misses
        suspects = self._suspects
        if suspects:
            # Every live entry's candidate is ready (candidates only
            # leave the ready set by being placed, which drops their
            # entries), so the whole suspect set is due this sweep.
            link_avail = self._link_avail
            volatile = self._volatile
            for key in tuple(suspects):
                if reps is not None and reps[key % n_procs] != key % n_procs:
                    # Pruned column: the scalar sweep leaves its cache
                    # state untouched too — keep the flag for later.
                    continue
                entry = entries.get(key)
                if entry is None:
                    # Dangling flag of a dropped entry: the scalar path
                    # leaves it for the next lookup — so do we.
                    continue
                suspects.discard(key)
                for threshold in entry[5]:
                    if link_avail[threshold[0]] > threshold[1]:
                        vol = volatile.get(key)
                        if vol is not None:
                            # The pool pass already recomputed this
                            # entry wholesale; account the staleness as
                            # the scalar discard + replan would, then
                            # refresh its thresholds/worst in place.
                            cache.misses += 1
                            self.evaluations += 1
                            for item, gid in vol:
                                item[1] = float(self._row_start[gid])
                            entry[3] = float(self._arr_worst[key])
                        elif entry[2] is None:
                            cache.discard(key)
                            self._miss(key // n_procs, key % n_procs, key)
                        else:
                            self._repair(entry)
                            self._arr_worst[key] = entry[3]
                        break
        state = self._arr_state[flat]
        if not state.all():
            for key in flat[state == 0].tolist():
                self._miss(key // n_procs, key % n_procs, key)
            state = self._arr_state[flat]
        ready = np.array(self._proc_avail)
        shape = keys.shape
        sigma = np.maximum(
            ready[cols][None, :], self._arr_worst[flat].reshape(shape)
        )
        if self._aware:
            sigma += self._arr_duration[flat].reshape(shape)
        sigma += self._arr_static[flat].reshape(shape)
        forbidden = state == 1
        if forbidden.any():
            sigma[forbidden.reshape(shape)] = _INF
        cache.hits += flat.size - (cache.misses - misses_before)
        if rep_cols is not None:
            # Expand the representative columns back to full width: a
            # pruned processor's σ is a bit-identical copy of its orbit
            # minimum's (same IEEE floats by the invariance argument),
            # so tie-breaks and the kept set match the exhaustive sweep.
            col_of = {rep: index for index, rep in enumerate(rep_cols)}
            expand = np.fromiter(
                (col_of[reps[p]] for p in range(n_procs)),
                dtype=np.int64, count=n_procs,
            )
            sigma = sigma[:, expand]
            self.symmetry_pruned += len(candidates) * (
                n_procs - len(rep_cols)
            )
        npf = c.npf
        required = npf + 1
        finite = (sigma != _INF).sum(axis=1)
        feasible = finite >= required
        if not feasible.all():
            index = int(feasible.argmin())
            raise InfeasibleReplicationError(
                f"operation {c.op_names[candidates[index]]!r} can run on "
                f"{int(finite[index])} processor(s), {required} required "
                f"to tolerate {npf} failure(s)"
            )
        # The (npf + 1)-th smallest per row: partition places exactly
        # the k-th order statistic at index k — the same float a full
        # sort would put there — without sorting the whole row.
        k = required - 1
        count = len(candidates)
        if self._workers >= 2 and sigma.size >= _PARALLEL_MIN_ELEMS:
            urgencies = np.empty(count)

            def task(lo: int, hi: int) -> None:
                urgencies[lo:hi] = np.partition(
                    sigma[lo:hi], k, axis=1
                )[:, k]

            run_sharded(self._workers, count, task)
        else:
            urgencies = np.partition(sigma, k, axis=1)[:, k]
        # Most urgent candidate; argmax keeps the first (= smallest id)
        # among equals, the scalar loop's tie-break.
        winner = int(urgencies.argmax())
        kept = np.argsort(sigma[winner], kind="stable")[:required]
        proc_names = c.proc_names
        op_names = c.op_names
        pressures: dict | None = None
        if record:
            pressures = {}
            for row, o in enumerate(candidates):
                values = sigma[row]
                name = op_names[o]
                for p in range(n_procs):
                    pressures[(name, proc_names[p])] = float(values[p])
        return (
            c.op_names[int(ids[winner])],
            tuple(proc_names[int(p)] for p in kept),
            float(urgencies[winner]),
            pressures,
        )

    def _fresh_sigma(self, o: int, p: int) -> float:
        """σ(o, p) recomputed from scratch (``incremental=False``)."""
        self.evaluations += 1
        plan = self._plan(o, p, False, False)
        if plan is None:
            return _INF
        if self._aware:
            return plan.s_worst + plan.duration + self._c.tail[o]
        return plan.s_worst + self._c.sbar[o]

    def _miss(self, o: int, p: int, key: int) -> float:
        """Plan the pair for real, cache it with its id dependencies."""
        cache = self._cache
        cache.misses += 1
        self.evaluations += 1
        plan = self._plan(o, p, False, True)
        if plan is None:
            cache.put(key, _FORBIDDEN)
            if self._vector:
                self._arr_state[key] = 1
            return _INF
        c = self._c
        if self._aware:
            static = c.tail[o]
            sigma = plan.s_worst + plan.duration + static
        else:
            static = c.sbar[o]
            sigma = plan.s_worst + static
        thresholds = plan.thresholds
        # Entry layout: [feeds, static, chains, worst, feed_worsts,
        # thresholds, duration] — worst (index 3) and the threshold
        # floats are updated in place by repairs.
        entry = [
            plan.feeds, static, plan.chains, plan.worst,
            plan.feed_worsts, thresholds, plan.duration,
        ]
        # Pure pooled entries are recomputed wholesale by the per-sweep
        # pool pass, so they register no threshold links (nothing to
        # suspect or repair).  Volatile pooled entries keep theirs: the
        # pass recomputes their floats too, but a tripped threshold must
        # still be *accounted* as the scalar discard + miss.
        pooled = self._try_pool(key, plan) if self._vector else None
        cache.put(
            key, entry,
            operations=c.preds[o],
            threshold_links=(
                () if pooled == "pure" else tuple(t[0] for t in thresholds)
            ),
        )
        if self._vector:
            self._arr_state[key] = 2
            self._arr_worst[key] = plan.worst
            self._arr_static[key] = static
            self._arr_duration[key] = plan.duration
        return sigma

    def _repair(self, entry: list) -> None:
        """Replay the trial chains of every outdated link in place.

        The flat mirror of ``PressureCalculator._repair`` — identical
        float expressions, including the re-derived duration advance.
        """
        link_avail = self._link_avail
        feeds = entry[0]
        chains = entry[2]
        feed_worsts = entry[4]
        touched: set[int] = set()
        for threshold in entry[5]:
            available = link_avail[threshold[0]]
            if available <= threshold[1]:
                continue
            free = available
            first = None
            for feed_index, arrival_index, ready, duration in chains[threshold[0]]:
                start = ready if ready > free else free
                end = start + duration
                feeds[feed_index][2][arrival_index] = end
                free = start + (end - start)
                touched.add(feed_index)
                if first is None:
                    first = start
            threshold[1] = first
        npf = self._c.npf
        for feed_index in touched:
            arrivals = feeds[feed_index][2]
            count = len(arrivals)
            if count == 1:
                feed_worsts[feed_index] = arrivals[0]
            elif npf == 0:
                feed_worsts[feed_index] = min(arrivals)
            elif npf >= count - 1:
                feed_worsts[feed_index] = max(arrivals)
            else:
                feed_worsts[feed_index] = sorted(arrivals)[npf]
        entry[3] = max(feed_worsts)

    # ------------------------------------------------------------------
    # cache maintenance (driven by the FTBAR macro-step loop)
    # ------------------------------------------------------------------
    def begin_step(self) -> None:
        """Remember the buffer positions before a macro-step's placements."""
        self._step_mark = len(self._op_buffer)
        self._step_comm_mark = len(self._comm_buffer)

    def invalidate_step(self) -> None:
        """Apply the dirty set of the committed macro-step.

        The buffer suffixes since :meth:`begin_step` are the id-level
        :class:`~repro.core.incremental.StepDelta`: surviving records
        name the operations that gained replicas and the links their
        comms landed on (rollbacks truncated their records, so the
        suffix is net — exactly the ``MutationTracker`` contract,
        without re-deriving names from the schedule log).
        """
        if self._cache is None:
            return
        replicated = {
            record[6] for record in self._op_buffer[self._step_mark:]
        }
        links = {
            comm[10]
            for comm, _ in self._comm_buffer[self._step_comm_mark:]
        }
        if replicated:
            dropped = self._cache.invalidate_replicated(replicated)
            if self._vector and dropped:
                self._arr_state[list(dropped)] = 0
                self._release_keys(dropped)
        if links:
            self._suspects |= self._cache.suspects_for(links)

    def forget(self, operation: str) -> None:
        """Drop every cached plan of an operation that has been placed."""
        if self._cache is None:
            return
        o = self._c.op_ids[operation]
        dropped = self._cache.drop_range(o * self._P, (o + 1) * self._P)
        if self._vector and dropped:
            self._arr_state[list(dropped)] = 0
            self._release_keys(dropped)

    def forget_range(self, start: int, stop: int) -> None:
        """Drop every cached entry in a candidate's key range (HBP)."""
        if self._cache is not None:
            self._cache.drop_range(start, stop)

    # ------------------------------------------------------------------
    # placement (macro-step Â — the flat Minimize_start_time)
    # ------------------------------------------------------------------
    def place(self, operation: str, processor: str) -> None:
        """Place one replica, mirroring ``FTBARScheduler._place``."""
        c = self._c
        o = c.op_ids[operation]
        p = c.proc_ids[processor]
        if o in c.pins:
            # Memory halves are placed directly: duplicating register
            # halves would break the read/write co-location invariant.
            plan = self._plan(o, p, True, False)
            if plan is None:
                raise InfeasibleReplicationError(
                    f"memory half {operation!r} is forbidden on {processor!r} "
                    f"where its register lives"
                )
            self._commit(plan)
            return
        self._minimize(o, p, False)

    def place_step(
        self, operation: str, processors: "tuple[str, ...]"
    ) -> None:
        """Place one macro-step's ``Npf + 1`` replicas, batched.

        On all-direct interconnects (``_batch_ok``) the trial plans of
        the whole step are built upfront against ONE shared reservation
        overlay: each trial's overlay advances equal the committed
        advances of the trials before it (both are the re-derived
        ``start + (end - start)``), so every preplan is bit-identical
        to the fresh plan the sequential path would compute after the
        preceding commits.  Trials whose cache entry is repairable skip
        planning entirely: :meth:`_rebuild` replays the recorded
        reservation chains into a commit-ready plan (same floats — the
        chains' ready instants and durations are static while the entry
        lives).  A kept duplication invalidates the remaining preplans
        (it commits extra replicas mid-step), so the loop falls back to
        fresh sequential plans the moment a commit is not clean.
        """
        c = self._c
        o = c.op_ids[operation]
        if o in c.pins or not self._batch_ok:
            for processor in processors:
                self.place(operation, processor)
            return
        procs = [c.proc_ids[name] for name in processors]
        entries = self._cache.entries if self._cache is not None else None
        self._epoch += 1
        if self._epoch > 1:
            self.buffer_reuses += 1
        base_key = o * self._P
        plans: list[KernelPlan | None] = []
        for index, p in enumerate(procs):
            if index:
                self.buffer_reuses += 1
            entry = (
                entries.get(base_key + p) if entries is not None else None
            )
            if (
                entry is not None and entry[0] is not None
                and entry[2] is not None
            ):
                plans.append(self._rebuild(o, p, entry))
            else:
                plans.append(
                    self._plan(o, p, True, False, shared_overlay=True)
                )
        clean = True
        for index, p in enumerate(procs):
            plan = plans[index] if clean else self._plan(o, p, True, False)
            if plan is None:
                raise SchedulingError(
                    f"operation {c.op_names[o]!r} cannot be scheduled on "
                    f"{c.proc_names[p]!r}"
                )
            before = len(self._op_buffer)
            if self._duplication:
                plan = self._improve_by_duplication(plan)
            self._commit(plan)
            if len(self._op_buffer) != before + 1:
                clean = False

    def _rebuild(self, o: int, p: int, entry: list) -> KernelPlan:
        """A commit-ready plan replayed from a repairable cache entry.

        The entry's chains record every reservation's static operands
        (ready instant, duration) in plan order per link; replaying
        them against the current availabilities — through the shared
        step overlay, so later trials of the same batch queue behind
        this one exactly as they would behind its commit — reproduces
        the floats of a fresh plan at *any* availabilities (the
        threshold invariant: a repairable plan's structure never
        depends on link load, only its starts do).  Entry arrays are
        never mutated: the plan gets fresh feed and arrival lists.
        """
        c = self._c
        epoch = self._epoch
        stamp = self._link_stamp
        free = self._link_free
        base = self._link_avail
        link_names = c.link_names
        proc_names = c.proc_names
        op_names = c.op_names
        op_name = op_names[o]
        proc_name = proc_names[p]
        rep_list = self._rep_list
        feeds_in = entry[0]
        # Replay every link's chain; per-link order is plan order and
        # links are independent, so chain-order replay == plan order.
        ends: dict[tuple[int, int], tuple[int, float, float]] = {}
        for link, chain in entry[2].items():
            current = free[link] if stamp[link] == epoch else base[link]
            for feed_index, arrival_index, ready, duration in chain:
                start = ready if ready > current else current
                end = start + duration
                current = start + (end - start)
                ends[(feed_index, arrival_index)] = (link, start, end)
            stamp[link] = epoch
            free[link] = current
        feeds: list[tuple] = []
        comms: list[tuple] = []
        feed_worsts: list[float] = []
        worst = -_INF
        earliest = -_INF
        npf = c.npf
        for feed_index, feed in enumerate(feeds_in):
            q = feed[_FEED_PRED]
            local_end = feed[_FEED_LOCAL_END]
            if local_end is not None:
                feeds.append((q, local_end, None, None))
                feed_worsts.append(local_end)
                if local_end > worst:
                    worst = local_end
                if local_end > earliest:
                    earliest = local_end
                continue
            count = len(feed[_FEED_ARRIVALS])
            q_name = op_names[q]
            replicas = rep_list[q]
            arrivals: list[float] = []
            for arrival_index in range(count):
                link, start, end = ends[(feed_index, arrival_index)]
                arrivals.append(end)
                # Repairable plans are all-direct, so the replica index
                # equals the arrival index (every remote replica sends).
                comms.append((
                    q_name, op_name, arrival_index, link_names[link],
                    start, end, proc_names[replicas[arrival_index][0]],
                    proc_name, 0, 0, link,
                ))
            if count == 1:
                feed_worst = arrivals[0]
            elif npf == 0:
                feed_worst = min(arrivals)
            elif npf >= count - 1:
                feed_worst = max(arrivals)
            else:
                feed_worst = sorted(arrivals)[npf]
            feed_worsts.append(feed_worst)
            if feed_worst > worst:
                worst = feed_worst
            feed_earliest = min(arrivals)
            if feed_earliest > earliest:
                earliest = feed_earliest
            feeds.append((q, None, arrivals, None))
        plan = KernelPlan()
        plan.operation = op_name
        plan.processor = proc_name
        plan.op = o
        plan.proc = p
        plan.duration = entry[6]
        plan.processor_ready = self._proc_avail[p]
        plan.feeds = feeds
        plan.comms = comms
        plan.earliest = earliest
        plan.worst = worst
        plan.feed_worsts = feed_worsts
        plan.thresholds = _NO_THRESHOLDS
        plan.chains = None
        plan.repairable = False
        plan.pool_rows = None
        plan.pool_feeds = None
        plan.has_choice = False
        return plan

    def _minimize(self, o: int, p: int, duplicated: bool):
        """``Minimize_start_time(o, p)`` on kernel plans (steps Ê–Ñ)."""
        c = self._c
        plan = self._plan(o, p, True, False)
        if plan is None:
            raise SchedulingError(
                f"operation {c.op_names[o]!r} cannot be scheduled on "
                f"{c.proc_names[p]!r}"
            )
        if self._duplication:
            plan = self._improve_by_duplication(plan)
        return self._commit(plan, duplicated=duplicated)

    def _improve_by_duplication(self, plan: KernelPlan) -> KernelPlan:
        stats = self.dup_stats
        o, p = plan.op, plan.proc
        best_worst = plan.s_worst
        while True:
            lip = self._duplicable_lip(plan)
            if lip is None:
                return plan
            stats.attempts += 1
            saved = self._mark()
            try:
                # Step Í: recursively minimise the LIP's start on p.
                self._minimize(lip, p, True)
            except SchedulingError:
                self._undo_to(saved)
                stats.rolled_back += 1
                return plan
            new_plan = self._plan(o, p, True, False)
            if new_plan is None or new_plan.s_worst >= best_worst - _EPSILON:
                # Step Ð: the replication does not pay off — undo it all.
                self._undo_to(saved)
                stats.rolled_back += 1
                return plan
            # Step Ñ: improvement kept; hunt for the new LIP.
            stats.kept += 1
            stats.extra_replicas += 1
            best_worst = new_plan.s_worst
            plan = new_plan

    def _duplicable_lip(self, plan: KernelPlan) -> int | None:
        """Step Ì: the plan's LIP id, when duplicating it can help.

        The critical feed maximises ``(worst_case, smallest name)``;
        with sorted-name ids the tie-break is a plain id comparison.
        """
        feeds = plan.feeds
        if not feeds:
            return None
        feed_worsts = plan.feed_worsts
        best_feed = None
        best_worst = -_INF
        best_pred = -1
        for index, feed in enumerate(feeds):
            worst = feed_worsts[index]
            pred = feed[_FEED_PRED]
            if best_feed is None or worst > best_worst or (
                worst == best_worst and pred < best_pred
            ):
                best_feed = feed
                best_worst = worst
                best_pred = pred
        if best_feed[_FEED_LOCAL_END] is not None:
            return None
        c = self._c
        if c.is_memory_half[best_pred]:
            return None
        key = best_pred * self._P + plan.proc
        if c.exe[key] == _INF:
            return None
        if self._rep_end[key] != 0.0:
            return None
        return best_pred

    # ------------------------------------------------------------------
    # HBP: ordered-pair cost on the shared kernel
    # ------------------------------------------------------------------
    def pair_cost(self, task: int, first: int, second: int) -> float | None:
        """Later completion of the two replicas; ``None`` if infeasible.

        The flat mirror of ``HBPScheduler._pair_cost``: both replicas
        are planned against one shared overlay so their feeding comms
        contend for the same links; costs are cached per ordered pair
        with the same threshold staleness rule (checked value-wise on
        every hit — HBP entries carry no repair chains).
        """
        cache = self._cache
        n_procs = self._P
        key = (task * n_procs + first) * n_procs + second
        entry = cache.entries.get(key)
        if entry is not None:
            link_avail = self._link_avail
            stale = False
            for link, start in entry[1]:
                if link_avail[link] > start:
                    stale = True
                    break
            if not stale:
                cache.hits += 1
                payload = entry[0]
                if payload is None:
                    return None
                earliest_1, duration_1, earliest_2, duration_2 = payload
                ready_1 = self._proc_avail[first]
                ready_2 = self._proc_avail[second]
                first_end = max(ready_1, earliest_1) + duration_1
                second_end = max(ready_2, earliest_2) + duration_2
                return max(first_end, second_end)
            cache.discard(key)
        cache.misses += 1
        dependencies = self._c.preds[task]
        first_plan = self._plan(task, first, False, True)
        if first_plan is None:
            cache.put(key, [None, ()], operations=dependencies)
            return None
        second_plan = self._plan(task, second, False, True, shared_overlay=True)
        if second_plan is None:
            cache.put(key, [None, ()], operations=dependencies)
            return None
        merged: dict[int, float] = {}
        for link, start in first_plan.thresholds:
            merged[link] = start
        for link, start in second_plan.thresholds:
            current = merged.get(link)
            if current is None or start < current:
                merged[link] = start
        cache.put(
            key,
            [
                (
                    first_plan.earliest, first_plan.duration,
                    second_plan.earliest, second_plan.duration,
                ),
                tuple(merged.items()),
            ],
            operations=dependencies,
        )
        first_end = first_plan.s_best + first_plan.duration
        second_end = second_plan.s_best + second_plan.duration
        return max(first_end, second_end)

    def commit_pair(self, task: int, first: int, second: int) -> None:
        """Commit an HBP winning pair (mirrors ``_commit_pair``)."""
        c = self._c
        for p in (first, second):
            plan = self._plan(task, p, True, False)
            if plan is None:  # pragma: no cover - defensive
                raise SchedulingError(
                    f"placement of {c.op_names[task]!r} on "
                    f"{c.proc_names[p]!r} became infeasible"
                )
            self._commit(plan)
