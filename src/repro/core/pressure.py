"""The schedule-pressure cost function (section 4.2).

The pressure of a pair ``(operation, processor)`` at step ``n`` is::

    σ(n)(o, p) = S_worst(n)(o, p) + S̄(o) − R(n−1)

where ``S_worst`` is the earliest start of ``o`` on ``p`` accounting for
the *latest* predecessor replica (the worst case under failures), ``S̄``
is the *latest start time from the end* — the static bottom level of the
operation — and ``R(n−1)`` is the previous critical-path estimate.  The
paper notes that ``R(n−1)`` is identical for all candidates of one step,
so the implementation drops it from the comparisons; :meth:`
PressureCalculator.critical_path_estimate` still exposes ``R`` for
introspection and tests.

Because the architecture is heterogeneous and the placement is unknown
while computing a *static* priority, ``S̄`` uses the average execution
time over the allowed processors and the average communication time over
all links, exactly like the SynDEx pressure the paper builds on.
"""

from __future__ import annotations

import math

from repro.graphs.algorithm import AlgorithmGraph
from repro.hardware.architecture import Architecture
from repro.schedule.schedule import Schedule
from repro.core.placement import PlacementPlanner
from repro.timing.comm_times import CommunicationTimes
from repro.timing.exec_times import ExecutionTimes


class PressureCalculator:
    """Computes ``S̄`` (static) and σ (dynamic) for candidate pairs."""

    def __init__(
        self,
        algorithm: AlgorithmGraph,
        architecture: Architecture,
        exec_times: ExecutionTimes,
        comm_times: CommunicationTimes,
        npf: int,
        planner: PlacementPlanner,
        processor_aware: bool = False,
    ) -> None:
        self._algorithm = algorithm
        self._architecture = architecture
        self._exec_times = exec_times
        self._comm_times = comm_times
        self._npf = npf
        self._planner = planner
        self._processor_aware = processor_aware
        self._sbar_cache: dict[str, float] = {}
        self.evaluations = 0

    # ------------------------------------------------------------------
    # static part: S̄ (bottom level with average times)
    # ------------------------------------------------------------------
    def average_execution(self, operation: str) -> float:
        """Mean execution time of ``operation`` over its allowed processors."""
        return self._exec_times.average(
            operation, self._architecture.processor_names()
        )

    def average_communication(self, edge: tuple[str, str]) -> float:
        """Mean transfer time of ``edge`` over all links (0 with no link)."""
        links = self._architecture.link_names()
        if not links:
            return 0.0
        return self._comm_times.average(edge, links)

    def tail(self, operation: str) -> float:
        """Latest start time from the *end* of ``o``: the path after it.

        The longest average-time path from the end of ``o`` to the end
        of the graph, excluding ``o``'s own execution (which enters the
        pressure with its actual per-processor duration).  A sink's
        tail is 0.
        """
        return self.sbar(operation) - self.average_execution(operation)

    def sbar(self, operation: str) -> float:
        """``S̄(o)``: longest average-time path from ``o`` to a sink.

        Includes the operation's own average execution time; a sink's
        ``S̄`` is exactly its average execution time.
        """
        cached = self._sbar_cache.get(operation)
        if cached is not None:
            return cached
        # Iterative reverse-topological computation (avoid recursion
        # limits on deep chains).
        order = self._algorithm.topological_order()
        for name in reversed(order):
            if name in self._sbar_cache:
                continue
            tail = 0.0
            for successor in self._algorithm.successors(name):
                candidate = (
                    self.average_communication((name, successor))
                    + self._sbar_cache[successor]
                )
                tail = max(tail, candidate)
            self._sbar_cache[name] = self.average_execution(name) + tail
        return self._sbar_cache[operation]

    # ------------------------------------------------------------------
    # dynamic part: σ(o, p)
    # ------------------------------------------------------------------
    def pressure(
        self, operation: str, processor: str, schedule: Schedule
    ) -> float:
        """σ(o, p) up to the constant ``R(n−1)``; ``inf`` when forbidden.

        The paper's formula is ``σ = S_worst(o, p) + S̄(o)`` with a
        processor-independent ``S̄`` (average execution times) — that is
        the default and what reproduces the paper's numbers.  In
        processor-aware mode σ instead charges the *actual* execution
        time on ``p``: ``σ = S_worst(o, p) + Exe(o, p) + tail(o)``,
        which better measures how much the placement would lengthen the
        critical path on heterogeneous architectures.

        Each evaluation plans the placement against a fresh link-state
        overlay, so trial comms of one pair never pollute another
        pair's evaluation.
        """
        self.evaluations += 1
        plan = self._planner.plan(operation, processor, schedule)
        if plan is None:
            return math.inf
        if self._processor_aware:
            return plan.s_worst + plan.duration + self.tail(operation)
        return plan.s_worst + self.sbar(operation)

    def schedule_flexibility(
        self, operation: str, processor: str, schedule: Schedule, r_estimate: float
    ) -> float:
        """``SF(n)(o, p) = R(n) − S_worst(o, p) − S̄(o)`` (for introspection)."""
        plan = self._planner.plan(operation, processor, schedule)
        if plan is None:
            return -math.inf
        return r_estimate - plan.s_worst - self.sbar(operation)

    def critical_path_estimate(
        self, candidates: list[str], schedule: Schedule
    ) -> float:
        """``R(n)``: the current critical-path length estimate.

        Lower-bounded by the partial schedule's makespan and by the best
        achievable ``S_worst + S̄`` of every remaining candidate.
        """
        estimate = schedule.makespan()
        for operation in candidates:
            best = math.inf
            for processor in self._architecture.processor_names():
                plan = self._planner.plan(operation, processor, schedule)
                if plan is not None:
                    best = min(best, plan.s_worst + self.sbar(operation))
            if not math.isinf(best):
                estimate = max(estimate, best)
        return estimate
