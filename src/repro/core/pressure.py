"""The schedule-pressure cost function (section 4.2).

The pressure of a pair ``(operation, processor)`` at step ``n`` is::

    σ(n)(o, p) = S_worst(n)(o, p) + S̄(o) − R(n−1)

where ``S_worst`` is the earliest start of ``o`` on ``p`` accounting for
the *latest* predecessor replica (the worst case under failures), ``S̄``
is the *latest start time from the end* — the static bottom level of the
operation — and ``R(n−1)`` is the previous critical-path estimate.  The
paper notes that ``R(n−1)`` is identical for all candidates of one step,
so the implementation drops it from the comparisons; :meth:`
PressureCalculator.critical_path_estimate` still exposes ``R`` for
introspection and tests.

Because the architecture is heterogeneous and the placement is unknown
while computing a *static* priority, ``S̄`` uses the average execution
time over the allowed processors and the average communication time over
all links, exactly like the SynDEx pressure the paper builds on.
"""

from __future__ import annotations

import math

from repro.graphs.algorithm import AlgorithmGraph
from repro.hardware.architecture import Architecture
from repro.schedule.schedule import Schedule
from repro.core.incremental import PlanCache, StepDelta
from repro.core.placement import PlacementPlan, PlacementPlanner
from repro.timing.comm_times import CommunicationTimes
from repro.timing.exec_times import ExecutionTimes


class PressureCalculator:
    """Computes ``S̄`` (static) and σ (dynamic) for candidate pairs.

    When :meth:`attach` has bound the calculator to the schedule under
    construction, trial plans (and their pressures) are cached per
    ``(operation, processor)`` pair and served until the incremental
    engine reports, via :meth:`invalidate`, that a resource the plan
    depends on was touched.  ``pressure`` itself always recomputes —
    the cache is opt-in through :meth:`cached_pressure`.
    """

    def __init__(
        self,
        algorithm: AlgorithmGraph,
        architecture: Architecture,
        exec_times: ExecutionTimes,
        comm_times: CommunicationTimes,
        npf: int,
        planner: PlacementPlanner,
        processor_aware: bool = False,
    ) -> None:
        self._algorithm = algorithm
        self._architecture = architecture
        self._exec_times = exec_times
        self._comm_times = comm_times
        self._npf = npf
        self._planner = planner
        self._processor_aware = processor_aware
        self._sbar_cache: dict[str, float] = {}
        self._plan_cache = PlanCache()
        self._cache_schedule: Schedule | None = None
        # Per-schedule-version memo of resource availabilities: the
        # schedule is frozen during a whole selection sweep, so one
        # O(P + L) refresh serves every lookup of the sweep.
        self._avail_version = -1
        self._proc_avail: dict[str, float] = {}
        self._link_avail: dict[str, float] = {}
        # Entries whose threshold links were touched by recent steps;
        # only these need the per-lookup threshold check.
        self._suspects: set[tuple] = set()
        self.evaluations = 0

    # ------------------------------------------------------------------
    # static part: S̄ (bottom level with average times)
    # ------------------------------------------------------------------
    def average_execution(self, operation: str) -> float:
        """Mean execution time of ``operation`` over its allowed processors."""
        return self._exec_times.average(
            operation, self._architecture.processor_names()
        )

    def average_communication(self, edge: tuple[str, str]) -> float:
        """Mean transfer time of ``edge`` over all links (0 with no link)."""
        links = self._architecture.link_names()
        if not links:
            return 0.0
        return self._comm_times.average(edge, links)

    def tail(self, operation: str) -> float:
        """Latest start time from the *end* of ``o``: the path after it.

        The longest average-time path from the end of ``o`` to the end
        of the graph, excluding ``o``'s own execution (which enters the
        pressure with its actual per-processor duration).  A sink's
        tail is 0.
        """
        return self.sbar(operation) - self.average_execution(operation)

    def sbar(self, operation: str) -> float:
        """``S̄(o)``: longest average-time path from ``o`` to a sink.

        Includes the operation's own average execution time; a sink's
        ``S̄`` is exactly its average execution time.
        """
        cached = self._sbar_cache.get(operation)
        if cached is not None:
            return cached
        # Iterative reverse-topological computation (avoid recursion
        # limits on deep chains).
        order = self._algorithm.topological_order()
        for name in reversed(order):
            if name in self._sbar_cache:
                continue
            tail = 0.0
            for successor in self._algorithm.successors(name):
                candidate = (
                    self.average_communication((name, successor))
                    + self._sbar_cache[successor]
                )
                tail = max(tail, candidate)
            self._sbar_cache[name] = self.average_execution(name) + tail
        return self._sbar_cache[operation]

    def static_tables(self) -> tuple[list[float], list[float]]:
        """``(S̄, tail)`` per operation, in ``operation_names()`` order.

        The compiled kernel (:mod:`repro.core.kernel`) lowers the static
        pressure terms into flat arrays once per problem; producing them
        through this calculator — same reverse-topological sweep, same
        averaging order — is what keeps the compiled σ values
        bit-identical to the object path.
        """
        names = self._algorithm.operation_names()
        return (
            [self.sbar(name) for name in names],
            [self.tail(name) for name in names],
        )

    # ------------------------------------------------------------------
    # dynamic part: σ(o, p)
    # ------------------------------------------------------------------
    def pressure(
        self, operation: str, processor: str, schedule: Schedule
    ) -> float:
        """σ(o, p) up to the constant ``R(n−1)``; ``inf`` when forbidden.

        The paper's formula is ``σ = S_worst(o, p) + S̄(o)`` with a
        processor-independent ``S̄`` (average execution times) — that is
        the default and what reproduces the paper's numbers.  In
        processor-aware mode σ instead charges the *actual* execution
        time on ``p``: ``σ = S_worst(o, p) + Exe(o, p) + tail(o)``,
        which better measures how much the placement would lengthen the
        critical path on heterogeneous architectures.

        Each evaluation plans the placement against a fresh link-state
        overlay, so trial comms of one pair never pollute another
        pair's evaluation.
        """
        self.evaluations += 1
        plan = self._planner.plan(operation, processor, schedule)
        return self._sigma(operation, plan)

    def _sigma(self, operation: str, plan: PlacementPlan | None) -> float:
        if plan is None:
            return math.inf
        if self._processor_aware:
            return plan.s_worst + plan.duration + self.tail(operation)
        return plan.s_worst + self.sbar(operation)

    # ------------------------------------------------------------------
    # incremental plan cache
    # ------------------------------------------------------------------
    def attach(self, schedule: Schedule) -> None:
        """Bind the plan cache to the schedule under construction.

        Cached entries are only valid for this exact schedule object and
        only as long as the engine keeps reporting placements through
        :meth:`invalidate` / :meth:`forget_operation`; cached lookups
        against any other schedule silently fall back to fresh planning.
        """
        self._cache_schedule = schedule
        self._plan_cache.clear()
        self._suspects.clear()

    @property
    def cache_stats(self) -> tuple[int, int]:
        """``(hits, misses)`` of the plan cache, for the E6 bench."""
        return self._plan_cache.hits, self._plan_cache.misses

    def invalidate(self, delta: StepDelta) -> None:
        """Drop the cached plans whose resource dependencies were touched.

        Entries watching a touched link are not dropped but flagged for
        the threshold check (and possible in-place repair) on their next
        lookup; all other entries keep skipping the check.
        """
        self._plan_cache.invalidate(delta)
        if delta.links:
            self._suspects |= self._plan_cache.suspects_for(delta.links)

    def forget_operation(self, operation: str) -> None:
        """Drop every cached plan of an operation that has been placed."""
        self._plan_cache.drop_operation(operation)

    def cached_pressure(
        self, operation: str, processor: str, schedule: Schedule
    ) -> float:
        """σ(o, p) served from the plan cache when it is still valid.

        This is the engine's hot path — called once per (candidate,
        processor) pair per macro-step — so it is deliberately flat.

        A cache entry depends on the links the planner reserved and on
        the predecessors whose replica sets it enumerated — the two
        resources whose mutation can change the plan's *feeds*.  The
        plan's only dependency on the target processor's own timeline is
        ``processor_ready``, which is refreshed in O(1) on every hit, so
        placements on a processor do not evict the plans targeting it.

        Link dependencies are revalidated value-wise: a reserved link
        whose availability grew past the planned start shifts exactly
        that link's trial reservation chain, which a *repairable* plan
        (every transfer single-hop on a unique direct link) replays in
        place instead of replanning every feed.  See the dirty-set
        argument in :mod:`repro.core.ftbar`.
        """
        if schedule is not self._cache_schedule:
            return self.pressure(operation, processor, schedule)
        cache = self._plan_cache
        version = schedule.version()
        if version != self._avail_version:
            self._proc_avail = schedule.processor_availabilities()
            self._link_avail = schedule.link_availabilities()
            self._avail_version = version
        key = (operation, processor)
        entry = cache.entries.get(key)
        if entry is None:
            return self._miss(operation, processor, schedule)
        plan, static, chains, worst_cell, feed_worsts = entry.value
        if plan is None:
            cache.hits += 1
            return math.inf
        suspects = self._suspects
        if key in suspects:
            suspects.discard(key)
            link_avail = self._link_avail
            for threshold in entry.link_thresholds:
                if link_avail[threshold[0]] > threshold[1]:
                    if chains is None:
                        # Not repairable (parallel links or multi-hop):
                        # recompute the whole plan.
                        cache.discard(key)
                        return self._miss(operation, processor, schedule)
                    self._repair(entry, plan, chains, worst_cell, feed_worsts)
                    break
        cache.hits += 1
        ready = self._proc_avail[processor]
        worst = worst_cell[0]
        s_worst = ready if ready > worst else worst
        if self._processor_aware:
            # Same association as ``pressure``: bit-identical results.
            return s_worst + plan.duration + static
        return s_worst + static

    def _repair(self, entry, plan, chains, worst_cell, feed_worsts) -> None:
        """Replay the trial chains of every outdated link in place."""
        link_avail = self._link_avail
        feeds = plan.feeds
        touched: set[int] = set()
        for threshold in entry.link_thresholds:
            available = link_avail[threshold[0]]
            if available <= threshold[1]:
                continue
            # Replay this link's chain from its new free instant; other
            # links are untouched by construction (append mode keeps
            # per-link reservations independent).
            free = available
            first = None
            for feed_index, arrival_index, ready, duration in chains[threshold[0]]:
                start = ready if ready > free else free
                end = start + duration
                feeds[feed_index].arrivals[arrival_index] = end
                # Not simplified to ``free = end``: the planner advances
                # its free pointer by re-deriving the duration as
                # ``end - start`` (see _plan_transfer's reserve call),
                # and ``start + (end - start) == end`` is not an IEEE
                # identity — mirror the expression, not its value.
                free = start + (end - start)
                touched.add(feed_index)
                if first is None:
                    first = start
            threshold[1] = first
        plan.invalidate_feed_aggregates()
        # Only the replayed feeds changed; refresh their worst-case
        # arrivals and take the max with the untouched ones.
        npf = plan.npf
        for feed_index in touched:
            feed_worsts[feed_index] = feeds[feed_index].worst_case(npf)
        worst_cell[0] = max(feed_worsts)

    def _miss(self, operation: str, processor: str, schedule: Schedule) -> float:
        """Plan the pair for real, cache it with its dependencies."""
        cache = self._plan_cache
        key = (operation, processor)
        cache.misses += 1
        self.evaluations += 1
        plan = self._planner.plan(operation, processor, schedule)
        if plan is None:
            cache.put(key, (None, math.inf, None, None, None))
            return math.inf
        if self._processor_aware:
            static = self.tail(operation)
            sigma = plan.s_worst + plan.duration + static
        else:
            static = self.sbar(operation)
            sigma = plan.s_worst + static
        links: frozenset[str] = frozenset()
        thresholds: list[list] = []
        chains: dict[str, list[tuple[int, int, float, float]]] | None = None
        if self._planner.link_insertion:
            # Gap insertion makes a link's whole timeline relevant, so
            # fall back to set-based invalidation on touched links.
            links = plan.consulted_links
        else:
            thresholds = [list(pair) for pair in plan.link_thresholds()]
            if plan.repairable:
                chains = {}
                for feed_index, feed in enumerate(plan.feeds):
                    if feed.local_end is not None:
                        continue
                    for arrival_index, comm in enumerate(feed.comms):
                        producer = schedule.replica(
                            comm.source, comm.source_replica
                        )
                        # The table duration, not end - start: replays
                        # must redo the planner's exact arithmetic.
                        chains.setdefault(comm.link, []).append(
                            (feed_index, arrival_index, producer.end,
                             self._comm_times.time_of(
                                (comm.source, comm.target), comm.link))
                        )
        feed_worsts = [feed.worst_case(plan.npf) for feed in plan.feeds]
        cache.put(
            key,
            (plan, static, chains, [plan.feeds_worst], feed_worsts),
            links=links,
            operations=frozenset(self._algorithm.predecessors(operation)),
            link_thresholds=thresholds,
        )
        return sigma

    def cached_plan(
        self, operation: str, processor: str, schedule: Schedule
    ) -> PlacementPlan | None:
        """The (possibly cached) trial plan of one candidate pair.

        Served plans carry exact ``s_best``/``s_worst``/feed arrivals;
        after an in-place repair the per-comm time slots are *not*
        rewritten, so treat cached plans as pressure introspection data
        and replan before committing (the engine's placement path always
        does).
        """
        if schedule is not self._cache_schedule:
            self.evaluations += 1
            return self._planner.plan(operation, processor, schedule)
        # Revalidates (or computes) the entry as a side effect.
        self.cached_pressure(operation, processor, schedule)
        entry = self._plan_cache.entries.get((operation, processor))
        plan = entry.value[0]
        if plan is not None:
            plan.processor_ready = self._proc_avail[processor]
        return plan

    def schedule_flexibility(
        self, operation: str, processor: str, schedule: Schedule, r_estimate: float
    ) -> float:
        """``SF(n)(o, p) = R(n) − S_worst(o, p) − S̄(o)`` (for introspection)."""
        plan = self._planner.plan(operation, processor, schedule)
        if plan is None:
            return -math.inf
        return r_estimate - plan.s_worst - self.sbar(operation)

    def critical_path_estimate(
        self, candidates: list[str], schedule: Schedule
    ) -> float:
        """``R(n)``: the current critical-path length estimate.

        Lower-bounded by the partial schedule's makespan and by the best
        achievable ``S_worst + S̄`` of every remaining candidate.  Plans
        are served from the incremental cache when the calculator is
        attached to ``schedule``, so computing ``R`` alongside a
        selection step costs no extra planning.
        """
        estimate = schedule.makespan()
        for operation in candidates:
            best = math.inf
            for processor in self._architecture.processor_names():
                plan = self.cached_plan(operation, processor, schedule)
                if plan is not None:
                    best = min(best, plan.s_worst + self.sbar(operation))
            if not math.isinf(best):
                estimate = max(estimate, best)
        return estimate
