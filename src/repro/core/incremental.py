"""Shared machinery of the incremental scheduling engine.

The FTBAR main loop (and the HBP baseline, for an apples-to-apples E6
runtime comparison) exploits the key invariant of append-only list
scheduling: committing one placement only changes

* the timelines of the processors that received new replicas,
* the timelines of the links that carried the new comms, and
* the replica sets of the operations that gained replicas.

Every other resource is untouched, so every trial plan that did not
depend on a touched resource is still exactly valid.  Three pieces make
that exploitable:

:class:`ReadySet`
    Indegree-counter candidate maintenance: O(out-degree) per placement
    instead of a full rescan of the operation list.

:class:`MutationTracker`
    Computes the :class:`StepDelta` (touched processors, touched links,
    operations with new replicas) of one macro-step by diffing cheap
    per-resource counters before and after the placements.

:class:`PlanCache`
    A key -> value cache where every entry declares the resources it
    depends on; :meth:`PlanCache.invalidate` drops exactly the entries
    whose dependencies intersect a :class:`StepDelta`.

:class:`KernelPlanCache`
    The same dependency-tracked semantics keyed by dense integer ids,
    used by the compiled kernel (:mod:`repro.core.kernel`): candidate
    operations, dependency operations and threshold links are all ints,
    so invalidating a macro-step is set arithmetic over small int sets
    instead of string hashing.  Hit/miss accounting is deliberately
    identical to :class:`PlanCache` so the compiled engine's counters
    pin against the object engine's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graphs.algorithm import AlgorithmGraph
    from repro.schedule.schedule import Schedule

_EMPTY: frozenset[str] = frozenset()


class ReadySet:
    """O(1)-amortised maintenance of the list-scheduling candidate set.

    Each unscheduled operation carries a counter of unmet requirements:
    its unscheduled predecessors plus, for pinned memory halves, the
    anchor operation whose replicas define the allowed processors.  When
    an operation is scheduled, the counters of its successors (and pin
    dependents) are decremented; an operation becomes a candidate when
    its counter reaches zero.  Candidate *order* is the sorted order the
    full-rescan implementation produced, so selection tie-breaks are
    unchanged.
    """

    def __init__(
        self,
        algorithm: "AlgorithmGraph",
        pins: Mapping[str, str] | None = None,
    ) -> None:
        self._algorithm = algorithm
        self._pin_dependents: dict[str, list[str]] = {}
        self._waiting: dict[str, int] = {}
        self._ready: set[str] = set()
        for operation in algorithm.operation_names():
            count = len(algorithm.predecessors(operation))
            anchor = (pins or {}).get(operation)
            if anchor is not None and anchor not in algorithm.predecessors(operation):
                count += 1
                self._pin_dependents.setdefault(anchor, []).append(operation)
            if count == 0:
                self._ready.add(operation)
            else:
                self._waiting[operation] = count

    def candidates(self) -> tuple[str, ...]:
        """The current candidates, sorted (the legacy rescan order)."""
        return tuple(sorted(self._ready))

    def mark_scheduled(self, operation: str) -> None:
        """Retire a scheduled operation and release its dependents."""
        self._ready.discard(operation)
        for successor in self._algorithm.successors(operation):
            self._release(successor)
        for dependent in self._pin_dependents.get(operation, ()):
            self._release(dependent)

    def _release(self, operation: str) -> None:
        remaining = self._waiting[operation] - 1
        if remaining == 0:
            del self._waiting[operation]
            self._ready.add(operation)
        else:
            self._waiting[operation] = remaining


@dataclass(frozen=True)
class StepDelta:
    """The resources one macro-step touched (the dirty set)."""

    processors: frozenset[str]
    links: frozenset[str]
    replicated: frozenset[str]

    def __bool__(self) -> bool:
        return bool(self.processors or self.links or self.replicated)


class MutationTracker:
    """Diffs a schedule across one macro-step to produce its delta.

    The schedule's mutation log records every surviving placement
    (rollbacks inside the step pop their entries), so the dirty set is
    read off the log suffix in O(changes) — it is exact, not
    conservative.
    """

    def __init__(self, schedule: "Schedule") -> None:
        self._schedule = schedule
        self._mark = 0

    def begin(self) -> None:
        """Remember the log position before the placements."""
        self._mark = self._schedule.mark()

    def delta(self) -> StepDelta:
        """The dirty set accumulated since :meth:`begin`."""
        processors: set[str] = set()
        links: set[str] = set()
        replicated: set[str] = set()
        for entry in self._schedule.mutations_since(self._mark):
            if entry[0] == "op":
                processors.add(entry[1])
                replicated.add(entry[3])
            else:
                links.add(entry[1])
        return StepDelta(
            frozenset(processors), frozenset(links), frozenset(replicated)
        )


@dataclass
class _Entry:
    value: Any
    links: frozenset[str]
    operations: frozenset[str]
    link_thresholds: tuple[tuple[str, float], ...]


class PlanCache:
    """Dependency-tracked cache with dirty-set invalidation.

    Keys are tuples whose first element is the candidate operation
    (``(operation, processor)`` for FTBAR, ``(task, p1, p2)`` for HBP).
    Each entry declares the links it consulted while planning comms
    (insertion-mode set rule) and the operations whose replica sets it
    enumerated; :meth:`invalidate` drops an entry only when one of
    those dependencies was touched.

    Append-mode link dependencies are best expressed as *thresholds*
    instead of sets: a trial comm planned to start at ``s`` on link ``l``
    replans identically as long as ``l``'s availability has not grown
    past ``s`` (availability is monotone across committed steps, and a
    free instant at or below the planned start cannot move the planned
    slot, nor flip the min-end choice among parallel links).  Entries
    carrying ``link_thresholds`` are therefore left alone by
    :meth:`invalidate`; the calling engine checks them value-wise at
    lookup time (and flags candidates via :meth:`suspects_for`).

    Invalidation is reverse-indexed so one macro-step costs O(touched),
    not O(cache size): every entry is registered under its candidate
    operation (``key[0]``), under each operation it depends on, and
    under each link of its set dependencies (the insertion-mode
    fallback) and thresholds.
    """

    def __init__(self) -> None:
        self.entries: dict[tuple, _Entry] = {}
        self._by_candidate: dict[str, set[tuple]] = {}
        self._by_dependency: dict[str, set[tuple]] = {}
        self._by_threshold_link: dict[str, set[tuple]] = {}
        self._by_set_link: dict[str, set[tuple]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self.entries)

    def put(
        self,
        key: tuple,
        value: Any,
        links: frozenset[str] = _EMPTY,
        operations: frozenset[str] = _EMPTY,
        link_thresholds: tuple[tuple[str, float], ...] = (),
    ) -> None:
        """Store ``value`` with its resource dependencies.

        Callers read ``entries`` directly on the hot path (and keep the
        ``hits``/``misses`` counters themselves); ``put`` exists to keep
        the reverse indexes consistent.
        """
        old = self.entries.get(key)
        if old is not None:
            self._unindex(key, old)
        self.entries[key] = _Entry(value, links, operations, link_thresholds)
        self._by_candidate.setdefault(key[0], set()).add(key)
        for operation in operations:
            self._by_dependency.setdefault(operation, set()).add(key)
        for threshold in link_thresholds:
            self._by_threshold_link.setdefault(threshold[0], set()).add(key)
        for link in links:
            self._by_set_link.setdefault(link, set()).add(key)

    def _unindex(self, key: tuple, entry: _Entry) -> None:
        candidates = self._by_candidate.get(key[0])
        if candidates is not None:
            candidates.discard(key)
        for operation in entry.operations:
            dependents = self._by_dependency.get(operation)
            if dependents is not None:
                dependents.discard(key)
        for threshold in entry.link_thresholds:
            watchers = self._by_threshold_link.get(threshold[0])
            if watchers is not None:
                watchers.discard(key)
        for link in entry.links:
            watchers = self._by_set_link.get(link)
            if watchers is not None:
                watchers.discard(key)

    def suspects_for(self, links: frozenset[str]) -> set[tuple]:
        """Keys whose thresholds watch one of the just-touched links.

        Only these entries can have gone stale: availability of every
        other link is unchanged, so the per-lookup threshold check can
        be skipped for everything else.
        """
        suspects: set[tuple] = set()
        for link in links:
            watchers = self._by_threshold_link.get(link)
            if watchers:
                suspects |= watchers
        return suspects

    def discard(self, key: tuple) -> None:
        """Drop one entry (used when a lookup finds it stale)."""
        entry = self.entries.pop(key, None)
        if entry is not None:
            self._unindex(key, entry)

    def invalidate(self, delta: StepDelta) -> int:
        """Drop the entries whose dependencies intersect ``delta``."""
        if not delta or not self.entries:
            return 0
        dead: set[tuple] = set()
        for operation in delta.replicated:
            dependents = self._by_dependency.get(operation)
            if dependents:
                dead |= dependents
        for link in delta.links:
            watchers = self._by_set_link.get(link)
            if watchers:
                dead |= watchers
        for key in dead:
            self.discard(key)
        return len(dead)

    def drop_operation(self, operation: str) -> None:
        """Forget every entry of one candidate (it has been placed)."""
        for key in tuple(self._by_candidate.get(operation, ())):
            self.discard(key)

    def clear(self) -> None:
        """Empty the cache (counters are preserved)."""
        self.entries.clear()
        self._by_candidate.clear()
        self._by_dependency.clear()
        self._by_threshold_link.clear()
        self._by_set_link.clear()


class KernelPlanCache:
    """Dependency-tracked cache over dense integer ids (compiled engine).

    Keys are flat candidate-pair indices (``operation * P + processor``
    for FTBAR, ``task * P² + p1 * P + p2`` for HBP); values are opaque
    to the cache (the kernel stores mutable entry lists it updates in
    place on threshold repairs).  Dependency declarations — the
    candidate operation, the operations whose replica sets the plan
    enumerated, the links whose availability thresholds guard it — are
    ids too, so :meth:`invalidate_replicated` and :meth:`suspects_for`
    are set unions over small int sets.

    The invalidation semantics (and the hit/miss bookkeeping contract:
    callers read ``entries`` directly on the hot path and keep the
    counters themselves) mirror :class:`PlanCache` exactly; the
    equivalence corpus pins the two engines' counters against each
    other, so change both classes together.
    """

    __slots__ = (
        "entries", "_meta", "_by_dependency", "_by_threshold_link",
        "hits", "misses",
    )

    def __init__(self) -> None:
        self.entries: dict[int, Any] = {}
        #: key -> (dependency op ids, threshold link ids)
        self._meta: dict[int, tuple[tuple[int, ...], tuple[int, ...]]] = {}
        self._by_dependency: dict[int, set[int]] = {}
        self._by_threshold_link: dict[int, set[int]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self.entries)

    def put(
        self,
        key: int,
        value: Any,
        operations: tuple[int, ...] = (),
        threshold_links: tuple[int, ...] = (),
    ) -> None:
        """Store ``value`` under ``key`` with its id-level dependencies.

        Unlike :class:`PlanCache` there is no candidate reverse index:
        a candidate's keys are a computable id range (``op * P + p`` /
        ``task * P² + …``), so dropping a placed candidate probes that
        range directly.
        """
        if key in self.entries:
            self.discard(key)
        self.entries[key] = value
        self._meta[key] = (operations, threshold_links)
        for operation in operations:
            self._by_dependency.setdefault(operation, set()).add(key)
        for link in threshold_links:
            self._by_threshold_link.setdefault(link, set()).add(key)

    def discard(self, key: int) -> None:
        """Drop one entry (used when a lookup finds it stale)."""
        if self.entries.pop(key, None) is None:
            return
        operations, threshold_links = self._meta.pop(key)
        for operation in operations:
            dependents = self._by_dependency.get(operation)
            if dependents is not None:
                dependents.discard(key)
        for link in threshold_links:
            watchers = self._by_threshold_link.get(link)
            if watchers is not None:
                watchers.discard(key)

    def invalidate_replicated(self, operations: "Iterable[int]") -> set[int]:
        """Drop every entry depending on an operation that gained replicas.

        Returns the dropped keys so the kernel can clear its parallel
        sweep arrays.
        """
        dead: set[int] = set()
        for operation in operations:
            dependents = self._by_dependency.get(operation)
            if dependents:
                dead |= dependents
        for key in dead:
            self.discard(key)
        return dead

    def suspects_for(self, links: "Iterable[int]") -> set[int]:
        """Keys whose thresholds watch one of the just-touched links."""
        suspects: set[int] = set()
        for link in links:
            watchers = self._by_threshold_link.get(link)
            if watchers:
                suspects |= watchers
        return suspects

    def drop_range(self, start: int, stop: int) -> list[int]:
        """Forget every entry in one candidate's key range (it placed).

        Returns the dropped keys (see :meth:`invalidate_replicated`).
        """
        entries = self.entries
        dropped = [key for key in range(start, stop) if key in entries]
        for key in dropped:
            self.discard(key)
        return dropped
