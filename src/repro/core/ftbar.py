"""FTBAR — the Fault-Tolerance Based Active Replication heuristic.

This is the paper's contribution (section 4): a greedy list-scheduling
heuristic that, at every step,

À computes the schedule pressure of each candidate operation on each
  processor and keeps, per candidate, the ``Npf + 1`` processors with the
  smallest pressure;

Á selects the most *urgent* candidate — the one whose kept pressures
  reach the maximum (min over processors, max over operations);

Â places the selected operation on its ``Npf + 1`` best processors
  through ``Minimize_start_time`` (LIP duplication), emitting the comms
  implied by active replication: every replica of every predecessor
  sends to every replica of the operation, except when a predecessor
  replica is co-located (single zero-cost intra-processor comm, §4.1);

Ã updates the candidate list with the operations whose predecessors are
  now all scheduled.

Memory operations are expanded into pinned read/write halves before
scheduling (see :meth:`repro.graphs.AlgorithmGraph.expand_memories`), and
the real-time constraints are checked on the finished schedule — the
scheduler reports ``Rtc`` satisfaction rather than failing, so the
designer can decide to add hardware or relax the constraints.

Incremental engine invariants
-----------------------------
The default engine (``SchedulerOptions.incremental``) avoids the naive
O(steps x candidates x processors) replanning of macro-step À by caching
every trial plan and only recomputing the ones a placement could have
changed.  Its correctness rests on two invariants of the paper's
append-only list scheduling:

1. **Ready-set maintenance.**  An operation becomes a candidate exactly
   when its last unscheduled predecessor (or, for a pinned memory half,
   its anchor half) is placed.  Indegree counters decremented on each
   placement therefore reproduce the full rescan, including its sorted
   candidate order (tie-breaks are order-sensitive).

2. **Dirty-set rule.**  A cached plan for ``(o, p)`` reads only: the
   timeline of ``p`` (``processor_ready``, co-located predecessor
   replicas), the busy intervals of the links it consulted while routing
   feeds, and the replica sets of ``o``'s predecessors.  Committing a
   macro-step mutates only: the timelines of the processors that
   received replicas (the selected operation's ``Npf + 1`` hosts, which
   also host every LIP duplicate), the links its comms landed on, and
   the replica sets of the operations that gained replicas (the selected
   operation and any duplicated LIP ancestors).  Hence a cached plan
   whose dependency sets are disjoint from the step's dirty set would be
   recomputed *identically* — serving it from cache is exact, not
   approximate, and the produced schedules, tie-breaks and
   :class:`StepRecord` streams are bit-identical to the legacy path
   (enforced by ``tests/test_engine_equivalence.py`` against recorded
   seed-engine fingerprints).

Rollbacks inside ``Minimize_start_time`` cannot poison the cache: the
dirty set is diffed on the *committed* post-step state, and a rolled
back trial restores the exact pre-trial timelines.
"""

from __future__ import annotations

import math
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro import obs
from repro.exceptions import (
    CompiledFallbackWarning,
    InfeasibleReplicationError,
    SchedulingError,
)
from repro.graphs.algorithm import AlgorithmGraph
from repro.core.compile import CompiledProblem, validated_once
from repro.core.incremental import MutationTracker, ReadySet
from repro.core.kernel import CompiledReadySet, SchedulingKernel
from repro.core.minimize import DuplicationStats, StartTimeMinimizer
from repro.core.options import SchedulerOptions
from repro.core.parallel import resolve_workers
from repro.core.placement import PlacementPlanner, commit_plan
from repro.core.pressure import PressureCalculator
from repro.problem import ProblemSpec
from repro.schedule.schedule import Schedule
from repro.timing.comm_times import CommunicationTimes
from repro.timing.constraints import RealTimeConstraints, RtcReport
from repro.timing.exec_times import ExecutionTimes


@dataclass
class FTBARStats:
    """Run statistics, used by the complexity experiment (E6).

    ``pressure_evaluations`` counts *computed* trial plans; with the
    incremental engine the cache serves the rest (``cache_hits``), which
    is exactly the saving the refactor buys.
    """

    steps: int = 0
    pressure_evaluations: int = 0
    cache_hits: int = 0
    duplication: DuplicationStats = field(default_factory=DuplicationStats)
    wall_time_s: float = 0.0
    #: Trial plans served by the compiled kernel's reused scratch
    #: buffers (0 on the object path, which allocates a fresh overlay
    #: per evaluation) — recorded by ``benchmarks/bench_runtime.py``.
    buffer_reuses: int = 0
    #: ``(candidate, processor)`` pairs the compiled kernel skipped
    #: because a verified topology automorphism made their σ a
    #: bit-identical copy of an orbit representative's (0 on the object
    #: path and with ``SchedulerOptions.symmetry=False``).
    symmetry_pruned: int = 0


@dataclass(frozen=True)
class StepRecord:
    """What one FTBAR macro-step decided (for observers, section 4.3).

    Emitted after the selected operation has been placed, so the
    ``makespan`` field reflects the schedule state the paper's Figures
    5 and 6 show "after step n".
    """

    step: int
    candidates: tuple[str, ...]
    operation: str
    processors: tuple[str, ...]
    urgency: float
    pressures: Mapping[tuple[str, str], float]
    makespan: float


@dataclass
class FTBARResult:
    """Everything FTBAR returns: the schedule, the ``Rtc`` verdict, stats."""

    schedule: Schedule
    rtc_report: RtcReport
    stats: FTBARStats
    expanded_algorithm: AlgorithmGraph
    memory_pairs: Mapping[str, tuple[str, str]]

    @property
    def makespan(self) -> float:
        """Completion date of the produced schedule."""
        return self.schedule.makespan()

    @property
    def rtc_satisfied(self) -> bool:
        """True when the real-time constraints hold (paper's 'indication')."""
        return self.rtc_report.satisfied


class FTBARScheduler:
    """One-shot scheduler object; build it with a problem, call :meth:`run`."""

    def __init__(
        self,
        problem: ProblemSpec,
        options: SchedulerOptions | None = None,
        observer: "Callable[[StepRecord], None] | None" = None,
    ) -> None:
        self._observer = observer
        self._problem = problem
        self._options = options or SchedulerOptions()
        self._npf = problem.npf
        self._npl = (
            self._options.npl if self._options.npl is not None else problem.npl
        )
        if self._npl < 0:
            raise SchedulingError(f"npl must be >= 0, got {self._npl}")
        # The compiled kernel covers append-mode scheduling; gap
        # insertion keeps the object path (see SchedulerOptions).
        self._compiled: CompiledProblem | None = None
        if self._options.compiled and self._options.link_insertion:
            warnings.warn(
                "compiled=True has no effect with link_insertion=True: "
                "the compiled kernel models append-mode reservations "
                "only, so this run uses the object path (bit-identical "
                "schedules, object-path speed)",
                CompiledFallbackWarning,
                stacklevel=3,
            )
            obs.event(
                "warn.compiled_fallback",
                problem=problem.name,
                reason="link_insertion",
            )
        compiling = self._options.compiled and not self._options.link_insertion
        if not compiling:
            problem.validate()
        self._architecture = problem.architecture
        try:
            algorithm, pairs = problem.algorithm.expand_memories()
            self._algorithm = algorithm
            self._memory_pairs = dict(pairs)
            self._pins: dict[str, str] = {
                write: read for read, write in self._memory_pairs.values()
            }
            self._exec_times, self._comm_times = _expand_timing(
                problem, self._memory_pairs
            )
            if compiling:
                with obs.span("ftbar.compile", problem=problem.name):
                    self._compiled = CompiledProblem(
                        self._algorithm,
                        self._architecture,
                        self._exec_times,
                        self._comm_times,
                        self._npf,
                        self._npl,
                        self._pins,
                    )
        except Exception:
            if not compiling:
                raise
            # Compilation assumes a well-formed problem.  Validate now
            # to surface the canonical TimingError / SchedulingError; a
            # problem that *passes* hit a genuine compilation failure,
            # which must not be masked.
            problem.validate()
            raise
        if compiling:
            # Content-addressed validation: the compiled path derives a
            # hash of everything validate() cross-checks, so each
            # distinct problem content is validated exactly once.
            validated_once(self._compiled, problem)
        if self._npl >= 1 and len(problem.architecture) > 1:
            # The problem's own npl was checked by validate(); an
            # options-level override needs the same feasibility gate.
            problem.architecture.route_planner.require_disjoint_routes(
                self._npl + 1
            )
        # The object-path machinery is built on demand (properties
        # below): a compiled run never touches it, and its construction
        # is a measurable fraction of a small-N run.
        self._planner_obj: PlacementPlanner | None = None
        self._pressure_obj: PressureCalculator | None = None
        self._minimizer_obj: StartTimeMinimizer | None = None

    @property
    def _planner(self) -> PlacementPlanner:
        planner = self._planner_obj
        if planner is None:
            planner = self._planner_obj = PlacementPlanner(
                self._algorithm,
                self._architecture,
                self._exec_times,
                self._comm_times,
                self._npf,
                link_insertion=self._options.link_insertion,
                npl=self._npl,
            )
        return planner

    @property
    def _pressure(self) -> PressureCalculator:
        pressure = self._pressure_obj
        if pressure is None:
            pressure = self._pressure_obj = PressureCalculator(
                self._algorithm,
                self._architecture,
                self._exec_times,
                self._comm_times,
                self._npf,
                self._planner,
                processor_aware=self._options.processor_aware_pressure,
            )
        return pressure

    @property
    def _minimizer(self) -> StartTimeMinimizer:
        minimizer = self._minimizer_obj
        if minimizer is None:
            minimizer = self._minimizer_obj = StartTimeMinimizer(
                planner=self._planner,
                exec_times=self._exec_times,
                duplication=self._options.duplication,
            )
        return minimizer

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> FTBARResult:
        """Execute the FTBAR macro-steps until every operation is placed."""
        tracer = obs.tracer()
        if tracer is None:
            return self._run(None)
        with tracer.span(
            "ftbar.run",
            problem=self._problem.name,
            operations=len(self._algorithm),
            npf=self._npf,
            npl=self._npl,
            engine="kernel" if self._compiled is not None else "object",
        ) as span:
            result = self._run(tracer)
            stats = result.stats
            span.set(steps=stats.steps, makespan=result.schedule.makespan())
        metrics = obs.metrics
        metrics.inc("ftbar.runs")
        metrics.inc("ftbar.steps", stats.steps)
        metrics.inc("ftbar.pressure_evaluations", stats.pressure_evaluations)
        metrics.inc("ftbar.cache_hits", stats.cache_hits)
        metrics.inc("ftbar.buffer_reuses", stats.buffer_reuses)
        metrics.inc("ftbar.symmetry_pruned", stats.symmetry_pruned)
        metrics.inc(
            "ftbar.duplication_attempts", stats.duplication.attempts
        )
        metrics.observe("ftbar.run_s", stats.wall_time_s)
        return result

    def _run(self, tracer) -> FTBARResult:
        started = time.perf_counter()
        schedule = Schedule(
            processors=self._architecture.processor_names(),
            links=self._architecture.link_names(),
            npf=self._npf,
            npl=self._npl,
            name=f"{self._problem.name}-ftbar",
        )
        stats = FTBARStats()
        scheduled: set[str] = set()
        incremental = self._options.incremental
        observer = self._observer
        kernel: SchedulingKernel | None = None
        if self._compiled is not None:
            kernel = SchedulingKernel(
                self._compiled,
                schedule,
                cache=incremental,
                processor_aware=self._options.processor_aware_pressure,
                duplication=self._options.duplication,
                symmetry=self._options.symmetry,
                workers=resolve_workers(self._options.sweep_workers),
            )
            if tracer is not None:
                # Sub-step phases too hot to span individually (the
                # replay-repair pool pass) accumulate totals here and
                # are emitted as aggregate spans after the loop.
                kernel.phase_times = {}
        ready: ReadySet | None = None
        ready_ids: CompiledReadySet | None = None
        tracker: MutationTracker | None = None
        if incremental:
            if kernel is not None:
                # Candidate maintenance on dense ids: sorted ids are
                # the sorted-name candidate order by construction.  The
                # kernel derives each step's dirty set from its own
                # undo log, so no MutationTracker is needed.
                ready_ids = CompiledReadySet(self._compiled)
            else:
                tracker = MutationTracker(schedule)
                ready = ReadySet(self._algorithm, self._pins)
                self._pressure.attach(schedule)
        op_names = self._compiled.op_names if kernel is not None else None
        while True:
            if ready_ids is not None:
                candidate_ids = ready_ids.candidates()
                if not candidate_ids:
                    break
                candidates = None
            else:
                candidates = (
                    list(ready.candidates()) if incremental
                    else self._candidates(scheduled)
                )
                if not candidates:
                    break
            stats.steps += 1
            with (
                tracer.span("kernel.sweep", step=stats.steps)
                if tracer is not None
                else obs.NOOP_SPAN
            ):
                if kernel is not None:
                    if ready_ids is not None:
                        operation, processors, urgency, pressures = (
                            kernel.select_ids(
                                candidate_ids, observer is not None
                            )
                        )
                    else:
                        operation, processors, urgency, pressures = (
                            kernel.select(candidates, observer is not None)
                        )
                else:
                    operation, processors, urgency, pressures = self._select(
                        candidates, schedule
                    )
            if incremental:
                if kernel is not None:
                    kernel.begin_step()
                else:
                    tracker.begin()
            with (
                tracer.span("kernel.place", step=stats.steps)
                if tracer is not None
                else obs.NOOP_SPAN
            ):
                if kernel is not None:
                    # Macro-step trial batching: the kernel plans the
                    # whole step's Npf + 1 trials in one pass where that
                    # is exact (see SchedulingKernel.place_step).
                    kernel.place_step(operation, processors)
                else:
                    for processor in processors:
                        self._place(operation, processor, schedule)
            scheduled.add(operation)
            if incremental:
                if ready_ids is not None:
                    ready_ids.mark_scheduled(self._compiled.op_ids[operation])
                else:
                    ready.mark_scheduled(operation)
                if kernel is not None:
                    kernel.forget(operation)
                    kernel.invalidate_step()
                else:
                    self._pressure.forget_operation(operation)
                    self._pressure.invalidate(tracker.delta())
            if observer is not None:
                if candidates is None:
                    candidates = [op_names[o] for o in candidate_ids]
                observer(
                    StepRecord(
                        step=stats.steps,
                        candidates=tuple(candidates),
                        operation=operation,
                        processors=processors,
                        urgency=urgency,
                        pressures=pressures,
                        makespan=(
                            kernel.makespan if kernel is not None
                            else schedule.makespan()
                        ),
                    )
                )
        if kernel is not None:
            # The kernel buffered its placements; write the survivors
            # into the real schedule now that the run is over.
            with (
                tracer.span("kernel.materialize")
                if tracer is not None
                else obs.NOOP_SPAN
            ):
                kernel.materialize()
            if tracer is not None and kernel.phase_times:
                for name, (total, count) in sorted(
                    kernel.phase_times.items()
                ):
                    tracer.aggregate(name, total, count)
        if len(scheduled) != len(self._algorithm):
            missing = sorted(set(self._algorithm.operation_names()) - scheduled)
            raise SchedulingError(
                f"scheduling stalled; unplaced operations: {missing}"
            )
        if kernel is not None:
            stats.pressure_evaluations = kernel.evaluations
            stats.cache_hits = kernel.hits
            stats.duplication = kernel.dup_stats
            stats.buffer_reuses = kernel.buffer_reuses
            stats.symmetry_pruned = kernel.symmetry_pruned
        else:
            stats.pressure_evaluations = self._pressure.evaluations
            stats.cache_hits = self._pressure.cache_stats[0]
            stats.duplication = self._minimizer.stats
        stats.wall_time_s = time.perf_counter() - started
        rtc_report = self._expanded_rtc().check(schedule)
        return FTBARResult(
            schedule=schedule,
            rtc_report=rtc_report,
            stats=stats,
            expanded_algorithm=self._algorithm,
            memory_pairs=self._memory_pairs,
        )

    # ------------------------------------------------------------------
    # candidate management (macro-step Ã)
    # ------------------------------------------------------------------
    def _candidates(self, scheduled: set[str]) -> list[str]:
        """Operations whose predecessors (and pin anchors) are all placed."""
        ready: list[str] = []
        for operation in self._algorithm.operation_names():
            if operation in scheduled:
                continue
            predecessors = self._algorithm.predecessors(operation)
            if any(p not in scheduled for p in predecessors):
                continue
            anchor = self._pins.get(operation)
            if anchor is not None and anchor not in scheduled:
                continue
            ready.append(operation)
        return ready

    # ------------------------------------------------------------------
    # selection (macro-steps À and Á)
    # ------------------------------------------------------------------
    def _select(
        self, candidates: list[str], schedule: Schedule
    ) -> tuple[str, tuple[str, ...], float, dict[tuple[str, str], float]]:
        """Pick the most urgent candidate and its ``Npf + 1`` processors."""
        best_choice: tuple[float, str, tuple[str, ...]] | None = None
        pressures: dict[tuple[str, str], float] = {}
        evaluate = (
            self._pressure.cached_pressure
            if self._options.incremental
            else self._pressure.pressure
        )
        infinity = math.inf
        for operation in candidates:
            processors = self._processor_pool(operation, schedule)
            ranked: list[tuple[float, str]] = []
            for processor in processors:
                sigma = evaluate(operation, processor, schedule)
                pressures[(operation, processor)] = sigma
                if sigma != infinity:
                    ranked.append((sigma, processor))
            ranked.sort()
            required = self._npf + 1
            if len(ranked) < required:
                raise InfeasibleReplicationError(
                    f"operation {operation!r} can run on {len(ranked)} "
                    f"processor(s), {required} required to tolerate "
                    f"{self._npf} failure(s)"
                )
            kept = ranked[:required]
            urgency = kept[-1][0]
            key = (urgency, operation)
            if best_choice is None or (
                key[0] > best_choice[0]
                or (key[0] == best_choice[0] and key[1] < best_choice[1])
            ):
                best_choice = (
                    urgency,
                    operation,
                    tuple(processor for _, processor in kept),
                )
        assert best_choice is not None
        return best_choice[1], best_choice[2], best_choice[0], pressures

    def _processor_pool(self, operation: str, schedule: Schedule) -> tuple[str, ...]:
        """Processors considered for one candidate.

        A pinned memory half must live exactly where its anchor half
        lives; every other operation may go anywhere the ``Dis``
        constraints allow.
        """
        anchor = self._pins.get(operation)
        if anchor is None:
            return self._architecture.processor_names()
        replicas = schedule.replicas_of(anchor)
        return tuple(sorted(r.processor for r in replicas))

    # ------------------------------------------------------------------
    # placement (macro-step Â)
    # ------------------------------------------------------------------
    def _place(self, operation: str, processor: str, schedule: Schedule) -> None:
        if operation in self._pins:
            # Memory halves are placed directly: duplicating register
            # halves would break the read/write co-location invariant.
            plan = self._planner.plan(operation, processor, schedule)
            if plan is None:
                raise InfeasibleReplicationError(
                    f"memory half {operation!r} is forbidden on {processor!r} "
                    f"where its register lives"
                )
            commit_plan(plan, schedule)
            return
        self._minimizer.place(operation, processor, schedule)

    # ------------------------------------------------------------------
    # Rtc translation for expanded memories
    # ------------------------------------------------------------------
    def _expanded_rtc(self) -> RealTimeConstraints:
        rtc = self._problem.rtc
        if not self._memory_pairs or not rtc.operation_deadlines:
            return rtc
        deadlines: dict[str, float] = {}
        for operation, deadline in rtc.operation_deadlines.items():
            if operation in self._memory_pairs:
                # The register is "done" when its write half has stored
                # the new value.
                deadlines[self._memory_pairs[operation][1]] = deadline
            else:
                deadlines[operation] = deadline
        return RealTimeConstraints(
            global_deadline=rtc.global_deadline,
            operation_deadlines=deadlines,
        )


def _expand_timing(
    problem: ProblemSpec,
    pairs: Mapping[str, tuple[str, str]],
) -> tuple[ExecutionTimes, CommunicationTimes]:
    """Derive timing tables for the memory-expanded graph.

    Both halves of a memory inherit the memory's tabulated execution
    time (reading and writing the register are the same local access),
    and edges are renamed onto the halves.
    """
    if not pairs:
        return problem.exec_times, problem.comm_times
    exec_times = problem.exec_times.copy()
    for memory, (read, write) in pairs.items():
        for processor in problem.architecture.processor_names():
            duration = problem.exec_times.time_of(memory, processor)
            exec_times.set(read, processor, duration)
            exec_times.set(write, processor, duration)
    comm_times = CommunicationTimes()
    renames: dict[str, tuple[str, str]] = dict(pairs)
    for (edge, link), duration in problem.comm_times.entries().items():
        source, target = edge
        if source in renames:
            source = renames[source][0]
        if target in renames:
            target = renames[target][1]
        comm_times.set((source, target), link, duration)
    return exec_times, comm_times


def schedule_ftbar(
    problem: ProblemSpec,
    options: SchedulerOptions | None = None,
    observer: Callable[[StepRecord], None] | None = None,
) -> FTBARResult:
    """Convenience one-call API: build the scheduler and run it.

    ``observer`` (if given) is called once per macro-step with a
    :class:`StepRecord`, which is how the step-by-step walkthrough of
    section 4.3 (Figures 5 and 6) is reproduced.
    """
    return FTBARScheduler(problem, options, observer=observer).run()
