"""FTBAR — the paper's fault-tolerant scheduling heuristic (section 4)."""

from repro.core.ftbar import (
    FTBARResult,
    FTBARScheduler,
    FTBARStats,
    StepRecord,
    schedule_ftbar,
)
from repro.core.incremental import (
    MutationTracker,
    PlanCache,
    ReadySet,
    StepDelta,
)
from repro.core.minimize import DuplicationStats, StartTimeMinimizer
from repro.core.options import SchedulerOptions
from repro.core.placement import (
    LinkState,
    PlacementPlan,
    PlacementPlanner,
    PlannedComm,
    PredecessorFeed,
    commit_plan,
)
from repro.core.pressure import PressureCalculator

__all__ = [
    "DuplicationStats",
    "FTBARResult",
    "FTBARScheduler",
    "FTBARStats",
    "LinkState",
    "MutationTracker",
    "PlacementPlan",
    "PlacementPlanner",
    "PlanCache",
    "PlannedComm",
    "PredecessorFeed",
    "PressureCalculator",
    "ReadySet",
    "SchedulerOptions",
    "StartTimeMinimizer",
    "StepDelta",
    "StepRecord",
    "commit_plan",
    "schedule_ftbar",
]
