"""FTBAR — the paper's fault-tolerant scheduling heuristic (section 4)."""

from repro.core.compile import CompiledProblem
from repro.core.ftbar import (
    FTBARResult,
    FTBARScheduler,
    FTBARStats,
    StepRecord,
    schedule_ftbar,
)
from repro.core.incremental import (
    KernelPlanCache,
    MutationTracker,
    PlanCache,
    ReadySet,
    StepDelta,
)
from repro.core.kernel import CompiledReadySet, SchedulingKernel
from repro.core.minimize import DuplicationStats, StartTimeMinimizer
from repro.core.options import SchedulerOptions
from repro.core.placement import (
    LinkState,
    PlacementPlan,
    PlacementPlanner,
    PlannedComm,
    PredecessorFeed,
    commit_plan,
)
from repro.core.pressure import PressureCalculator

__all__ = [
    "CompiledProblem",
    "CompiledReadySet",
    "DuplicationStats",
    "FTBARResult",
    "FTBARScheduler",
    "FTBARStats",
    "KernelPlanCache",
    "LinkState",
    "MutationTracker",
    "PlacementPlan",
    "PlacementPlanner",
    "PlanCache",
    "PlannedComm",
    "PredecessorFeed",
    "PressureCalculator",
    "ReadySet",
    "SchedulerOptions",
    "SchedulingKernel",
    "StartTimeMinimizer",
    "StepDelta",
    "StepRecord",
    "commit_plan",
    "schedule_ftbar",
]
