"""Placement planning: earliest start times and communication slots.

This module answers the question at the heart of the heuristic: *if
operation ``o`` were placed on processor ``p`` right now, when could it
start, and which comms would that imply?*  The same planner serves

* the trial evaluations of macro-step À (schedule pressure needs
  ``S_worst``),
* the real placements of micro-step Â (the chosen plan is committed),
* the recursive ``Minimize_start_time`` procedure.

Planning never mutates the real schedule; reservations happen on a
:class:`LinkState` overlay, and a chosen plan is committed afterwards
with :func:`commit_plan`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.graphs.algorithm import AlgorithmGraph
from repro.hardware.architecture import Architecture
from repro.schedule.events import ScheduledOperation
from repro.schedule.schedule import Schedule
from repro.timing.comm_times import CommunicationTimes
from repro.timing.exec_times import ExecutionTimes

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

_EPSILON = 1e-9


class LinkState:
    """Reservation overlay on the link timelines of a schedule.

    In append mode a link's next free instant is the end of its last
    comm (real or trial); in insertion mode idle gaps between real comms
    can also be used.  Trial reservations live only in this object, so a
    fresh ``LinkState`` per evaluation gives side-effect-free planning.

    The overlay never rebuilds interval lists from the schedule: append
    mode only tracks one running free instant per link (seeded from the
    O(1) ``link_available``), and insertion mode copies the schedule's
    maintained ``link_busy_intervals`` list lazily on first reservation.
    Every link whose availability was read is recorded, so the planner
    can report the exact link dependencies of each plan.
    """

    def __init__(self, schedule: Schedule, insertion: bool = False) -> None:
        self._schedule = schedule
        self._insertion = insertion
        self._free: dict[str, float] = {}
        self._overlay: dict[str, list[tuple[float, float]]] = {}
        self._consulted: list[str] = []

    def mark(self) -> int:
        """Cursor into the consultation log (for per-plan attribution)."""
        return len(self._consulted)

    def consulted_since(self, mark: int) -> frozenset[str]:
        """The links whose availability was read since ``mark``."""
        return frozenset(self._consulted[mark:])

    def _intervals(self, link: str) -> list[tuple[float, float]]:
        intervals = self._overlay.get(link)
        if intervals is None:
            # Copy-on-write: trial reservations must not leak into the
            # schedule's maintained busy list.
            intervals = list(self._schedule.link_busy_intervals(link))
            self._overlay[link] = intervals
        return intervals

    def preview(self, link: str, ready: float, duration: float) -> tuple[float, float]:
        """The slot a reservation would take, without reserving it."""
        self._consulted.append(link)
        if not self._insertion:
            free = self._free.get(link)
            if free is None:
                free = self._schedule.link_available(link)
            start = max(ready, free)
            return start, start + duration
        intervals = self._overlay.get(link)
        if intervals is None:
            intervals = self._schedule.link_busy_intervals(link)
        cursor = max(ready, 0.0)
        for begin, end in intervals:
            if cursor + duration <= begin + _EPSILON:
                return cursor, cursor + duration
            cursor = max(cursor, end)
        return cursor, cursor + duration

    def reserve(self, link: str, ready: float, duration: float) -> tuple[float, float]:
        """Pick a slot with :meth:`preview` and mark it busy."""
        start, end = self.preview(link, ready, duration)
        if not self._insertion:
            self._free[link] = end
            return start, end
        intervals = self._intervals(link)
        position = 0
        while position < len(intervals) and intervals[position][0] < start:
            position += 1
        intervals.insert(position, (start, end))
        return start, end


@dataclass(frozen=True)
class PlannedComm:
    """A communication the plan would schedule (one hop of one route)."""

    source: str
    target: str
    source_replica: int
    link: str
    start: float
    end: float
    source_processor: str
    target_processor: str
    hop_index: int
    route: int = 0


@dataclass
class PredecessorFeed:
    """How one predecessor's data reaches the candidate replica.

    Either ``local_end`` is set (a replica of the predecessor lives on
    the candidate processor — single intra-processor communication, cost
    zero, not replicated) or ``arrivals`` lists the delivery time from
    every replica of the predecessor, with ``comms`` holding the planned
    transfers.

    Under link-failure tolerance each replica's transfer is carried over
    ``Npl + 1`` link-disjoint routes: ``arrivals`` then holds the
    *guaranteed* arrival per replica (the latest route copy — what any
    ``Npl`` link failures cannot delay past) and ``firsts`` the earliest
    copy per replica (the failure-free arrival).  At ``npl = 0`` the two
    coincide and ``firsts`` stays ``None``.
    """

    predecessor: str
    local_end: float | None = None
    arrivals: list[float] = field(default_factory=list)
    comms: list[PlannedComm] = field(default_factory=list)
    firsts: list[float] | None = None

    def earliest(self) -> float:
        """First possible arrival of this predecessor's data."""
        if self.local_end is not None:
            return self.local_end
        return min(self.arrivals if self.firsts is None else self.firsts)

    def worst_case(self, npf: int) -> float:
        """Latest arrival the replica may have to wait for, under ≤ npf failures.

        With a local replica the data is always there when the processor
        is alive.  Otherwise at least one of the ``npf + 1`` earliest
        senders survives any set of ``npf`` failures, so the worst-case
        wait is the ``(npf + 1)``-th earliest arrival (the paper's
        ``max`` over the ``Npf + 1`` replicas).  With ``npl >= 1`` each
        entry of ``arrivals`` is already that replica's guaranteed
        arrival under any ``npl`` link failures, so the same index rule
        bounds the combined processor+link worst case.
        """
        if self.local_end is not None:
            return self.local_end
        ordered = sorted(self.arrivals)
        index = min(npf, len(ordered) - 1)
        return ordered[index]


@dataclass
class PlacementPlan:
    """The full consequence of placing one replica on one processor.

    ``consulted_links`` lists every link whose availability the planner
    read while building the plan (including links it previewed but did
    not pick); the incremental engine uses it as the set-based cache
    dependency in link-insertion mode, and ``link_thresholds`` /
    ``reserved_links`` report the links the plan would actually occupy
    (the append-mode dependency).
    """

    operation: str
    processor: str
    duration: float
    processor_ready: float
    feeds: list[PredecessorFeed]
    npf: int
    consulted_links: frozenset[str] = frozenset()
    repairable: bool = False
    _feeds_earliest: float | None = field(default=None, init=False, repr=False)
    _feeds_worst: float | None = field(default=None, init=False, repr=False)

    def invalidate_feed_aggregates(self) -> None:
        """Force recomputation after an in-place arrival repair."""
        self._feeds_earliest = None
        self._feeds_worst = None

    @property
    def reserved_links(self) -> frozenset[str]:
        """The links this plan's comms would actually occupy."""
        return frozenset(
            comm.link for feed in self.feeds for comm in feed.comms
        )

    def link_thresholds(self) -> tuple[tuple[str, float], ...]:
        """Per reserved link, the start of this plan's first trial comm.

        In append mode the plan replans identically while every reserved
        link's availability stays at or below this threshold (later
        trial comms of the same plan queue behind the first, and
        previewed-but-unchosen parallel links can only get worse), so
        the incremental cache revalidates entries with one O(1)
        ``link_available`` read per link instead of evicting them.
        """
        first: dict[str, float] = {}
        for feed in self.feeds:
            for comm in feed.comms:
                current = first.get(comm.link)
                if current is None or comm.start < current:
                    first[comm.link] = comm.start
        return tuple(first.items())

    @property
    def feeds_earliest(self) -> float:
        """Latest over feeds of the first possible arrival (−inf if none).

        Feeds are fixed at planning time, so both aggregates are
        computed once; only ``processor_ready`` varies while a cached
        plan stays valid (the incremental engine refreshes it in O(1)).
        """
        if self._feeds_earliest is None:
            self._feeds_earliest = max(
                (feed.earliest() for feed in self.feeds), default=-math.inf
            )
        return self._feeds_earliest

    @property
    def feeds_worst(self) -> float:
        """Latest over feeds of the worst-case arrival (−inf if none)."""
        if self._feeds_worst is None:
            self._feeds_worst = max(
                (feed.worst_case(self.npf) for feed in self.feeds),
                default=-math.inf,
            )
        return self._feeds_worst

    @property
    def s_best(self) -> float:
        """Earliest start (first complete input set — paper's S_best)."""
        return max(self.processor_ready, self.feeds_earliest)

    @property
    def s_worst(self) -> float:
        """Earliest start in the worst failure case (paper's S_worst)."""
        return max(self.processor_ready, self.feeds_worst)

    def critical_feed(self) -> PredecessorFeed | None:
        """The feed that determines ``s_worst`` (the LIP's feed).

        Ties are broken toward the lexicographically smallest
        predecessor name so the heuristic stays deterministic.  Returns
        ``None`` for source operations.
        """
        if not self.feeds:
            return None
        return max(
            self.feeds,
            key=lambda f: (f.worst_case(self.npf), _reverse_name_key(f.predecessor)),
        )


class _ReverseName(str):
    """Order-inverted string so ``max`` breaks ties toward small names."""

    def __lt__(self, other):  # type: ignore[override]
        return str.__gt__(self, other)

    def __gt__(self, other):  # type: ignore[override]
        return str.__lt__(self, other)


def _reverse_name_key(name: str) -> _ReverseName:
    return _ReverseName(name)


class PlacementPlanner:
    """Plans replica placements against the current schedule state."""

    def __init__(
        self,
        algorithm: AlgorithmGraph,
        architecture: Architecture,
        exec_times: ExecutionTimes,
        comm_times: CommunicationTimes,
        npf: int,
        link_insertion: bool = False,
        npl: int = 0,
    ) -> None:
        self._algorithm = algorithm
        self._architecture = architecture
        self._exec_times = exec_times
        self._comm_times = comm_times
        self._npf = npf
        self._npl = npl
        self._link_insertion = link_insertion
        self._plan_simple = False

    @property
    def link_insertion(self) -> bool:
        """True when comms may be inserted into idle link gaps."""
        return self._link_insertion

    def fresh_link_state(self, schedule: Schedule) -> LinkState:
        """A side-effect-free reservation overlay for trial planning."""
        return LinkState(schedule, insertion=self._link_insertion)

    def plan(
        self,
        operation: str,
        processor: str,
        schedule: Schedule,
        link_state: LinkState | None = None,
    ) -> PlacementPlan | None:
        """Plan placing the next replica of ``operation`` on ``processor``.

        Returns ``None`` when the pair is forbidden (``Exe = inf``) or
        the processor already hosts a replica of the operation.  All
        predecessors must already have at least one replica scheduled
        (guaranteed by the list-scheduling candidate rule).
        """
        duration = self._exec_times.time_of(operation, processor)
        if duration == float("inf"):
            return None
        if schedule.replica_on(operation, processor) is not None:
            return None
        state = link_state if link_state is not None else self.fresh_link_state(schedule)
        mark = state.mark()
        # ``_plan_simple`` stays True while every transfer reserves the
        # unique direct link of its processor pair in one hop — the
        # condition under which a cached plan can be *repaired* per link
        # instead of replanned (plan() is not re-entrant).
        self._plan_simple = not self._link_insertion
        feeds: list[PredecessorFeed] = []
        for predecessor in self._algorithm.predecessors(operation):
            feeds.append(
                self._plan_feed(predecessor, operation, processor, schedule, state)
            )
        return PlacementPlan(
            operation=operation,
            processor=processor,
            duration=duration,
            processor_ready=schedule.processor_available(processor),
            feeds=feeds,
            npf=self._npf,
            consulted_links=state.consulted_since(mark),
            repairable=self._plan_simple,
        )

    def _plan_feed(
        self,
        predecessor: str,
        operation: str,
        processor: str,
        schedule: Schedule,
        state: LinkState,
    ) -> PredecessorFeed:
        local = schedule.replica_on(predecessor, processor)
        if local is not None:
            # §4.1 first case: one intra-processor communication, cost 0,
            # the remote replicas do not send at all.
            return PredecessorFeed(predecessor, local_end=local.end)
        feed = PredecessorFeed(predecessor)
        if self._npl:
            feed.firsts = []
        edge = (predecessor, operation)
        replicas = schedule.live_replicas(predecessor)
        # Relay-avoidance preference (npl >= 1): backup routes should not
        # relay through the hosts of the predecessor's other replicas,
        # otherwise one crash can silence a sender *and* another
        # sender's relay at once, voiding the combined npf+npl budget.
        sender_hosts = (
            frozenset(r.processor for r in replicas) if self._npl else frozenset()
        )
        for replica in replicas:
            first, guaranteed, comms = self._plan_transfer(
                edge, replica, processor, state, sender_hosts
            )
            feed.arrivals.append(guaranteed)
            if feed.firsts is not None:
                feed.firsts.append(first)
            feed.comms.extend(comms)
        if not feed.arrivals:
            raise ValueError(
                f"predecessor {predecessor!r} of {operation!r} has no replica; "
                f"candidate rule violated"
            )
        return feed

    def _plan_transfer(
        self,
        edge: tuple[str, str],
        producer: ScheduledOperation,
        processor: str,
        state: LinkState,
        sender_hosts: frozenset[str] = frozenset(),
    ) -> tuple[float, float, list[PlannedComm]]:
        """Plan the comms carrying ``edge`` from one replica to ``processor``.

        Returns ``(first, guaranteed, comms)``: the earliest arrival of
        any route copy (the failure-free delivery) and the latest (what
        no ``Npl`` link failures can delay past).  At ``npl = 0`` both
        are the end of the single chain.
        """
        if self._npl:
            return self._plan_replicated_transfer(
                edge, producer, processor, state, sender_hosts
            )
        direct = self._architecture.links_between(producer.processor, processor)
        if direct:
            if len(direct) != 1:
                self._plan_simple = False
            best: tuple[float, float, str] | None = None
            for link in direct:
                duration = self._comm_times.time_of(edge, link.name)
                start, end = state.preview(link.name, producer.end, duration)
                if best is None or (end, link.name) < (best[1], best[2]):
                    best = (start, end, link.name)
            start, end, link_name = best
            state.reserve(link_name, producer.end, end - start)
            comm = PlannedComm(
                source=edge[0],
                target=edge[1],
                source_replica=producer.replica,
                link=link_name,
                start=start,
                end=end,
                source_processor=producer.processor,
                target_processor=processor,
                hop_index=0,
            )
            return end, end, [comm]
        # Multi-hop route: store-and-forward over the shortest hop path.
        self._plan_simple = False
        hops = self._architecture.route_hops(producer.processor, processor)
        ready = producer.end
        comms: list[PlannedComm] = []
        for index, (origin, link, relay) in enumerate(hops):
            duration = self._comm_times.time_of(edge, link.name)
            start, end = state.reserve(link.name, ready, duration)
            comms.append(
                PlannedComm(
                    source=edge[0],
                    target=edge[1],
                    source_replica=producer.replica,
                    link=link.name,
                    start=start,
                    end=end,
                    source_processor=origin,
                    target_processor=relay,
                    hop_index=index,
                )
            )
            ready = end
        return ready, ready, comms

    def _plan_replicated_transfer(
        self,
        edge: tuple[str, str],
        producer: ScheduledOperation,
        processor: str,
        state: LinkState,
        sender_hosts: frozenset[str] = frozenset(),
    ) -> tuple[float, float, list[PlannedComm]]:
        """One copy of the transfer per link-disjoint route (``Npl + 1``).

        Any ``Npl`` broken links leave at least one copy's route fully
        intact, so the data is guaranteed by the latest copy's delivery;
        in the failure-free run the earliest copy wins (the simulator
        starts consumers on their first delivered arrival).  Routes come
        from the architecture's :class:`~repro.hardware.routing
        .RoutePlanner` — relays avoid the other sender replicas' hosts
        when possible — and raise a clear error when the topology cannot
        provide ``Npl + 1`` disjoint routes.
        """
        self._plan_simple = False
        routes = self._architecture.route_planner.disjoint_routes(
            producer.processor,
            processor,
            self._npl + 1,
            avoid=sender_hosts - {producer.processor},
        )
        comms: list[PlannedComm] = []
        first = math.inf
        guaranteed = -math.inf
        for route_index, hops in enumerate(routes):
            ready = producer.end
            for index, (origin, link, relay) in enumerate(hops):
                duration = self._comm_times.time_of(edge, link.name)
                start, end = state.reserve(link.name, ready, duration)
                comms.append(
                    PlannedComm(
                        source=edge[0],
                        target=edge[1],
                        source_replica=producer.replica,
                        link=link.name,
                        start=start,
                        end=end,
                        source_processor=origin,
                        target_processor=relay,
                        hop_index=index,
                        route=route_index,
                    )
                )
                ready = end
            first = min(first, ready)
            guaranteed = max(guaranteed, ready)
        return first, guaranteed, comms


def commit_plan(
    plan: PlacementPlan,
    schedule: Schedule,
    start: float | None = None,
    duplicated: bool = False,
) -> ScheduledOperation:
    """Write a placement plan into the schedule.

    The replica starts at ``start`` (default: the plan's ``S_best``, per
    micro-step Ð) and all planned comms are placed with the new replica's
    index as their destination.

    The compiled kernel's ``SchedulingKernel._commit`` mirrors this
    function over flat hop tuples (same placement order, same duration
    re-derivation); change the two together.
    """
    event = schedule.place_operation(
        plan.operation,
        plan.processor,
        plan.s_best if start is None else start,
        plan.duration,
        duplicated=duplicated,
    )
    for feed in plan.feeds:
        for comm in feed.comms:
            schedule.place_comm(
                source=comm.source,
                target=comm.target,
                source_replica=comm.source_replica,
                target_replica=event.replica,
                link=comm.link,
                start=comm.start,
                duration=comm.end - comm.start,
                source_processor=comm.source_processor,
                target_processor=comm.target_processor,
                hop_index=comm.hop_index,
                route=comm.route,
            )
    return event
