"""Topology automorphisms for the compiled kernel's candidate pruning.

On the regular interconnects the paper benchmarks (fully connected,
bus, ring, star) most of a macro-step's candidate evaluations are
isomorphic: while the partial schedule still looks the same from
processor ``p`` and from ``g(p)`` for an automorphism ``g`` of the
*problem* (not just the graph — execution and communication tables and
the route planner's choices must commute with ``g`` too), the pressure
``σ(o, p)`` and ``σ(o, g(p))`` are bit-identical, so the kernel can
evaluate one representative per orbit and copy its σ to the others
(see ``KernelScheduler._orbit_reps``).

This module computes the *static* half of that argument once per
compiled problem: candidate processor permutations read off the
topology shape (transpositions for the generic/orbit-refinement case,
rotations and reflections for rings), each **verified** — never
assumed — against

* the induced link permutation (endpoint sets must map to endpoint
  sets, bijectively),
* the execution table (``Exe(o, p) == Exe(o, g(p))``, ``inf``
  included, so distribution constraints are preserved),
* the communication table (every edge's duration is invariant under
  the link permutation),
* route equivariance: the planner's chosen route from ``a`` to ``b``
  must map hop-by-hop onto its choice for ``g(a) → g(b)`` — this is
  what makes the *tie-breaks* inside multi-hop planning commute with
  ``g``, not just the route lengths,
* for ``npl >= 1``, the same equivariance for every ``npl + 1``-route
  disjoint set over every avoidance subset (enumerable because the
  check is gated to small processor counts).

Anything that breaks bit-exactness wholesale — memory pins, parallel
direct links (whose min-end tie-break reads link *names*) — disables
the group entirely.  The *dynamic* half (is the partial schedule still
invariant under ``g``?) is the kernel's per-sweep aliveness check.
"""

from __future__ import annotations

from dataclasses import dataclass

#: With link replication the verification enumerates avoidance subsets,
#: which is exponential in the processor count; past this size the
#: group is simply not built.
_NPL_VERIFY_MAX_PROCS = 6


@dataclass(frozen=True)
class Generator:
    """One verified automorphism: a processor and induced link permutation."""

    proc: tuple[int, ...]
    link: tuple[int, ...]


@dataclass(frozen=True)
class KernelSymmetry:
    """The verified generators of one compiled problem."""

    generators: tuple[Generator, ...]
    n_procs: int

    def orbit_count(self) -> int:
        """Number of processor orbits under the full verified group."""
        return len(set(orbit_representatives(self.generators, self.n_procs)))


def orbit_representatives(
    generators: tuple[Generator, ...] | list[Generator], n_procs: int
) -> list[int]:
    """``rep[p]`` = smallest processor id in ``p``'s orbit.

    Plain union-find over the generator edges ``p — g(p)``; the
    smallest-id representative is what makes pruning pick the same
    processor the exhaustive argmin/argmax tie-breaks would (ties
    resolve to the lowest id, and every orbit member carries an equal
    value).
    """
    parent = list(range(n_procs))

    def find(p: int) -> int:
        while parent[p] != p:
            parent[p] = parent[parent[p]]
            p = parent[p]
        return p

    for generator in generators:
        for p, q in enumerate(generator.proc):
            a, b = find(p), find(q)
            if a != b:
                if b < a:
                    a, b = b, a
                parent[b] = a
    # Path-compress to the minimum id of each class.
    rep = [0] * n_procs
    for p in range(n_procs):
        root = find(p)
        rep[p] = root
    return rep


def _induced_link_perm(compiled, proc_perm: tuple[int, ...]) -> tuple[int, ...] | None:
    """Link permutation induced by a processor permutation, or ``None``.

    A link maps to the (unique) link whose endpoint set is the image of
    its own; if some image set matches no link — or two links collide —
    the candidate is not an automorphism of the interconnect.
    """
    proc_names = compiled.proc_names
    proc_ids = compiled.proc_ids
    by_endpoints: dict[frozenset[str], int] = {}
    links = list(compiled.architecture.links())
    for link in links:
        endpoints = frozenset(link.endpoints)
        if endpoints in by_endpoints:
            return None  # parallel links: name-based tie-breaks, no pruning
        by_endpoints[endpoints] = compiled.link_ids[link.name]
    perm = [-1] * compiled.n_links
    for link in links:
        image = frozenset(
            proc_names[proc_perm[proc_ids[endpoint]]]
            for endpoint in link.endpoints
        )
        target = by_endpoints.get(image)
        if target is None:
            return None
        perm[compiled.link_ids[link.name]] = target
    if sorted(perm) != list(range(compiled.n_links)):
        return None
    return tuple(perm)


def _exe_invariant(compiled, proc_perm: tuple[int, ...]) -> bool:
    exe = compiled.exe
    n_procs = compiled.n_procs
    for o in range(compiled.n_ops):
        base = o * n_procs
        for p in range(n_procs):
            if exe[base + p] != exe[base + proc_perm[p]]:
                return False
    return True


def _comm_invariant(compiled, link_perm: tuple[int, ...]) -> bool:
    for row in compiled.comm_rows.values():
        for l, duration in enumerate(row):
            if duration != row[link_perm[l]]:
                return False
    return True


def _routes_equivariant(
    compiled, proc_perm: tuple[int, ...], link_perm: tuple[int, ...]
) -> bool:
    """The route planner's choices commute with the permutation."""
    n_procs = compiled.n_procs
    proc_names = compiled.proc_names
    proc_ids = compiled.proc_ids

    def map_hops(hops):
        return tuple(
            (
                proc_names[proc_perm[proc_ids[origin]]],
                link_perm[link_id],
                proc_names[proc_perm[proc_ids[relay]]],
            )
            for origin, link_id, relay in hops
        )

    for a in range(n_procs):
        for b in range(n_procs):
            if a == b:
                continue
            image = map_hops(compiled.route_hops(a, b))
            if image != compiled.route_hops(proc_perm[a], proc_perm[b]):
                return False
    if compiled.npl < 1:
        return True
    # Disjoint route sets: enumerate every avoidance subset the kernel
    # could ever pass (subsets of the other processors).  Gated by
    # _NPL_VERIFY_MAX_PROCS at build time.
    for a in range(n_procs):
        for b in range(n_procs):
            if a == b:
                continue
            others = [p for p in range(n_procs) if p != a and p != b]
            for mask in range(1 << len(others)):
                avoid = frozenset(
                    proc_names[p]
                    for i, p in enumerate(others)
                    if mask & (1 << i)
                )
                image_avoid = frozenset(
                    proc_names[proc_perm[proc_ids[name]]] for name in avoid
                )
                try:
                    routes = compiled.disjoint_routes(
                        proc_names[a], proc_names[b], avoid
                    )
                except Exception:
                    try:
                        compiled.disjoint_routes(
                            proc_names[proc_perm[a]],
                            proc_names[proc_perm[b]],
                            image_avoid,
                        )
                    except Exception:
                        continue  # both infeasible: equivariant
                    return False
                try:
                    image_routes = compiled.disjoint_routes(
                        proc_names[proc_perm[a]],
                        proc_names[proc_perm[b]],
                        image_avoid,
                    )
                except Exception:
                    return False
                if tuple(map_hops(r) for r in routes) != image_routes:
                    return False
    return True


def _compose(p: tuple[int, ...], q: tuple[int, ...]) -> tuple[int, ...]:
    return tuple(p[x] for x in q)


def build_symmetry(compiled) -> KernelSymmetry:
    """Detect and verify the automorphism generators of one problem.

    Candidate permutations: every transposition (generic orbit
    refinement — enough to generate the symmetric group on fully
    connected and bus interconnects and the leaf group of a star), plus
    the rotations and the reflection of a cycle (rings, where single
    transpositions are not automorphisms).  Each candidate is verified
    in full; an empty generator tuple means "no usable symmetry".
    """
    n_procs = compiled.n_procs
    if compiled.pins or n_procs < 2:
        return KernelSymmetry((), n_procs)
    if compiled.npl >= 1 and n_procs > _NPL_VERIFY_MAX_PROCS:
        return KernelSymmetry((), n_procs)
    candidates: list[tuple[int, ...]] = []
    for i in range(n_procs):
        for j in range(i + 1, n_procs):
            perm = list(range(n_procs))
            perm[i], perm[j] = j, i
            candidates.append(tuple(perm))
    rotation = tuple((p + 1) % n_procs for p in range(n_procs))
    reflection = tuple((n_procs - p) % n_procs for p in range(n_procs))
    candidates.append(rotation)
    if reflection not in candidates:
        candidates.append(reflection)
    generators: list[Generator] = []
    for proc_perm in candidates:
        link_perm = _induced_link_perm(compiled, proc_perm)
        if link_perm is None:
            continue
        if not _exe_invariant(compiled, proc_perm):
            continue
        if not _comm_invariant(compiled, link_perm):
            continue
        if not _routes_equivariant(compiled, proc_perm, link_perm):
            continue
        generators.append(Generator(proc_perm, link_perm))
    return KernelSymmetry(tuple(generators), n_procs)
