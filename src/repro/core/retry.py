"""Bounded retry with decorrelated-jitter backoff for transient I/O.

Shared-storage campaigns live on filesystems that hiccup: NFS leases,
overloaded disks, transient ``EIO``/``EAGAIN`` — and the fault-injection
harness (:mod:`repro.faultinject`) manufactures exactly those errors on
demand.  :func:`retry_io` is the one retry policy every I/O-adjacent
path uses (store appends, cache writes, claim files, merges), so
backoff behavior is consistent and testable in one place.

The backoff is *decorrelated jitter* (the AWS Architecture Blog
variant): each sleep is drawn uniformly from ``[base, previous * 3]``,
capped — spreading concurrent retriers apart instead of letting them
thundering-herd on synchronized exponential steps.
"""

from __future__ import annotations

import random
import time
from typing import Callable, TypeVar

from repro import obs

T = TypeVar("T")


def decorrelated_jitter(
    previous_s: float, base_s: float, cap_s: float, rng: random.Random
) -> float:
    """The next backoff delay after sleeping ``previous_s``."""
    return min(cap_s, rng.uniform(base_s, previous_s * 3))


def retry_io(
    operation: Callable[[], T],
    *,
    attempts: int = 4,
    base_s: float = 0.01,
    cap_s: float = 0.25,
    retry_on: tuple[type[BaseException], ...] = (OSError,),
    should_retry: Callable[[BaseException], bool] | None = None,
    rng: random.Random | None = None,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> T:
    """Run ``operation``, retrying transient failures with jittered backoff.

    ``attempts`` bounds total tries; the final failure re-raises.
    ``should_retry`` vetoes retries for errors that are *answers*, not
    transients (e.g. ``FileExistsError`` losing a claim race, or
    ``ENOSPC`` — a full disk does not empty itself in 250 ms).
    ``sleep``/``rng`` are injectable for deterministic tests.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    rng = rng if rng is not None else random.Random()
    delay = base_s
    for attempt in range(1, attempts + 1):
        try:
            return operation()
        except retry_on as error:
            if should_retry is not None and not should_retry(error):
                raise
            if attempt == attempts:
                obs.metrics.inc("retry.exhausted")
                raise
            obs.metrics.inc("retry.attempts")
            if on_retry is not None:
                on_retry(attempt, error)
            sleep(delay)
            delay = decorrelated_jitter(delay, base_s, cap_s, rng)
    raise AssertionError("unreachable")  # pragma: no cover
