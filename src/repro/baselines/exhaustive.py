"""Exhaustive best-assignment scheduling for tiny problems.

Finding the best fault-tolerant schedule is NP-hard (the paper cites
Garey & Johnson), which is why FTBAR is a heuristic.  For *tiny*
problems, however, the replica-assignment space can be enumerated: this
module tries every way of assigning ``Npf + 1`` processors to every
operation, builds each schedule with the same placement machinery FTBAR
uses (operations in canonical topological order, replicas started at
their earliest date, comms on their cheapest links), and keeps the best.

The result is a strong reference point for the optimality-gap
experiment (E10 in DESIGN.md).  Two honest caveats, documented here and
in the result object:

* the canonical operation order is fixed, so this is the optimum over
  *assignments*, not over all static schedules;
* FTBAR's LIP duplication can add replicas beyond ``Npf + 1``, which
  the enumeration does not, so the heuristic can occasionally *beat*
  this reference — a negative gap is meaningful, not a bug.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

from repro.exceptions import InfeasibleReplicationError, SchedulingError
from repro.core.placement import PlacementPlanner, commit_plan
from repro.problem import ProblemSpec
from repro.schedule.schedule import Schedule


@dataclass
class ExhaustiveResult:
    """Best assignment found by the enumeration."""

    schedule: Schedule
    makespan: float
    assignments_tried: int
    assignments_total: int

    @property
    def exhaustive(self) -> bool:
        """True when the whole assignment space was enumerated."""
        return self.assignments_tried == self.assignments_total


class ExhaustiveScheduler:
    """Enumerates every ``Npf + 1``-processor assignment per operation.

    ``max_assignments`` bounds the search (the space is
    ``C(P, Npf+1) ** N``); exceeding it raises
    :class:`~repro.exceptions.SchedulingError` so callers never silently
    get a partial optimum.
    """

    def __init__(self, problem: ProblemSpec, max_assignments: int = 500_000) -> None:
        if problem.algorithm.memory_operations():
            raise SchedulingError(
                "the exhaustive baseline does not support memory operations"
            )
        problem.validate()
        self._problem = problem
        self._algorithm = problem.algorithm
        self._architecture = problem.architecture
        self._npf = problem.npf
        self._planner = PlacementPlanner(
            problem.algorithm,
            problem.architecture,
            problem.exec_times,
            problem.comm_times,
            problem.npf,
        )
        self._order = self._algorithm.topological_order()
        self._choices = self._assignment_choices()
        self._total = math.prod(len(c) for c in self._choices.values())
        if self._total > max_assignments:
            raise SchedulingError(
                f"assignment space has {self._total} points, more than the "
                f"bound {max_assignments}; use FTBAR for problems this big"
            )

    def _assignment_choices(self) -> dict[str, list[tuple[str, ...]]]:
        replicas = self._npf + 1
        choices: dict[str, list[tuple[str, ...]]] = {}
        for operation in self._order:
            allowed = self._problem.exec_times.allowed_processors(
                operation, self._architecture.processor_names()
            )
            if len(allowed) < replicas:
                raise InfeasibleReplicationError(
                    f"operation {operation!r} can run on {len(allowed)} "
                    f"processor(s), {replicas} required"
                )
            choices[operation] = list(itertools.combinations(allowed, replicas))
        return choices

    def run(self) -> ExhaustiveResult:
        """Enumerate every assignment; return the best schedule found."""
        best_schedule: Schedule | None = None
        best_makespan = math.inf
        tried = 0
        per_op_choices = [self._choices[op] for op in self._order]
        for assignment in itertools.product(*per_op_choices):
            tried += 1
            schedule = self._build(dict(zip(self._order, assignment)), best_makespan)
            if schedule is None:
                continue
            makespan = schedule.makespan()
            if makespan < best_makespan:
                best_makespan = makespan
                best_schedule = schedule
        if best_schedule is None:  # pragma: no cover - defensive
            raise SchedulingError("no feasible assignment found")
        return ExhaustiveResult(
            schedule=best_schedule,
            makespan=best_makespan,
            assignments_tried=tried,
            assignments_total=self._total,
        )

    def _build(
        self,
        assignment: dict[str, tuple[str, ...]],
        prune_above: float,
    ) -> Schedule | None:
        """Schedule one assignment; None when pruned by the current best."""
        schedule = Schedule(
            processors=self._architecture.processor_names(),
            links=self._architecture.link_names(),
            npf=self._npf,
            name=f"{self._problem.name}-exhaustive",
        )
        for operation in self._order:
            for processor in assignment[operation]:
                plan = self._planner.plan(operation, processor, schedule)
                if plan is None:  # pragma: no cover - choices are pre-filtered
                    return None
                event = commit_plan(plan, schedule)
                if event.end >= prune_above:
                    return None
        return schedule


def schedule_exhaustive(
    problem: ProblemSpec, max_assignments: int = 500_000
) -> ExhaustiveResult:
    """One-call API for the exhaustive best-assignment search."""
    return ExhaustiveScheduler(problem, max_assignments).run()
