"""Non-fault-tolerant baseline schedulers.

Section 6.2 computes the fault-tolerance overhead against the
*non fault-tolerant schedule length* (non-FTSL) "produced by FTBAR with
``Npf = 0``" — that is exactly :func:`schedule_non_fault_tolerant`.

Section 4.4 additionally quotes the schedule length of "a basic
scheduling heuristic (for instance the one of SynDEx)" on the worked
example; :func:`schedule_basic` is that variant — the same pressure-based
list scheduling with neither replication nor LIP duplication.

Both baselines delegate to :class:`~repro.core.ftbar.FTBARScheduler`, so
they run on the same incremental engine (ready-set maintenance, dirty-set
pressure cache, indexed schedule state) as the fault-tolerant runs they
are compared against; pass ``SchedulerOptions(incremental=False)`` to
time the legacy full-recompute path instead.
"""

from __future__ import annotations

from dataclasses import replace as dataclass_replace

from repro.core.ftbar import FTBARResult, schedule_ftbar
from repro.core.options import SchedulerOptions
from repro.problem import ProblemSpec


def _with_npf_zero(problem: ProblemSpec, name_suffix: str) -> ProblemSpec:
    return ProblemSpec(
        algorithm=problem.algorithm,
        architecture=problem.architecture,
        exec_times=problem.exec_times,
        comm_times=problem.comm_times,
        npf=0,
        rtc=problem.rtc,
        name=f"{problem.name}{name_suffix}",
    )


def schedule_non_fault_tolerant(
    problem: ProblemSpec,
    options: SchedulerOptions | None = None,
) -> FTBARResult:
    """FTBAR with ``Npf = 0``: the paper's non-FTSL reference.

    Keeps every other option (including LIP duplication) identical to
    the fault-tolerant run so the overhead isolates the replication
    cost.
    """
    return schedule_ftbar(_with_npf_zero(problem, "-nonft"), options)


def schedule_basic(
    problem: ProblemSpec,
    options: SchedulerOptions | None = None,
) -> FTBARResult:
    """SynDEx-like basic heuristic: no replication, no duplication.

    This is the reference quoted in section 4.4 for the worked example
    (schedule length 10.7 on the authors' run).
    """
    base = options or SchedulerOptions()
    return schedule_ftbar(
        _with_npf_zero(problem, "-basic"),
        dataclass_replace(base, duplication=False),
    )
