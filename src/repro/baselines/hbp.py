"""HBP — Height-Based Partitioning (Hashimoto, Tsuchiya, Kikuno 2002).

The paper compares FTBAR against HBP, "the closest related work": a
fault-tolerant scheduling heuristic that duplicates every task (exactly
two replicas, tolerating one processor failure) and schedules tasks
level by level, the levels being the *heights* of the task graph.

This re-implementation follows the published description:

* tasks are partitioned by height (longest path to a sink) and processed
  from the highest group down, which respects precedence;
* inside a group, tasks go in decreasing average execution time;
* each task's two replicas are placed by enumerating every **ordered
  processor pair** ``(p1, p2)``, ``p1 ≠ p2``, and keeping the pair that
  minimises the later completion of the two replicas — this exhaustive
  pair search is why "HBP investigates more possibilities than FTBAR
  when selecting the processor" (section 6.2), and why it is slower;
* replicas exchange data exactly like FTBAR replicas do (every replica
  of a predecessor sends to every replica of the task unless co-located),
  so the produced schedules are validated by the same invariants.

HBP assumes a homogeneous architecture; the implementation accepts any
tables but the comparison harness generates homogeneous ones, matching
the downgrade the paper applies to FTBAR for fairness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.exceptions import InfeasibleReplicationError, SchedulingError
from repro.core.compile import CompiledProblem
from repro.core.incremental import MutationTracker, PlanCache
from repro.core.kernel import SchedulingKernel
from repro.core.placement import PlacementPlanner, commit_plan
from repro.problem import ProblemSpec
from repro.schedule.schedule import Schedule
from repro.timing.constraints import RtcReport


#: Number of replicas of every task in HBP (tolerates exactly 1 failure).
HBP_REPLICAS = 2


@dataclass
class HBPStats:
    """Run statistics, used by the complexity experiment (E6).

    ``pair_evaluations`` counts *computed* pair costs; the incremental
    pair-cost cache (the same :class:`~repro.core.incremental.PlanCache`
    machinery the FTBAR engine uses, so the E6 runtime comparison stays
    apples-to-apples) serves the rest as ``pair_cache_hits``.
    """

    steps: int = 0
    pair_evaluations: int = 0
    pair_cache_hits: int = 0
    wall_time_s: float = 0.0


@dataclass
class HBPResult:
    """Outcome of an HBP run: schedule, ``Rtc`` verdict and statistics."""

    schedule: Schedule
    rtc_report: RtcReport
    stats: HBPStats = field(default_factory=HBPStats)

    @property
    def makespan(self) -> float:
        """Completion date of the produced schedule."""
        return self.schedule.makespan()


class HBPScheduler:
    """Height-based partitioning scheduler with task duplication.

    ``compiled`` (default) runs the ordered-pair cost search on the
    same :class:`~repro.core.kernel.SchedulingKernel` as FTBAR —
    bit-identical schedules and pair counters, so the E6 runtime
    comparison measures the heuristics, not the data structures.
    ``compiled=False`` keeps the object path.
    """

    def __init__(self, problem: ProblemSpec, compiled: bool = True) -> None:
        if problem.npf != 1:
            raise SchedulingError(
                f"HBP duplicates tasks exactly once and tolerates exactly one "
                f"failure; got npf={problem.npf}"
            )
        if problem.algorithm.memory_operations():
            raise SchedulingError(
                "the HBP baseline does not support memory operations"
            )
        problem.validate()
        self._problem = problem
        self._algorithm = problem.algorithm
        self._architecture = problem.architecture
        self._exec_times = problem.exec_times
        self._comm_times = problem.comm_times
        self._planner = PlacementPlanner(
            self._algorithm,
            self._architecture,
            self._exec_times,
            self._comm_times,
            npf=HBP_REPLICAS - 1,
        )
        self._cache = PlanCache()
        self._compiled: CompiledProblem | None = None
        if compiled:
            self._compiled = CompiledProblem(
                self._algorithm,
                self._architecture,
                self._exec_times,
                self._comm_times,
                HBP_REPLICAS - 1,
                0,
            )

    def run(self) -> HBPResult:
        """Schedule the height groups from the highest down.

        Inside one group the choice is dynamic: every still-unscheduled
        task of the group is evaluated on every ordered processor pair
        and the globally cheapest (task, pair) is committed — the
        exhaustive search that makes HBP investigate ``|group| × P²``
        possibilities per selection where FTBAR investigates
        ``|candidates| × P``.
        """
        started = time.perf_counter()
        stats = HBPStats()
        schedule = Schedule(
            processors=self._architecture.processor_names(),
            links=self._architecture.link_names(),
            npf=HBP_REPLICAS - 1,
            name=f"{self._problem.name}-hbp",
        )
        if self._compiled is not None:
            self._run_compiled(schedule, stats)
        else:
            self._run_object(schedule, stats)
        stats.wall_time_s = time.perf_counter() - started
        rtc_report = self._problem.rtc.check(schedule)
        return HBPResult(schedule=schedule, rtc_report=rtc_report, stats=stats)

    def _run_object(self, schedule: Schedule, stats: HBPStats) -> None:
        self._cache = PlanCache()
        tracker = MutationTracker(schedule)
        for group in self._height_groups():
            remaining = list(group)
            while remaining:
                stats.steps += 1
                task, first, second = self._select(remaining, schedule, stats)
                tracker.begin()
                self._commit_pair(task, first, second, schedule)
                self._cache.drop_operation(task)
                self._cache.invalidate(tracker.delta())
                remaining.remove(task)
        stats.pair_cache_hits = self._cache.hits

    def _run_compiled(self, schedule: Schedule, stats: HBPStats) -> None:
        """The same group loop over the compiled kernel's pair costs."""
        compiled = self._compiled
        kernel = SchedulingKernel(compiled, schedule, vector=False)
        op_ids = compiled.op_ids
        n_procs = compiled.n_procs
        pair_span = n_procs * n_procs
        for group in self._height_groups():
            remaining = [op_ids[task] for task in group]
            while remaining:
                stats.steps += 1
                task, first, second = self._select_compiled(
                    remaining, kernel
                )
                kernel.begin_step()
                kernel.commit_pair(task, first, second)
                kernel.forget_range(
                    task * pair_span, (task + 1) * pair_span
                )
                kernel.invalidate_step()
                remaining.remove(task)
        kernel.materialize()
        stats.pair_evaluations = kernel.misses
        stats.pair_cache_hits = kernel.hits

    def _select_compiled(
        self, tasks: list[int], kernel: SchedulingKernel
    ) -> tuple[int, int, int]:
        """The cheapest (task, pair) — `_select` over dense ids."""
        compiled = self._compiled
        best: tuple[float, int, int, int] | None = None
        for task in tasks:
            processors = compiled.allowed[task]
            if len(processors) < HBP_REPLICAS:
                raise InfeasibleReplicationError(
                    f"task {compiled.op_names[task]!r} can run on "
                    f"{len(processors)} processor(s), {HBP_REPLICAS} "
                    f"required by HBP"
                )
            for first in processors:
                for second in processors:
                    if first == second:
                        continue
                    cost = kernel.pair_cost(task, first, second)
                    if cost is None:
                        continue
                    key = (cost, task, first, second)
                    if best is None or key < best:
                        best = key
        if best is None:
            raise InfeasibleReplicationError(
                f"no feasible processor pair among tasks "
                f"{[self._compiled.op_names[t] for t in tasks]!r}"
            )
        return best[1], best[2], best[3]

    # ------------------------------------------------------------------
    # ordering
    # ------------------------------------------------------------------
    def _height_groups(self) -> list[list[str]]:
        """Tasks partitioned by height, highest group first.

        Processing groups in decreasing height respects precedence:
        every edge goes from a strictly higher task to a lower one.
        """
        heights = self._algorithm.heights()
        groups: dict[int, list[str]] = {}
        for task in self._algorithm.operation_names():
            groups.setdefault(heights[task], []).append(task)
        return [sorted(groups[h]) for h in sorted(groups, reverse=True)]

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def _select(
        self, tasks: list[str], schedule: Schedule, stats: HBPStats
    ) -> tuple[str, str, str]:
        """The cheapest (task, processor pair) among the ready tasks."""
        best: tuple[float, str, str, str] | None = None
        for task in tasks:
            processors = self._exec_times.allowed_processors(
                task, self._architecture.processor_names()
            )
            if len(processors) < HBP_REPLICAS:
                raise InfeasibleReplicationError(
                    f"task {task!r} can run on {len(processors)} processor(s), "
                    f"{HBP_REPLICAS} required by HBP"
                )
            for first in processors:
                for second in processors:
                    if first == second:
                        continue
                    cost = self._pair_cost(task, first, second, schedule, stats)
                    if cost is None:
                        continue
                    key = (cost, task, first, second)
                    if best is None or key < best:
                        best = key
        if best is None:
            raise InfeasibleReplicationError(
                f"no feasible processor pair among tasks {tasks!r}"
            )
        return best[1], best[2], best[3]

    def _commit_pair(
        self, task: str, first: str, second: str, schedule: Schedule
    ) -> None:
        for processor in (first, second):
            plan = self._planner.plan(task, processor, schedule)
            if plan is None:  # pragma: no cover - defensive
                raise SchedulingError(
                    f"placement of {task!r} on {processor!r} became infeasible"
                )
            commit_plan(plan, schedule)

    def _pair_cost(
        self,
        task: str,
        first: str,
        second: str,
        schedule: Schedule,
        stats: HBPStats,
    ) -> float | None:
        """Later completion time of the two replicas, or None if infeasible.

        Both replicas are planned against one shared link-state overlay
        so their feeding comms contend for the same links, exactly as
        they will once committed.

        Costs are cached per ``(task, first, second)`` with the same
        dirty-set machinery as the FTBAR engine: an entry's feeds stay
        valid while its predecessors' replica sets are untouched and no
        reserved link's availability has grown past the first planned
        start (append-mode threshold rule); ``processor_ready`` of both
        targets is refreshed in O(1) on every hit.
        """
        cache = self._cache
        key = (task, first, second)
        entry = cache.entries.get(key)
        if entry is not None:
            # Same append-mode staleness rule as PressureCalculator.
            # cached_pressure (kept inline there for the hot path);
            # change both together.
            stale = False
            for link, start in entry.link_thresholds:
                if schedule.link_available(link) > start:
                    stale = True
                    break
            if not stale:
                cache.hits += 1
                plans = entry.value
                if plans is None:
                    return None
                first_plan, second_plan = plans
                first_plan.processor_ready = schedule.processor_available(first)
                second_plan.processor_ready = schedule.processor_available(second)
                first_end = first_plan.s_best + first_plan.duration
                second_end = second_plan.s_best + second_plan.duration
                return max(first_end, second_end)
            cache.discard(key)
        cache.misses += 1
        stats.pair_evaluations += 1
        dependencies = frozenset(self._algorithm.predecessors(task))
        state = self._planner.fresh_link_state(schedule)
        first_plan = self._planner.plan(task, first, schedule, state)
        if first_plan is None:
            cache.put(key, None, operations=dependencies)
            return None
        second_plan = self._planner.plan(task, second, schedule, state)
        if second_plan is None:
            cache.put(key, None, operations=dependencies)
            return None
        thresholds: dict[str, float] = {}
        for plan in (first_plan, second_plan):
            for link, start in plan.link_thresholds():
                current = thresholds.get(link)
                if current is None or start < current:
                    thresholds[link] = start
        cache.put(
            key,
            (first_plan, second_plan),
            operations=dependencies,
            link_thresholds=tuple(thresholds.items()),
        )
        first_end = first_plan.s_best + first_plan.duration
        second_end = second_plan.s_best + second_plan.duration
        return max(first_end, second_end)


def schedule_hbp(problem: ProblemSpec, compiled: bool = True) -> HBPResult:
    """Convenience one-call API for the HBP baseline."""
    return HBPScheduler(problem, compiled=compiled).run()
