"""Baseline schedulers: the paper's comparison points and references."""

from repro.baselines.exhaustive import (
    ExhaustiveResult,
    ExhaustiveScheduler,
    schedule_exhaustive,
)
from repro.baselines.hbp import (
    HBP_REPLICAS,
    HBPResult,
    HBPScheduler,
    HBPStats,
    schedule_hbp,
)
from repro.baselines.list_scheduler import (
    schedule_basic,
    schedule_non_fault_tolerant,
)

__all__ = [
    "ExhaustiveResult",
    "ExhaustiveScheduler",
    "HBPResult",
    "HBPScheduler",
    "HBPStats",
    "HBP_REPLICAS",
    "schedule_basic",
    "schedule_exhaustive",
    "schedule_hbp",
    "schedule_non_fault_tolerant",
]
