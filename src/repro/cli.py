"""Command-line interface of the FTBAR reproduction.

Sub-commands::

    ftbar example                    run the paper's worked example
    ftbar schedule  problem.json     schedule a problem file
    ftbar simulate  problem.json     schedule then crash processors
    ftbar generate  out.json         emit a random problem file
    ftbar bench     figure9|figure10|npf|runtime|ablation
    ftbar certify   [problem.json]   batched reliability certificate
    ftbar campaign  run|status|report|heatmap spec.json
    ftbar campaign  init spec.json --dir D    prepare a campaign directory
    ftbar campaign  worker DIR                join it as a stealing worker
    ftbar campaign  merge INPUTS... -o OUT    canonical shard merge
    ftbar chaos     run spec.json --plan P    campaign under fault injection
    ftbar chaos     sites                     list the failpoint site catalog
    ftbar trace     trace.jsonl      render/validate a telemetry trace
    ftbar stats     [trace.jsonl]    render a trace's metrics snapshot

Telemetry: ``schedule``, ``certify``, ``bench``, ``campaign run``,
``campaign worker`` and ``campaign merge`` accept ``--trace [PATH]``
(or the ``REPRO_TRACE`` environment variable) to record a
span/event/metrics trace — see ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import obs
from repro.analysis import (
    audit_schedule,
    degraded_lengths,
    event_boundary_times,
    format_schedule_report,
    fault_tolerance_certificate,
    format_ablation,
    format_bus_comparison,
    format_optimality_gap,
    mean_time_to_failure_iterations,
    run_bus_comparison,
    run_optimality_gap,
    schedule_reliability,
    format_npf_sweep,
    format_overhead_sweep,
    format_paper_example,
    format_runtime_comparison,
    run_ablation,
    run_npf_sweep,
    run_overhead_vs_ccr,
    run_overhead_vs_operations,
    run_paper_example,
    run_runtime_comparison,
)
from repro.core import SchedulerOptions, schedule_ftbar
from repro.exceptions import ReproError
from repro.schedule import (
    render_gantt,
    schedule_table,
    schedule_to_dot,
    validate_schedule,
)
from repro.schedule.serialization import (
    load_json,
    problem_from_dict,
    problem_to_dict,
    save_json,
    schedule_to_dict,
)
from repro.simulation import (
    DetectionPolicy,
    FailureScenario,
    ProcessorFailure,
    simulate,
    simulate_iterations,
)
from repro.workloads import (
    PAPER_BASIC_LENGTH,
    PAPER_DEGRADED_LENGTHS,
    PAPER_FT_LENGTH,
    PAPER_OVERHEAD,
    RandomWorkloadConfig,
    build_problem,
    generate_problem,
)


def _add_trace_flag(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--trace",
        nargs="?",
        const="",
        default=None,
        metavar="PATH",
        help="record a telemetry trace JSONL "
        "(bare flag: repro-trace.jsonl; see docs/observability.md)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ftbar",
        description="Distributed fault-tolerant static scheduling (DSN 2003).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    example = commands.add_parser("example", help="run the paper's worked example")
    example.add_argument("--gantt", action="store_true", help="print the Gantt chart")

    sched = commands.add_parser("schedule", help="schedule a problem JSON file")
    sched.add_argument("problem", type=Path)
    sched.add_argument("--npf", type=int, default=None, help="override the file's Npf")
    sched.add_argument(
        "--npl",
        type=int,
        default=None,
        help="override the file's Npl (link-failure tolerance)",
    )
    sched.add_argument("--no-duplication", action="store_true")
    sched.add_argument("--link-insertion", action="store_true")
    sched.add_argument("--gantt", action="store_true")
    sched.add_argument("--output", type=Path, default=None, help="save schedule JSON")
    sched.add_argument(
        "--dot", type=Path, default=None, help="save a Graphviz DOT rendering"
    )
    _add_trace_flag(sched)

    sim = commands.add_parser("simulate", help="schedule then inject crashes")
    sim.add_argument("problem", type=Path)
    sim.add_argument(
        "--crash",
        action="append",
        default=[],
        metavar="PROC[@TIME]",
        help="crash PROC at TIME (default 0); repeatable",
    )
    sim.add_argument(
        "--detection",
        choices=[p.value for p in DetectionPolicy],
        default=DetectionPolicy.NONE.value,
    )

    report = commands.add_parser(
        "report", help="full audit of the schedule of a problem"
    )
    report.add_argument("problem", type=Path)

    iterate = commands.add_parser(
        "iterate", help="cyclic execution: run the schedule over N iterations"
    )
    iterate.add_argument("problem", type=Path)
    iterate.add_argument("--iterations", type=int, default=5)
    iterate.add_argument(
        "--crash",
        action="append",
        default=[],
        metavar="PROC[@TIME]",
        help="crash PROC at absolute TIME (default 0); repeatable",
    )
    iterate.add_argument(
        "--detection",
        choices=[p.value for p in DetectionPolicy],
        default=DetectionPolicy.NONE.value,
    )

    validate = commands.add_parser(
        "validate", help="schedule a problem and re-check every invariant"
    )
    validate.add_argument("problem", type=Path)
    validate.add_argument(
        "--direct-links",
        action="store_true",
        help="also reject multi-hop comms (strict FT guarantee)",
    )

    reliability = commands.add_parser(
        "reliability", help="exhaustive fault-tolerance certificate"
    )
    reliability.add_argument("problem", type=Path)
    reliability.add_argument(
        "--failure-probability",
        type=float,
        default=None,
        metavar="Q",
        help="per-processor failure probability; adds a reliability figure",
    )
    reliability.add_argument(
        "--boundaries",
        action="store_true",
        help="crash at every static event boundary instead of t=0 only",
    )

    certify = commands.add_parser(
        "certify",
        help="fault-tolerance certificate through the batched scenario engine",
    )
    certify.add_argument(
        "problem",
        type=Path,
        nargs="?",
        default=None,
        help="problem JSON file (default: the paper's worked example)",
    )
    certify.add_argument(
        "--detection",
        choices=[p.value for p in DetectionPolicy],
        default=DetectionPolicy.NONE.value,
    )
    certify.add_argument(
        "--npl",
        type=int,
        default=None,
        help="override the problem's Npl before scheduling (the schedule "
        "replicates comms over Npl+1 link-disjoint routes)",
    )
    certify.add_argument(
        "--links",
        type=int,
        default=None,
        metavar="K",
        help="enumerate combined scenarios with up to K broken links "
        "(default: the schedule's own Npl)",
    )
    certify.add_argument(
        "--boundaries",
        action="store_true",
        help="crash at every static event boundary instead of t=0 only",
    )
    certify.add_argument(
        "--probability",
        type=float,
        action="append",
        default=[],
        metavar="Q",
        help="per-processor failure probability; repeatable, adds a "
        "reliability figure per value",
    )
    certify.add_argument(
        "--legacy",
        action="store_true",
        help="use the per-scenario engine instead of the batched one",
    )
    certify.add_argument(
        "--exact",
        action="store_true",
        help="force the legacy exhaustive enumeration (with its "
        "deterministic cap and CertificationCapWarning past P > 12) "
        "instead of the adaptive bounds/sampling path",
    )
    certify.add_argument(
        "--confidence",
        type=float,
        default=0.99,
        metavar="C",
        help="confidence level of sampled levels' intervals (default 0.99)",
    )
    certify.add_argument(
        "--budget",
        type=int,
        default=None,
        metavar="N",
        help="total random-sample budget of the adaptive path "
        "(default: 20000 for the certificate, 50000 per reliability)",
    )
    certify.add_argument(
        "--seed",
        type=int,
        default=0,
        help="user seed of the deterministic sampling RNG streams "
        "(draws derive from SHA-256 over the schedule content hash, "
        "this seed and the stratum label)",
    )
    certify.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write the certificate document (method, samples, "
        "confidence, ci, per-level estimates) as JSON",
    )
    certify.add_argument(
        "--compare",
        action="store_true",
        help="run both engines and fail unless their verdicts and "
        "probabilities are bit-identical",
    )
    _add_trace_flag(certify)

    gen = commands.add_parser("generate", help="emit a random problem JSON file")
    gen.add_argument("output", type=Path)
    gen.add_argument("--operations", type=int, default=20)
    gen.add_argument("--ccr", type=float, default=1.0)
    gen.add_argument("--processors", type=int, default=4)
    gen.add_argument("--npf", type=int, default=1)
    gen.add_argument("--heterogeneous", action="store_true")
    gen.add_argument("--seed", type=int, default=0)

    bench = commands.add_parser("bench", help="regenerate a paper figure")
    bench.add_argument(
        "figure",
        nargs="?",
        default=None,
        choices=[
            "figure9",
            "figure10",
            "npf",
            "runtime",
            "ablation",
            "bus",
            "gap",
        ],
        help="paper figure to regenerate (omit with --profile/--smoke)",
    )
    bench.add_argument("--graphs", type=int, default=10, help="graphs per point")
    bench.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the overhead sweeps (0 = one per CPU); "
        "routes figure9/figure10 through the campaign pool",
    )
    bench.add_argument(
        "--profile",
        action="store_true",
        help="cProfile one compiled scheduling run and record the top "
        "hotspots under the profile_top key of BENCH_runtime.json",
    )
    bench.add_argument(
        "--smoke",
        action="store_true",
        help="schedule the pinned smoke problems with the compiled kernel "
        "and fail if any evaluation/decision counter moved (deterministic "
        "— counters, not wall clock)",
    )
    _add_trace_flag(bench)

    campaign = commands.add_parser(
        "campaign", help="run, inspect or aggregate an experiment campaign"
    )
    campaign_commands = campaign.add_subparsers(dest="campaign_command", required=True)

    def _campaign_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("spec", type=Path, help="campaign spec JSON file")
        sub.add_argument(
            "--store",
            type=Path,
            default=None,
            help="result store JSONL (default: <spec stem>-results.jsonl)",
        )

    campaign_run = campaign_commands.add_parser("run", help="execute a campaign spec")
    _campaign_common(campaign_run)
    campaign_run.add_argument(
        "--jobs", type=int, default=1, help="worker processes (0 = one per CPU)"
    )
    campaign_run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="synonym for --jobs (the backend vocabulary)",
    )
    campaign_run.add_argument(
        "--backend",
        choices=["local", "serial", "directory"],
        default=None,
        help="execution backend (default: the spec's, usually 'local')",
    )
    campaign_run.add_argument(
        "--dir",
        type=Path,
        default=None,
        dest="campaign_dir",
        help="campaign directory of the 'directory' backend "
        "(default: <spec stem>-campaign next to the spec)",
    )
    campaign_run.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        help="directory backend: seconds before an unrenewed job lease "
        "may be stolen (default: 30)",
    )
    campaign_run.add_argument(
        "--cache",
        type=Path,
        default=None,
        help="content-addressed schedule cache dir "
        "(default: <spec dir>/.schedule-cache)",
    )
    campaign_run.add_argument(
        "--no-cache", action="store_true", help="disable the cache"
    )
    campaign_run.add_argument(
        "--resume",
        action="store_true",
        help="skip jobs whose results the store already records",
    )
    campaign_run.add_argument(
        "--quiet", action="store_true", help="suppress per-job progress lines"
    )
    _add_trace_flag(campaign_run)

    campaign_status_cmd = campaign_commands.add_parser(
        "status", help="progress of a campaign against its result store"
    )
    _campaign_common(campaign_status_cmd)
    campaign_status_cmd.add_argument(
        "--dir",
        type=Path,
        default=None,
        dest="campaign_dir",
        help="also poll this campaign directory's shards and live claims",
    )
    campaign_status_cmd.add_argument(
        "--watch",
        action="store_true",
        help="repaint the progress line until the campaign completes",
    )
    campaign_status_cmd.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="--watch poll interval in seconds (default: 2)",
    )
    _campaign_common(
        campaign_commands.add_parser(
            "report", help="aggregate a campaign's recorded results"
        )
    )

    campaign_init = campaign_commands.add_parser(
        "init", help="initialize a campaign directory for detached workers"
    )
    campaign_init.add_argument("spec", type=Path, help="campaign spec JSON file")
    campaign_init.add_argument(
        "--dir",
        type=Path,
        default=None,
        dest="campaign_dir",
        help="campaign directory to create "
        "(default: <spec stem>-campaign next to the spec)",
    )

    campaign_worker = campaign_commands.add_parser(
        "worker",
        help="join a campaign directory as one work-stealing worker",
    )
    campaign_worker.add_argument(
        "dir", type=Path, help="campaign directory (see 'campaign init')"
    )
    campaign_worker.add_argument(
        "--worker-id",
        default=None,
        help="worker identity for claims and the result shard "
        "(default: <host>-<pid>)",
    )
    campaign_worker.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        help="seconds before an unrenewed lease may be stolen (default: 30)",
    )
    campaign_worker.add_argument(
        "--poll",
        type=float,
        default=0.2,
        help="idle poll interval in seconds (default: 0.2)",
    )
    campaign_worker.add_argument(
        "--max-attempts",
        type=int,
        default=5,
        help="dead leases per job before it is abandoned (default: 5)",
    )
    campaign_worker.add_argument(
        "--delay",
        type=float,
        default=0.0,
        help="fault-injection: sleep this long between claiming a job "
        "and executing it (holding the lease)",
    )
    campaign_worker.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the campaign directory's shared schedule cache",
    )
    campaign_worker.add_argument(
        "--quiet", action="store_true", help="suppress per-job progress lines"
    )
    _add_trace_flag(campaign_worker)

    campaign_merge = campaign_commands.add_parser(
        "merge",
        help="merge result shards into one canonical, diffable store",
    )
    campaign_merge.add_argument(
        "inputs",
        type=Path,
        nargs="+",
        help="store files, campaign directories, or directories of shards",
    )
    campaign_merge.add_argument(
        "--output",
        "-o",
        type=Path,
        default=None,
        help="merged store path (omit for a conflict-checking dry run)",
    )
    campaign_merge.add_argument(
        "--events",
        type=Path,
        default=None,
        help="worker-events sidecar path "
        "(default: <output stem>.events.jsonl)",
    )
    _add_trace_flag(campaign_merge)
    campaign_heatmap = campaign_commands.add_parser(
        "heatmap", help="render the npf x failure-probability heatmap"
    )
    _campaign_common(campaign_heatmap)
    campaign_heatmap.add_argument(
        "--value",
        choices=["reliability", "mttf", "certified"],
        default="reliability",
        help="cell quantity (default: reliability)",
    )

    trace_cmd = commands.add_parser(
        "trace", help="render or validate a recorded telemetry trace"
    )
    trace_cmd.add_argument(
        "trace_file",
        type=Path,
        help="trace JSONL written by --trace / REPRO_TRACE",
    )
    trace_cmd.add_argument(
        "--validate",
        action="store_true",
        help="check every line against the trace schema and the stream "
        "invariants; non-zero exit on violations",
    )
    trace_cmd.add_argument(
        "--min-coverage",
        type=float,
        default=None,
        metavar="FRACTION",
        help="fail unless root spans cover at least this fraction of the "
        "trace's wall extent (e.g. 0.9)",
    )
    trace_cmd.add_argument(
        "--tree",
        action="store_true",
        help="print the span tree instead of the per-phase table",
    )

    stats_cmd = commands.add_parser(
        "stats", help="render the metrics snapshot of a recorded trace"
    )
    stats_cmd.add_argument(
        "trace_file",
        type=Path,
        nargs="?",
        default=None,
        help="trace JSONL (default: repro-trace.jsonl)",
    )

    chaos = commands.add_parser(
        "chaos",
        help="run a campaign under deterministic fault injection",
    )
    chaos_commands = chaos.add_subparsers(dest="chaos_command", required=True)
    chaos_run = chaos_commands.add_parser(
        "run",
        help="attack a campaign with an injection plan and verify the "
        "merged store is byte-identical to a clean serial run",
    )
    chaos_run.add_argument(
        "spec", type=Path, help="campaign spec JSON (see 'campaign run')"
    )
    chaos_run.add_argument(
        "--plan",
        type=Path,
        required=True,
        metavar="PLAN",
        help="fault-injection plan JSON (see docs/robustness.md)",
    )
    chaos_run.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the plan's seed (replays are (plan, seed)-exact)",
    )
    chaos_run.add_argument(
        "--workers",
        type=int,
        default=2,
        help="chaos workers per round (default: 2)",
    )
    chaos_run.add_argument(
        "--rounds",
        type=int,
        default=5,
        help="worker rounds before declaring the campaign incomplete "
        "(default: 5)",
    )
    chaos_run.add_argument(
        "--lease-ttl",
        type=float,
        default=2.0,
        help="campaign lease TTL in seconds (short: steals happen fast "
        "under injected stalls; default: 2.0)",
    )
    chaos_run.add_argument(
        "--dir",
        type=Path,
        default=None,
        dest="chaos_dir",
        help="scratch directory to use and keep "
        "(default: a fresh temp dir)",
    )
    chaos_run.add_argument(
        "--json",
        action="store_true",
        help="emit the full chaos report as JSON instead of the summary",
    )
    _add_trace_flag(chaos_run)
    chaos_commands.add_parser(
        "sites", help="list every failpoint site a plan may target"
    )
    return parser


def _cmd_example(args: argparse.Namespace) -> int:
    results = run_paper_example()
    references = {
        "ft_length": PAPER_FT_LENGTH,
        "basic_length": PAPER_BASIC_LENGTH,
        "overhead": PAPER_OVERHEAD,
        "degraded": PAPER_DEGRADED_LENGTHS,
    }
    print(format_paper_example(results, references))
    if args.gantt:
        result = schedule_ftbar(build_problem())
        print()
        print(render_gantt(result.schedule))
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    problem = problem_from_dict(load_json(args.problem))
    if args.npf is not None:
        problem.npf = args.npf
    if args.npl is not None:
        problem.npl = args.npl
    options = SchedulerOptions(
        duplication=not args.no_duplication,
        link_insertion=args.link_insertion,
    )
    result = schedule_ftbar(problem, options)
    print(result.schedule.summary())
    print(result.rtc_report)
    print()
    print(schedule_table(result.schedule))
    if args.gantt:
        print()
        print(render_gantt(result.schedule))
    if args.output is not None:
        save_json(schedule_to_dict(result.schedule), args.output)
        print(f"\nschedule written to {args.output}")
    if args.dot is not None:
        args.dot.write_text(schedule_to_dot(result.schedule))
        print(f"DOT rendering written to {args.dot}")
    return 0


def _parse_crash(spec: str) -> tuple[str, float]:
    processor, _, when = spec.partition("@")
    return processor, float(when) if when else 0.0


def _cmd_simulate(args: argparse.Namespace) -> int:
    problem = problem_from_dict(load_json(args.problem))
    result = schedule_ftbar(problem)
    algorithm = result.expanded_algorithm
    print(result.schedule.summary())
    if args.crash:
        crashes = [_parse_crash(spec) for spec in args.crash]
        scenario = FailureScenario(
            [ProcessorFailure(processor, at) for processor, at in crashes]
        )
        trace = simulate(
            result.schedule,
            algorithm,
            scenario,
            DetectionPolicy(args.detection),
        )
        print(f"scenario: {scenario!r}")
        print(trace.summary())
        completion = trace.outputs_completion(algorithm)
        verdict = f"outputs delivered at {completion:g}" if completion else "OUTPUTS LOST"
        print(verdict)
    else:
        lengths = degraded_lengths(result.schedule, algorithm)
        print("single-crash schedule lengths:")
        for processor, length in sorted(lengths.items()):
            print(f"  {processor} fails at t=0 -> {length:g}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    problem = problem_from_dict(load_json(args.problem))
    result = schedule_ftbar(problem)
    report = audit_schedule(result)
    print(format_schedule_report(report))
    return 0 if report.healthy else 1


def _cmd_iterate(args: argparse.Namespace) -> int:
    problem = problem_from_dict(load_json(args.problem))
    result = schedule_ftbar(problem)
    algorithm = result.expanded_algorithm
    print(result.schedule.summary())
    crashes = [_parse_crash(spec) for spec in args.crash]
    scenario = FailureScenario(
        [ProcessorFailure(processor, at) for processor, at in crashes]
    )
    run = simulate_iterations(
        result.schedule,
        algorithm,
        iterations=args.iterations,
        scenario=scenario,
        detection=DetectionPolicy(args.detection),
    )
    print(run.summary())
    for outcome in run.iterations:
        delivered = (
            f"outputs at {outcome.outputs_at:g}"
            if outcome.delivered
            else "OUTPUTS LOST"
        )
        print(
            f"  iteration {outcome.index}: starts {outcome.offset:g}, "
            f"length {outcome.trace.makespan():g}, {delivered}"
        )
    return 0 if run.delivered_count() == len(run) else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    problem = problem_from_dict(load_json(args.problem))
    result = schedule_ftbar(problem)
    print(result.schedule.summary())
    report = validate_schedule(
        result.schedule,
        result.expanded_algorithm,
        problem.architecture,
        problem.exec_times,
        problem.comm_times,
        require_direct_links=args.direct_links,
    )
    print(report)
    return 0 if report.ok else 1


def _cmd_reliability(args: argparse.Namespace) -> int:
    problem = problem_from_dict(load_json(args.problem))
    result = schedule_ftbar(problem)
    print(result.schedule.summary())
    times = (
        event_boundary_times(result.schedule)
        if args.boundaries
        else (0.0,)
    )
    # One engine serves the certificate and the reliability sum, so the
    # schedule is compiled (and each scenario simulated) only once.
    from repro.simulation.batch import BatchScenarioEngine

    engine = BatchScenarioEngine(result.schedule, result.expanded_algorithm)
    certificate = fault_tolerance_certificate(
        result.schedule,
        result.expanded_algorithm,
        crash_times=times,
        engine=engine,
    )
    print(certificate)
    if args.failure_probability is not None:
        report = schedule_reliability(
            result.schedule,
            result.expanded_algorithm,
            {
                p: args.failure_probability
                for p in result.schedule.processor_names()
            },
            crash_times=times,
            engine=engine,
        )
        print(report)
        mttf = mean_time_to_failure_iterations(report.reliability)
        print(f"mean iterations to first unmasked failure: {mttf:g}")
    return 0 if certificate.certified else 1


def _cmd_certify(args: argparse.Namespace) -> int:
    from repro.simulation.batch import BatchScenarioEngine

    if args.problem is not None:
        problem = problem_from_dict(load_json(args.problem))
    else:
        problem = build_problem()
        print("(no problem file given — certifying the paper's example)")
    if args.npl is not None:
        problem.npl = args.npl
    result = schedule_ftbar(problem)
    schedule, algorithm = result.schedule, result.expanded_algorithm
    print(schedule.summary())
    detection = DetectionPolicy(args.detection)
    times = event_boundary_times(schedule) if args.boundaries else (0.0,)
    probabilities = args.probability
    max_links = args.links
    # --compare pins the batched engine against the per-scenario one,
    # which only exists for the exhaustive path — force it there.
    method = "exact" if args.exact or args.compare else "auto"

    def certificate_and_reports(batched: bool):
        engine = (
            BatchScenarioEngine(schedule, algorithm, detection)
            if batched
            else None
        )
        certificate = fault_tolerance_certificate(
            schedule,
            algorithm,
            crash_times=times,
            detection=detection,
            batched=batched,
            engine=engine,
            max_link_failures=max_links,
            method=method,
            confidence=args.confidence,
            budget=args.budget,
            seed=args.seed,
        )
        reports = [
            schedule_reliability(
                schedule,
                algorithm,
                {p: q for p in schedule.processor_names()},
                crash_times=times,
                detection=detection,
                batched=batched,
                engine=engine,
                method=method,
                confidence=args.confidence,
                budget=args.budget,
                seed=args.seed,
            )
            for q in probabilities
        ]
        return certificate, reports, engine

    certificate, reports, engine = certificate_and_reports(not args.legacy)
    print(certificate)
    if args.json is not None:
        save_json(certificate.to_dict(), args.json)
        print(f"certificate document written to {args.json}")
    for probability, report in zip(probabilities, reports):
        mttf = mean_time_to_failure_iterations(report.reliability)
        print(f"q={probability:g}: {report}")
        print(f"  mean iterations to first unmasked failure: {mttf:g}")
    if engine is not None:
        stats = engine.stats
        print(
            f"batch engine: {stats.scenarios} scenario verdicts — "
            f"{stats.simulated} simulated ({stats.simulated_cone} dirty-cone, "
            f"{stats.simulated_full} full), {stats.pruned_nominal} pruned as "
            f"nominal-equivalent, {stats.memo_hits} memo hits, "
            f"{stats.decisions} event decisions, {stats.copied} copied"
        )
    if args.compare:
        other, other_reports, _ = certificate_and_reports(args.legacy)
        mismatches = []
        if [
            (l.failures, l.link_failures, l.masked_subsets, l.total_subsets)
            for l in certificate.levels
        ] != [
            (l.failures, l.link_failures, l.masked_subsets, l.total_subsets)
            for l in other.levels
        ]:
            mismatches.append("tolerance levels")
        if certificate.breaking_subsets != other.breaking_subsets:
            mismatches.append("breaking subsets")
        if certificate.breaking_combined != other.breaking_combined:
            mismatches.append("breaking combined subsets")
        if certificate.certified != other.certified:
            mismatches.append("certified verdict")
        for probability, mine, theirs in zip(probabilities, reports, other_reports):
            if (mine.reliability, mine.masked_probability_mass) != (
                theirs.reliability, theirs.masked_probability_mass
            ):
                mismatches.append(f"reliability at q={probability:g}")
        if mismatches:
            print(f"ENGINE MISMATCH: {', '.join(mismatches)}")
            return 1
        print("engines agree: batched and per-scenario verdicts bit-identical")
    # 0 = proven, 1 = a breaking subset exists, 2 = estimated only
    # (sampled levels left the hypothesis unproven but unrefuted).
    return {"certified": 0, "refuted": 1, "estimated": 2}[certificate.verdict]


def _cmd_generate(args: argparse.Namespace) -> int:
    problem = generate_problem(
        RandomWorkloadConfig(
            operations=args.operations,
            ccr=args.ccr,
            processors=args.processors,
            npf=args.npf,
            heterogeneous=args.heterogeneous,
            seed=args.seed,
        )
    )
    save_json(problem_to_dict(problem), args.output)
    print(f"problem {problem.name!r} written to {args.output}")
    return 0


#: Work counters of the compiled engines over the perf-smoke problems.
#: Wall clock is machine-dependent, the counters are not: any change
#: here is an algorithmic change (or a broken cache) and must be
#: reviewed, not absorbed.  After an intentional change, update the
#: pins from the values ``repro bench --smoke`` prints.
_PERF_SMOKE_PINS = {
    "ftbar-N40-npf1": {
        "steps": 40,
        "pressure_evaluations": 101,
        "cache_hits": 750,
        "duplication_attempts": 68,
        "symmetry_pruned": 861,
    },
    "ftbar-N24-npf2": {
        "steps": 24,
        "pressure_evaluations": 103,
        "cache_hits": 567,
        "duplication_attempts": 21,
        "symmetry_pruned": 66,
    },
    "hbp-N40-npf1": {
        "steps": 40,
        "pair_evaluations": 1716,
        "pair_cache_hits": 948,
    },
}


def _bench_smoke() -> int:
    """Schedule the pinned problems; fail on any counter drift."""
    from repro.baselines.hbp import schedule_hbp
    from repro.workloads.random_dag import (
        RandomWorkloadConfig as _Config,
        generate_problem as _generate,
    )

    problem_40 = _generate(
        _Config(operations=40, ccr=1.0, processors=4, npf=1, seed=2003)
    )
    problem_24 = _generate(
        _Config(operations=24, ccr=2.0, processors=4, npf=2, seed=7)
    )
    ftbar_40 = schedule_ftbar(problem_40)
    ftbar_24 = schedule_ftbar(problem_24)
    hbp_40 = schedule_hbp(problem_40)
    observed = {
        "ftbar-N40-npf1": {
            "steps": ftbar_40.stats.steps,
            "pressure_evaluations": ftbar_40.stats.pressure_evaluations,
            "cache_hits": ftbar_40.stats.cache_hits,
            "duplication_attempts": ftbar_40.stats.duplication.attempts,
            "symmetry_pruned": ftbar_40.stats.symmetry_pruned,
        },
        "ftbar-N24-npf2": {
            "steps": ftbar_24.stats.steps,
            "pressure_evaluations": ftbar_24.stats.pressure_evaluations,
            "cache_hits": ftbar_24.stats.cache_hits,
            "duplication_attempts": ftbar_24.stats.duplication.attempts,
            "symmetry_pruned": ftbar_24.stats.symmetry_pruned,
        },
        "hbp-N40-npf1": {
            "steps": hbp_40.stats.steps,
            "pair_evaluations": hbp_40.stats.pair_evaluations,
            "pair_cache_hits": hbp_40.stats.pair_cache_hits,
        },
    }
    failed = False
    for label, pinned in _PERF_SMOKE_PINS.items():
        for counter, expected in pinned.items():
            actual = observed[label][counter]
            status = "ok" if actual == expected else "REGRESSED"
            if actual != expected:
                failed = True
            print(f"  {label:16s} {counter:22s} {actual:>6} (pinned {expected}) {status}")
    if failed:
        print("perf smoke FAILED: counters drifted from the pinned values")
        return 1
    print("perf smoke ok: all compiled-kernel counters match the pins")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    graphs = args.graphs
    jobs = args.jobs  # 0 = one per CPU, resolved by the campaign pool
    if args.figure is not None and (args.smoke or args.profile):
        print(
            "error: --smoke/--profile run their own fixed workloads; "
            "drop the figure argument",
            file=sys.stderr,
        )
        return 2
    if args.smoke:
        return _bench_smoke()
    if args.profile:
        # The profile harness lives with the benches (a source-checkout
        # tool: it writes BENCH_runtime.json at the repository root).
        root = Path(__file__).resolve().parent.parent.parent
        if str(root) not in sys.path:
            sys.path.insert(0, str(root))
        try:
            from benchmarks.bench_runtime import _RESULT_PATH, run_profile
        except ModuleNotFoundError:
            print(
                "error: bench --profile needs the benchmarks/ directory "
                "of a source checkout",
                file=sys.stderr,
            )
            return 2
        record = run_profile()
        payload = (
            json.loads(_RESULT_PATH.read_text())
            if _RESULT_PATH.exists() else {}
        )
        payload["profile_top"] = record
        _RESULT_PATH.write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n"
        )
        print(
            f"profiled one compiled N={record['operations']} run "
            f"({record['total_s']:.3f}s); top hotspots:"
        )
        for hotspot in record["hotspots"][:10]:
            print(
                f"  {hotspot['cumtime_s']:8.3f}s cum  "
                f"{hotspot['ncalls']:>7} calls  {hotspot['function']}"
            )
        print(f"recorded under profile_top in {_RESULT_PATH}")
        return 0
    if args.figure is None:
        print("error: a figure is required unless --profile/--smoke is given",
              file=sys.stderr)
        return 2
    if args.figure == "figure9":
        sweep = run_overhead_vs_operations(graphs_per_point=graphs, jobs=jobs)
        print(format_overhead_sweep(sweep, "Figure 9 — overhead vs N (CCR=5, P=4)"))
    elif args.figure == "figure10":
        sweep = run_overhead_vs_ccr(graphs_per_point=graphs, jobs=jobs)
        print(format_overhead_sweep(sweep, "Figure 10 — overhead vs CCR (N=50, P=4)"))
    elif args.figure == "npf":
        print(format_npf_sweep(run_npf_sweep(graphs_per_point=graphs)))
    elif args.figure == "runtime":
        print(format_runtime_comparison(run_runtime_comparison(graphs_per_point=graphs)))
    elif args.figure == "bus":
        print(format_bus_comparison(run_bus_comparison(graphs_per_point=graphs)))
    elif args.figure == "gap":
        print(format_optimality_gap(run_optimality_gap(instances=graphs)))
    else:
        print(format_ablation(run_ablation(graphs_per_point=graphs)))
    return 0


def _campaign_paths(args: argparse.Namespace) -> tuple:
    """Resolve the spec, store and default cache paths of a campaign."""
    from repro.campaign.spec import load_campaign

    spec = load_campaign(args.spec)
    store_path = (
        args.store
        if args.store is not None
        else args.spec.with_name(f"{args.spec.stem}-results.jsonl")
    )
    return spec, store_path


def _default_campaign_dir(args: argparse.Namespace) -> Path:
    """The campaign directory next to the spec, unless ``--dir`` says."""
    if getattr(args, "campaign_dir", None) is not None:
        return args.campaign_dir
    return args.spec.with_name(f"{args.spec.stem}-campaign")


def _cmd_campaign_worker(args: argparse.Namespace) -> int:
    from repro.campaign.backends.directory import worker_loop

    report = worker_loop(
        args.dir,
        worker=args.worker_id,
        lease_ttl_s=args.lease_ttl,
        poll_s=args.poll,
        max_attempts=args.max_attempts,
        delay_s=args.delay,
        use_cache=not args.no_cache,
        progress=None if args.quiet else print,
    )
    print(report.summary())
    return 0 if not report.exhausted else 1


def _cmd_campaign_merge(args: argparse.Namespace) -> int:
    from repro.campaign.merge import merge_stores

    report = merge_stores(
        args.inputs, args.output, events_output=args.events
    )
    print(report.summary())
    if report.output is not None:
        print(f"merged store: {report.output}")
    if report.events_output is not None:
        print(f"worker events: {report.events_output}")
    if report.output is None:
        print("(dry run — pass --output to write the merged store)")
    return 0


def _cmd_campaign_status(args: argparse.Namespace, spec, store_path) -> int:
    import time as _time

    from repro.campaign.backends.directory import DirectoryCampaign
    from repro.campaign.runner import campaign_status
    from repro.campaign.store import ResultStore
    from repro.obs.render import progress_line

    campaign = (
        DirectoryCampaign(args.campaign_dir)
        if args.campaign_dir is not None
        else None
    )

    def snapshot() -> tuple[str, bool]:
        store = ResultStore(store_path)
        done = store.digests()
        corrupt = len(store.corrupt_lines)
        workers: dict[str, int] = {}
        if campaign is not None:
            for shard in campaign.shard_paths():
                worker = shard.stem
                shard_store = ResultStore(shard)
                digests = shard_store.digests()
                workers[worker] = len(digests)
                done |= digests
                corrupt += len(shard_store.corrupt_lines)
        from repro.campaign.jobs import expand_jobs

        total = {job.digest for job in expand_jobs(spec)}
        finished = len(done & total)
        line = progress_line(
            f"campaign {spec.name!r}", finished, len(total), workers=workers
        )
        if campaign is not None:
            claims = campaign.active_claims()
            if claims:
                line += f" — {len(claims)} live claims"
        if corrupt:
            line += f" — {corrupt} corrupt store lines skipped"
        return line, finished >= len(total)

    if not args.watch:
        status = campaign_status(spec, ResultStore(store_path))
        if campaign is None:
            print(status.summary())
        else:
            print(snapshot()[0])
        return 0
    while True:
        line, complete = snapshot()
        print(line, flush=True)
        if complete:
            return 0
        _time.sleep(args.interval)


def _cmd_campaign(args: argparse.Namespace) -> int:
    if args.campaign_command == "worker":
        return _cmd_campaign_worker(args)
    if args.campaign_command == "merge":
        return _cmd_campaign_merge(args)

    from repro.campaign.runner import (
        campaign_report,
        reliability_heatmap,
        run_campaign,
    )
    from repro.campaign.store import ResultStore

    if args.campaign_command == "init":
        from repro.campaign.backends.directory import DirectoryCampaign
        from repro.campaign.spec import load_campaign

        spec = load_campaign(args.spec)
        campaign = DirectoryCampaign.initialize(spec, _default_campaign_dir(args))
        jobs = campaign.jobs()
        print(
            f"campaign {spec.name!r} initialized: {len(jobs)} jobs in "
            f"{campaign.root}"
        )
        print(f"join workers with: ftbar campaign worker {campaign.root}")
        return 0

    spec, store_path = _campaign_paths(args)
    if args.campaign_command == "status":
        return _cmd_campaign_status(args, spec, store_path)
    if args.campaign_command == "report":
        print(campaign_report(spec, ResultStore(store_path)))
        return 0
    if args.campaign_command == "heatmap":
        print(reliability_heatmap(spec, ResultStore(store_path), args.value))
        return 0

    cache_dir = None
    if not args.no_cache:
        cache_dir = (
            args.cache
            if args.cache is not None
            else args.spec.parent / ".schedule-cache"
        )
    backend = args.backend or spec.backend
    jobs = args.workers if args.workers is not None else args.jobs
    report = run_campaign(
        spec,
        jobs=jobs,  # 0 = one per available CPU, resolved by the pool
        store=store_path,
        cache=cache_dir,
        resume=args.resume,
        progress=None if args.quiet else print,
        backend=backend,
        directory=(
            _default_campaign_dir(args) if backend == "directory" else None
        ),
        lease_ttl_s=args.lease_ttl,
    )
    print(report.summary())
    print(f"results: {store_path}")
    if cache_dir is not None:
        print(f"cache: {cache_dir}")
    if backend == "directory":
        print(f"campaign dir: {_default_campaign_dir(args)}")
    return 0 if not report.interrupted else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.campaign.spec import load_campaign
    from repro.faultinject import FAILPOINT_SITES, load_plan
    from repro.faultinject.chaos import run_chaos

    if args.chaos_command == "sites":
        width = max(len(site) for site in FAILPOINT_SITES)
        for site, description in sorted(FAILPOINT_SITES.items()):
            print(f"{site:<{width}}  {description}")
        return 0

    spec = load_campaign(args.spec)
    plan = load_plan(args.plan, seed=args.seed)
    report = run_chaos(
        spec,
        plan,
        workers=args.workers,
        rounds=args.rounds,
        root=args.chaos_dir,
        lease_ttl_s=args.lease_ttl,
        # With --json, stdout is the report document; narrate on stderr.
        progress=(
            (lambda message: print(message, file=sys.stderr))
            if args.json
            else print
        ),
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
    if report.passed:
        return 0
    # Incomplete campaigns / failed merges are budget exhaustion (2);
    # a byte mismatch is the property under test failing (1).
    return 2 if not (report.complete and report.merge_ok) else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import render

    lines = obs.read_trace(args.trace_file)
    if not lines:
        print(
            f"error: empty or unreadable trace: {args.trace_file}",
            file=sys.stderr,
        )
        return 1
    failures: list[str] = []
    if args.validate:
        errors = obs.validate_trace(lines)
        if errors:
            for problem in errors[:20]:
                print(f"invalid: {problem}", file=sys.stderr)
            failures.append(f"{len(errors)} schema violations")
        else:
            print(
                f"trace OK: {len(lines)} lines valid against "
                f"{obs.SCHEMA_NAME}/{obs.SCHEMA_VERSION}"
            )
    print(
        render.render_tree(lines) if args.tree
        else render.render_phase_table(lines)
    )
    for extra in (render.render_events(lines),
                  render.campaign_progress(lines)):
        if extra:
            print(extra)
    if args.min_coverage is not None:
        covered = render.coverage(lines)
        if covered < args.min_coverage:
            failures.append(
                f"coverage {covered:.1%} < required {args.min_coverage:.1%}"
            )
    if failures:
        print("trace check failed: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs import render

    path = args.trace_file or obs.default_trace_path()
    lines = obs.read_trace(path)
    if not lines:
        print(f"error: empty or unreadable trace: {path}", file=sys.stderr)
        return 1
    snapshot = render.last_snapshot(lines)
    if snapshot is None:
        print(
            f"error: no metrics snapshot in {path} — the producer did not "
            "close its tracer (obs.disable())",
            file=sys.stderr,
        )
        return 1
    print(render.render_snapshot(snapshot))
    progress = render.campaign_progress(lines)
    if progress:
        print(progress)
    return 0


_COMMANDS = {
    "example": _cmd_example,
    "schedule": _cmd_schedule,
    "simulate": _cmd_simulate,
    "report": _cmd_report,
    "iterate": _cmd_iterate,
    "validate": _cmd_validate,
    "reliability": _cmd_reliability,
    "certify": _cmd_certify,
    "generate": _cmd_generate,
    "bench": _cmd_bench,
    "campaign": _cmd_campaign,
    "chaos": _cmd_chaos,
    "trace": _cmd_trace,
    "stats": _cmd_stats,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``ftbar`` console script.

    Telemetry is wired here, once, for every sub-command: ``--trace``
    (or ``REPRO_TRACE``) enables the process tracer, the command body
    runs under a ``cli.<command>`` root span, and the tracer is closed
    — flushing the final metrics snapshot line — before exit.  The
    ``trace`` / ``stats`` readers never trace themselves.
    """
    args = _build_parser().parse_args(argv)
    if args.command not in ("trace", "stats"):
        flag = getattr(args, "trace", None)
        if flag is not None:
            obs.enable(flag or None, meta={"command": args.command})
        else:
            obs.configure_from_env()
        from repro.faultinject import configure_from_env as _fault_env

        # REPRO_FAULT_PLAN arms fault injection in any sub-command —
        # how chaos subprocesses and CI smoke runs inherit a plan.
        _fault_env()
    try:
        with obs.span(f"cli.{args.command}"):
            return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        obs.disable()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
