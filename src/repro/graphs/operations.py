"""Operation vertices of the algorithm data-flow graph.

The paper's algorithm model (section 3.2) distinguishes three kinds of
operations:

* *computation* (``comp``) — pure function from inputs to outputs,
* *memory* (``mem``) — a register whose output precedes its input,
* *external I/O* (``extio``) — sensor/actuator interface; the only
  operations with side effects.

Operations are identified by name; the :class:`Operation` value object
carries the kind and is hashable so it can live in sets and dict keys.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class OperationKind(str, enum.Enum):
    """Kind of a data-flow vertex, mirroring section 3.2 of the paper."""

    COMPUTATION = "comp"
    MEMORY = "mem"
    EXTERNAL_IO = "extio"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, order=True)
class Operation:
    """A vertex of the algorithm graph.

    Parameters
    ----------
    name:
        Unique identifier within one :class:`~repro.graphs.AlgorithmGraph`.
    kind:
        One of :class:`OperationKind`; defaults to a computation.

    Examples
    --------
    >>> Operation("A").is_computation()
    True
    >>> Operation("I", OperationKind.EXTERNAL_IO).kind
    <OperationKind.EXTERNAL_IO: 'extio'>
    """

    name: str
    kind: OperationKind = field(default=OperationKind.COMPUTATION, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("operation name must be a non-empty string")
        if not isinstance(self.kind, OperationKind):
            object.__setattr__(self, "kind", OperationKind(self.kind))

    def is_computation(self) -> bool:
        """True when the operation is a pure computation (``comp``)."""
        return self.kind is OperationKind.COMPUTATION

    def is_memory(self) -> bool:
        """True when the operation is a register-like memory (``mem``)."""
        return self.kind is OperationKind.MEMORY

    def is_external_io(self) -> bool:
        """True when the operation is a sensor/actuator interface."""
        return self.kind is OperationKind.EXTERNAL_IO

    def __str__(self) -> str:
        return self.name


#: Suffix appended to the *read* half of an expanded memory operation.
MEMORY_READ_SUFFIX = "#read"
#: Suffix appended to the *write* half of an expanded memory operation.
MEMORY_WRITE_SUFFIX = "#write"


def memory_read_name(name: str) -> str:
    """Name of the read (source) half of an expanded ``mem`` operation."""
    return name + MEMORY_READ_SUFFIX


def memory_write_name(name: str) -> str:
    """Name of the write (sink) half of an expanded ``mem`` operation."""
    return name + MEMORY_WRITE_SUFFIX


def is_memory_half(name: str) -> bool:
    """True when ``name`` denotes either half of an expanded memory."""
    return name.endswith(MEMORY_READ_SUFFIX) or name.endswith(MEMORY_WRITE_SUFFIX)


def memory_base_name(name: str) -> str:
    """Original ``mem`` operation name behind an expanded half.

    Returns ``name`` unchanged when it is not an expanded memory half.
    """
    for suffix in (MEMORY_READ_SUFFIX, MEMORY_WRITE_SUFFIX):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name
