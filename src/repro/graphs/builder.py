"""Fluent construction helpers for algorithm graphs.

:class:`AlgorithmGraphBuilder` offers a chainable API that reads close to
the paper's prose ("I feeds A, A feeds B..."), plus a handful of canned
graph families used throughout the tests and benchmarks.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.graphs.algorithm import AlgorithmGraph
from repro.graphs.operations import OperationKind


class AlgorithmGraphBuilder:
    """Chainable builder for :class:`~repro.graphs.AlgorithmGraph`.

    Examples
    --------
    >>> alg = (AlgorithmGraphBuilder("demo")
    ...        .external_io("I")
    ...        .computation("A")
    ...        .depends("A", on=["I"])
    ...        .build())
    >>> alg.predecessors("A")
    ('I',)
    """

    def __init__(self, name: str = "algorithm") -> None:
        self._graph = AlgorithmGraph(name)

    def computation(self, *names: str) -> "AlgorithmGraphBuilder":
        """Declare one or more ``comp`` operations."""
        for name in names:
            self._graph.add_operation(name, OperationKind.COMPUTATION)
        return self

    def memory(self, *names: str) -> "AlgorithmGraphBuilder":
        """Declare one or more ``mem`` operations."""
        for name in names:
            self._graph.add_operation(name, OperationKind.MEMORY)
        return self

    def external_io(self, *names: str) -> "AlgorithmGraphBuilder":
        """Declare one or more ``extio`` operations."""
        for name in names:
            self._graph.add_operation(name, OperationKind.EXTERNAL_IO)
        return self

    def depends(
        self,
        target: str,
        on: Iterable[str],
        data_size: float = 1.0,
    ) -> "AlgorithmGraphBuilder":
        """Declare that ``target`` consumes data from every op in ``on``."""
        for source in on:
            self._graph.add_dependency(source, target, data_size)
        return self

    def feeds(
        self,
        source: str,
        into: Iterable[str],
        data_size: float = 1.0,
    ) -> "AlgorithmGraphBuilder":
        """Declare that ``source`` produces data for every op in ``into``."""
        for target in into:
            self._graph.add_dependency(source, target, data_size)
        return self

    def chain(self, *names: str, data_size: float = 1.0) -> "AlgorithmGraphBuilder":
        """Declare the linear pipeline ``names[0] -> names[1] -> ...``."""
        for source, target in zip(names, names[1:]):
            self._graph.add_dependency(source, target, data_size)
        return self

    def build(self, validate: bool = True) -> AlgorithmGraph:
        """Finish construction, optionally validating the graph."""
        if validate:
            self._graph.validate()
        return self._graph


# ----------------------------------------------------------------------
# canned graph families (handy for tests and ablations)
# ----------------------------------------------------------------------

def linear_chain(length: int, prefix: str = "T", name: str = "chain") -> AlgorithmGraph:
    """``T0 -> T1 -> ... -> T{length-1}``; a graph with zero parallelism."""
    if length < 1:
        raise ValueError("length must be >= 1")
    builder = AlgorithmGraphBuilder(name)
    names = [f"{prefix}{i}" for i in range(length)]
    builder.computation(*names)
    builder.chain(*names)
    return builder.build()


def fork_join(width: int, prefix: str = "T", name: str = "fork-join") -> AlgorithmGraph:
    """One source fanning out to ``width`` parallel ops joined by one sink."""
    if width < 1:
        raise ValueError("width must be >= 1")
    builder = AlgorithmGraphBuilder(name)
    middle = [f"{prefix}{i}" for i in range(width)]
    builder.computation("src", *middle, "sink")
    builder.feeds("src", into=middle)
    builder.depends("sink", on=middle)
    return builder.build()


def diamond(name: str = "diamond") -> AlgorithmGraph:
    """The classic 4-node diamond ``A -> {B, C} -> D``."""
    return (
        AlgorithmGraphBuilder(name)
        .computation("A", "B", "C", "D")
        .feeds("A", into=["B", "C"])
        .depends("D", on=["B", "C"])
        .build()
    )


def independent_tasks(count: int, prefix: str = "T", name: str = "independent") -> AlgorithmGraph:
    """``count`` operations with no dependencies (pure task parallelism)."""
    if count < 1:
        raise ValueError("count must be >= 1")
    builder = AlgorithmGraphBuilder(name)
    builder.computation(*[f"{prefix}{i}" for i in range(count)])
    return builder.build()


def layered(widths: Sequence[int], prefix: str = "T", name: str = "layered") -> AlgorithmGraph:
    """Fully connected consecutive layers of the given widths."""
    if not widths or any(w < 1 for w in widths):
        raise ValueError("widths must be a non-empty sequence of positive ints")
    builder = AlgorithmGraphBuilder(name)
    layers: list[list[str]] = []
    for level, width in enumerate(widths):
        layer = [f"{prefix}{level}_{i}" for i in range(width)]
        builder.computation(*layer)
        layers.append(layer)
    for upper, lower in zip(layers, layers[1:]):
        for source in upper:
            builder.feeds(source, into=lower)
    return builder.build()
