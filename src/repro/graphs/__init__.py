"""Algorithm model: data-flow graphs of operations (paper section 3.2)."""

from repro.graphs.algorithm import AlgorithmGraph, from_dependencies
from repro.graphs.builder import (
    AlgorithmGraphBuilder,
    diamond,
    fork_join,
    independent_tasks,
    layered,
    linear_chain,
)
from repro.graphs.operations import (
    Operation,
    OperationKind,
    is_memory_half,
    memory_base_name,
    memory_read_name,
    memory_write_name,
)

__all__ = [
    "AlgorithmGraph",
    "AlgorithmGraphBuilder",
    "Operation",
    "OperationKind",
    "diamond",
    "fork_join",
    "from_dependencies",
    "independent_tasks",
    "is_memory_half",
    "layered",
    "linear_chain",
    "memory_base_name",
    "memory_read_name",
    "memory_write_name",
]
