"""The algorithm model: a data-flow graph of operations.

Section 3.2 of the paper models the algorithm as a directed graph whose
vertices are operations and whose edges are data-dependencies.  The graph
is executed once per *iteration* (one reaction to sensor inputs).  Within
an iteration the graph must be acyclic once memory operations are expanded
(a ``mem`` behaves like a register: its output precedes its input, so a
cycle through a ``mem`` is legal in the source graph and is broken by the
expansion of :meth:`AlgorithmGraph.expand_memories`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

import networkx as nx

from repro.exceptions import GraphError
from repro.graphs.operations import (
    Operation,
    OperationKind,
    memory_read_name,
    memory_write_name,
)


class AlgorithmGraph:
    """A directed data-flow graph of :class:`Operation` vertices.

    The class wraps a :class:`networkx.DiGraph` and adds the paper's
    domain vocabulary (operations, data-dependencies, sources/sinks,
    levels) plus validation.  All query methods return deterministically
    ordered results so that the scheduler is reproducible.

    Examples
    --------
    >>> alg = AlgorithmGraph()
    >>> _ = alg.add_operation("I", OperationKind.EXTERNAL_IO)
    >>> _ = alg.add_operation("A")
    >>> alg.add_dependency("I", "A")
    >>> alg.predecessors("A")
    ('I',)
    """

    def __init__(self, name: str = "algorithm") -> None:
        self.name = name
        self._graph = nx.DiGraph()
        # Memoized adjacency views: the scheduler asks for the (sorted)
        # predecessors/successors of an operation on every trial plan.
        self._pred_view: dict[str, tuple[str, ...]] = {}
        self._succ_view: dict[str, tuple[str, ...]] = {}
        #: Bumped by every mutation; lets derived-table caches (the
        #: compiled kernel's content hashes) revalidate in O(1).
        self._version = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_operation(
        self,
        operation: Operation | str,
        kind: OperationKind | str = OperationKind.COMPUTATION,
    ) -> Operation:
        """Add a vertex; returns the stored :class:`Operation`.

        ``operation`` may be a ready-made :class:`Operation` or a bare
        name combined with ``kind``.  Adding a name twice with the same
        kind is idempotent; re-adding with a different kind raises
        :class:`~repro.exceptions.GraphError`.
        """
        if isinstance(operation, Operation):
            op = operation
        else:
            op = Operation(str(operation), OperationKind(kind))
        if op.name in self._graph:
            existing: Operation = self._graph.nodes[op.name]["operation"]
            if existing.kind is not op.kind:
                raise GraphError(
                    f"operation {op.name!r} already exists with kind "
                    f"{existing.kind.value!r} (got {op.kind.value!r})"
                )
            return existing
        self._graph.add_node(op.name, operation=op)
        self._version += 1
        return op

    def add_dependency(self, source: str, target: str, data_size: float = 1.0) -> None:
        """Add the data-dependency ``source . target``.

        ``data_size`` is an abstract volume used when communication times
        are derived from link bandwidths instead of explicit tables.
        """
        for endpoint in (source, target):
            if endpoint not in self._graph:
                raise GraphError(f"unknown operation {endpoint!r}")
        if source == target:
            raise GraphError(f"self dependency on {source!r} is not allowed")
        if data_size <= 0:
            raise GraphError(f"data_size must be positive, got {data_size!r}")
        self._graph.add_edge(source, target, data_size=float(data_size))
        self._pred_view.pop(target, None)
        self._succ_view.pop(source, None)
        self._version += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, name: object) -> bool:
        return name in self._graph

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def __iter__(self) -> Iterator[str]:
        return iter(self.operation_names())

    def operation(self, name: str) -> Operation:
        """The :class:`Operation` stored under ``name``."""
        try:
            return self._graph.nodes[name]["operation"]
        except KeyError:
            raise GraphError(f"unknown operation {name!r}") from None

    def operation_names(self) -> tuple[str, ...]:
        """All vertex names, sorted for determinism."""
        return tuple(sorted(self._graph.nodes))

    def operations(self) -> tuple[Operation, ...]:
        """All :class:`Operation` objects, sorted by name."""
        return tuple(self.operation(n) for n in self.operation_names())

    def dependencies(self) -> tuple[tuple[str, str], ...]:
        """All data-dependency edges, sorted for determinism."""
        return tuple(sorted(self._graph.edges))

    def data_size(self, source: str, target: str) -> float:
        """Abstract data volume of the edge ``source . target``."""
        try:
            return self._graph.edges[source, target]["data_size"]
        except KeyError:
            raise GraphError(f"unknown dependency {source!r} -> {target!r}") from None

    def has_dependency(self, source: str, target: str) -> bool:
        """True when the edge ``source . target`` exists."""
        return self._graph.has_edge(source, target)

    def predecessors(self, name: str) -> tuple[str, ...]:
        """Direct predecessors of ``name``, sorted."""
        cached = self._pred_view.get(name)
        if cached is not None:
            return cached
        if name not in self._graph:
            raise GraphError(f"unknown operation {name!r}")
        result = tuple(sorted(self._graph.predecessors(name)))
        self._pred_view[name] = result
        return result

    def successors(self, name: str) -> tuple[str, ...]:
        """Direct successors of ``name``, sorted."""
        cached = self._succ_view.get(name)
        if cached is not None:
            return cached
        if name not in self._graph:
            raise GraphError(f"unknown operation {name!r}")
        result = tuple(sorted(self._graph.successors(name)))
        self._succ_view[name] = result
        return result

    def sources(self) -> tuple[str, ...]:
        """Operations without predecessors (the external input interfaces)."""
        return tuple(n for n in self.operation_names() if self._graph.in_degree(n) == 0)

    def sinks(self) -> tuple[str, ...]:
        """Operations without successors (the external output interfaces)."""
        return tuple(n for n in self.operation_names() if self._graph.out_degree(n) == 0)

    def number_of_dependencies(self) -> int:
        """Number of data-dependency edges."""
        return self._graph.number_of_edges()

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def is_acyclic(self) -> bool:
        """True when the graph is a DAG (memories must be expanded first)."""
        return nx.is_directed_acyclic_graph(self._graph)

    def topological_order(self) -> tuple[str, ...]:
        """A deterministic topological order of the operations."""
        if not self.is_acyclic():
            raise GraphError(f"graph {self.name!r} contains a cycle")
        return tuple(nx.lexicographical_topological_sort(self._graph))

    def levels(self) -> Mapping[str, int]:
        """ASAP level of each operation (sources are level 0)."""
        level: dict[str, int] = {}
        for node in self.topological_order():
            preds = self.predecessors(node)
            level[node] = 0 if not preds else 1 + max(level[p] for p in preds)
        return level

    def heights(self) -> Mapping[str, int]:
        """Height of each operation: longest edge-count path to a sink.

        Sinks have height 0.  Used by the HBP baseline, whose partitioning
        is height-based.
        """
        height: dict[str, int] = {}
        for node in reversed(self.topological_order()):
            succs = self.successors(node)
            height[node] = 0 if not succs else 1 + max(height[s] for s in succs)
        return height

    def descendants(self, name: str) -> frozenset[str]:
        """All operations reachable from ``name`` (excluded)."""
        if name not in self._graph:
            raise GraphError(f"unknown operation {name!r}")
        return frozenset(nx.descendants(self._graph, name))

    def ancestors(self, name: str) -> frozenset[str]:
        """All operations from which ``name`` is reachable (excluded)."""
        if name not in self._graph:
            raise GraphError(f"unknown operation {name!r}")
        return frozenset(nx.ancestors(self._graph, name))

    def memory_operations(self) -> tuple[str, ...]:
        """Names of all ``mem`` vertices, sorted."""
        return tuple(n for n in self.operation_names() if self.operation(n).is_memory())

    # ------------------------------------------------------------------
    # validation / transformation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the structural invariants of an algorithm graph.

        Raises :class:`~repro.exceptions.GraphError` when the graph is
        empty, or when it has a cycle that does not go through a memory
        operation (register cycles are legal; combinational ones are not).
        """
        if len(self) == 0:
            raise GraphError(f"algorithm graph {self.name!r} is empty")
        if self.is_acyclic():
            return
        # A cycle is legal only when it traverses a mem vertex; expansion
        # then breaks it.  Check every simple cycle touches a memory.
        for cycle in nx.simple_cycles(self._graph):
            if not any(self.operation(n).is_memory() for n in cycle):
                raise GraphError(
                    f"combinational cycle {' -> '.join(cycle)} in graph {self.name!r}"
                )

    def expand_memories(self) -> tuple["AlgorithmGraph", Mapping[str, tuple[str, str]]]:
        """Split every ``mem`` M into ``M#read`` (source) and ``M#write``.

        The read half carries M's outgoing edges and the write half its
        incoming edges, which realises the register semantics of section
        3.2 ("the output precedes the input").  Both halves must be
        scheduled on the same processors; the returned mapping
        ``{mem_name: (read_name, write_name)}`` lets the scheduler pin
        them together.  Graphs without memories are returned as-is (same
        object) with an empty mapping.
        """
        mems = self.memory_operations()
        if not mems:
            return self, {}
        expanded = AlgorithmGraph(self.name)
        pairs: dict[str, tuple[str, str]] = {}
        for name in self.operation_names():
            op = self.operation(name)
            if op.is_memory():
                read, write = memory_read_name(name), memory_write_name(name)
                expanded.add_operation(read, OperationKind.MEMORY)
                expanded.add_operation(write, OperationKind.MEMORY)
                pairs[name] = (read, write)
            else:
                expanded.add_operation(op)
        for source, target in self.dependencies():
            size = self.data_size(source, target)
            src = pairs[source][0] if source in pairs else source
            dst = pairs[target][1] if target in pairs else target
            expanded.add_dependency(src, dst, size)
        if not expanded.is_acyclic():
            raise GraphError(
                f"graph {self.name!r} still cyclic after memory expansion"
            )
        return expanded, pairs

    def copy(self) -> "AlgorithmGraph":
        """Deep-enough copy (operations are immutable)."""
        clone = AlgorithmGraph(self.name)
        clone._graph = self._graph.copy()
        return clone

    def to_networkx(self) -> nx.DiGraph:
        """A copy of the underlying :class:`networkx.DiGraph`."""
        return self._graph.copy()

    def __repr__(self) -> str:
        return (
            f"AlgorithmGraph(name={self.name!r}, operations={len(self)}, "
            f"dependencies={self.number_of_dependencies()})"
        )


def from_dependencies(
    edges: Iterable[tuple[str, str]],
    kinds: Mapping[str, OperationKind | str] | None = None,
    name: str = "algorithm",
) -> AlgorithmGraph:
    """Build a graph from an edge list, inferring plain computations.

    ``kinds`` optionally overrides the kind of specific operations.

    >>> g = from_dependencies([("I", "A"), ("A", "O")])
    >>> g.sources(), g.sinks()
    (('I',), ('O',))
    """
    kinds = dict(kinds or {})
    graph = AlgorithmGraph(name)
    seen: set[str] = set()
    for source, target in edges:
        for vertex in (source, target):
            if vertex not in seen:
                graph.add_operation(vertex, kinds.get(vertex, OperationKind.COMPUTATION))
                seen.add(vertex)
        graph.add_dependency(source, target)
    return graph
