"""The full scheduling problem bundle.

The paper's inputs are an algorithm graph ``Alg``, an architecture graph
``Arc``, timing tables ``Exe`` (with distribution constraints ``Dis`` as
``inf`` entries), real-time constraints ``Rtc`` and a failure hypothesis
``Npf``.  :class:`ProblemSpec` groups them so schedulers, the CLI and the
serializers all speak the same vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import SchedulingError
from repro.graphs.algorithm import AlgorithmGraph
from repro.hardware.architecture import Architecture
from repro.timing.comm_times import CommunicationTimes
from repro.timing.constraints import RealTimeConstraints
from repro.timing.exec_times import ExecutionTimes


@dataclass
class ProblemSpec:
    """Everything the distribution heuristic needs (Figure 1 of the paper).

    Parameters
    ----------
    algorithm:
        The data-flow graph ``Alg``.
    architecture:
        The target distributed architecture ``Arc``.
    exec_times:
        Per-(operation, processor) durations; ``inf`` entries encode the
        distribution constraints ``Dis``.
    comm_times:
        Per-(data-dependency, link) durations.
    npf:
        Number of fail-silent processor failures to tolerate.
    rtc:
        Optional real-time constraints ``Rtc``.
    name:
        Identifier used in reports and serialized documents.
    """

    algorithm: AlgorithmGraph
    architecture: Architecture
    exec_times: ExecutionTimes
    comm_times: CommunicationTimes
    npf: int = 0
    rtc: RealTimeConstraints = field(default_factory=RealTimeConstraints)
    name: str = "problem"

    def __post_init__(self) -> None:
        if self.npf < 0:
            raise SchedulingError(f"npf must be >= 0, got {self.npf}")

    @property
    def replication_factor(self) -> int:
        """Minimum number of replicas per operation: ``Npf + 1``."""
        return self.npf + 1

    def validate(self) -> None:
        """Cross-check all the pieces of the problem.

        Verifies the graphs individually, the completeness of both timing
        tables, and that the architecture offers at least ``Npf + 1``
        processors (otherwise no operation can be replicated enough).
        """
        self.algorithm.validate()
        self.architecture.validate()
        processors = self.architecture.processor_names()
        if len(processors) < self.replication_factor:
            raise SchedulingError(
                f"{self.replication_factor} replicas required but architecture "
                f"{self.architecture.name!r} only has {len(processors)} processors"
            )
        self.exec_times.validate_against(self.algorithm.operation_names(), processors)
        links = self.architecture.link_names()
        if links:
            self.comm_times.validate_against(self.algorithm.dependencies(), links)
        elif self.algorithm.dependencies() and len(processors) > 1:
            raise SchedulingError(
                "architecture has several processors but no communication link"
            )

    def __repr__(self) -> str:
        return (
            f"ProblemSpec(name={self.name!r}, operations={len(self.algorithm)}, "
            f"processors={len(self.architecture)}, npf={self.npf})"
        )
