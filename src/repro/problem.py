"""The full scheduling problem bundle.

The paper's inputs are an algorithm graph ``Alg``, an architecture graph
``Arc``, timing tables ``Exe`` (with distribution constraints ``Dis`` as
``inf`` entries), real-time constraints ``Rtc`` and a failure hypothesis
``Npf``.  :class:`ProblemSpec` groups them so schedulers, the CLI and the
serializers all speak the same vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import SchedulingError
from repro.graphs.algorithm import AlgorithmGraph
from repro.hardware.architecture import Architecture
from repro.timing.comm_times import CommunicationTimes
from repro.timing.constraints import RealTimeConstraints
from repro.timing.exec_times import ExecutionTimes


@dataclass
class ProblemSpec:
    """Everything the distribution heuristic needs (Figure 1 of the paper).

    Parameters
    ----------
    algorithm:
        The data-flow graph ``Alg``.
    architecture:
        The target distributed architecture ``Arc``.
    exec_times:
        Per-(operation, processor) durations; ``inf`` entries encode the
        distribution constraints ``Dis``.
    comm_times:
        Per-(data-dependency, link) durations.
    npf:
        Number of fail-silent processor failures to tolerate.
    rtc:
        Optional real-time constraints ``Rtc``.
    name:
        Identifier used in reports and serialized documents.
    npl:
        Number of communication-link failures to tolerate.  The paper
        leaves link failures as future work (``npl = 0`` reproduces its
        engine exactly); with ``npl >= 1`` every inter-processor
        transfer is replicated over ``npl + 1`` link-disjoint routes.
    """

    algorithm: AlgorithmGraph
    architecture: Architecture
    exec_times: ExecutionTimes
    comm_times: CommunicationTimes
    npf: int = 0
    rtc: RealTimeConstraints = field(default_factory=RealTimeConstraints)
    name: str = "problem"
    npl: int = 0

    def __post_init__(self) -> None:
        if self.npf < 0:
            raise SchedulingError(f"npf must be >= 0, got {self.npf}")
        if self.npl < 0:
            raise SchedulingError(f"npl must be >= 0, got {self.npl}")

    @property
    def replication_factor(self) -> int:
        """Minimum number of replicas per operation: ``Npf + 1``."""
        return self.npf + 1

    @property
    def route_replication_factor(self) -> int:
        """Link-disjoint routes per inter-processor transfer: ``Npl + 1``."""
        return self.npl + 1

    def validate(self) -> None:
        """Cross-check all the pieces of the problem.

        Verifies the graphs individually, the completeness of both timing
        tables, and that the architecture offers at least ``Npf + 1``
        processors (otherwise no operation can be replicated enough).
        """
        self.algorithm.validate()
        self.architecture.validate()
        processors = self.architecture.processor_names()
        if len(processors) < self.replication_factor:
            raise SchedulingError(
                f"{self.replication_factor} replicas required but architecture "
                f"{self.architecture.name!r} only has {len(processors)} processors"
            )
        self.exec_times.validate_against(self.algorithm.operation_names(), processors)
        links = self.architecture.link_names()
        if links:
            self.comm_times.validate_against(self.algorithm.dependencies(), links)
        elif self.algorithm.dependencies() and len(processors) > 1:
            raise SchedulingError(
                "architecture has several processors but no communication link"
            )
        if self.npl >= 1 and len(processors) > 1:
            # Replication may place communicating replicas on any
            # processor pair, so every pair must offer Npl + 1
            # link-disjoint routes (the planner's error names the
            # achievable Menger bound).
            self.architecture.route_planner.require_disjoint_routes(
                self.route_replication_factor
            )

    def __repr__(self) -> str:
        return (
            f"ProblemSpec(name={self.name!r}, operations={len(self.algorithm)}, "
            f"processors={len(self.architecture)}, npf={self.npf})"
        )
