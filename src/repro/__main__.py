"""Allow ``python -m repro`` as an alias of the ``ftbar`` script."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
