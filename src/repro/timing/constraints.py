"""Real-time constraints ``Rtc`` and their verification report.

Section 3.1/3.4: ``Rtc`` can be a deadline on the completion date of the
whole schedule, and optionally deadlines on the completion dates of
particular operations.  Because the produced schedule is *static*, every
completion date is known before execution, so the constraints are checked
offline and the result is reported to the designer (who may add hardware
or relax the constraints — the scheduler never fails because of ``Rtc``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.exceptions import ConstraintError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.schedule.schedule import Schedule


@dataclass(frozen=True)
class RtcViolation:
    """A single missed deadline: what, by when, and when it actually ends."""

    subject: str
    deadline: float
    actual: float

    @property
    def lateness(self) -> float:
        """How late the subject completes (always positive)."""
        return self.actual - self.deadline

    def __str__(self) -> str:
        return (
            f"{self.subject}: completes at {self.actual:g}, "
            f"deadline {self.deadline:g} (late by {self.lateness:g})"
        )


@dataclass(frozen=True)
class RtcReport:
    """Outcome of checking a schedule against real-time constraints."""

    satisfied: bool
    makespan: float
    violations: tuple[RtcViolation, ...] = ()

    def __str__(self) -> str:
        if self.satisfied:
            return f"Rtc satisfied (completion {self.makespan:g})"
        lines = [f"Rtc violated (completion {self.makespan:g}):"]
        lines.extend(f"  - {v}" for v in self.violations)
        return "\n".join(lines)


@dataclass(frozen=True)
class RealTimeConstraints:
    """Deadline on the whole schedule plus optional per-operation deadlines.

    Per-operation deadlines are checked against the *latest* replica of
    the operation: with active replication the designer's guarantee must
    hold whichever replica the failure pattern leaves alive.

    Examples
    --------
    >>> rtc = RealTimeConstraints(global_deadline=16.0)
    >>> rtc.global_deadline
    16.0
    """

    global_deadline: float | None = None
    operation_deadlines: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.global_deadline is not None and self.global_deadline <= 0:
            raise ConstraintError(
                f"global deadline must be positive, got {self.global_deadline!r}"
            )
        for operation, deadline in self.operation_deadlines.items():
            if deadline <= 0:
                raise ConstraintError(
                    f"deadline of {operation!r} must be positive, got {deadline!r}"
                )
        object.__setattr__(self, "operation_deadlines", dict(self.operation_deadlines))

    def is_trivial(self) -> bool:
        """True when no constraint is actually specified."""
        return self.global_deadline is None and not self.operation_deadlines

    def check(self, schedule: "Schedule") -> RtcReport:
        """Verify a static schedule against the constraints.

        Unknown operations in ``operation_deadlines`` raise
        :class:`~repro.exceptions.ConstraintError` — a deadline on a
        non-scheduled operation is a specification error, not a pass.
        """
        violations: list[RtcViolation] = []
        makespan = schedule.makespan()
        if self.global_deadline is not None and makespan > self.global_deadline:
            violations.append(
                RtcViolation("<schedule>", self.global_deadline, makespan)
            )
        for operation in sorted(self.operation_deadlines):
            deadline = self.operation_deadlines[operation]
            replicas = schedule.replicas_of(operation)
            if not replicas:
                raise ConstraintError(
                    f"deadline on operation {operation!r} which is not scheduled"
                )
            completion = max(replica.end for replica in replicas)
            if completion > deadline:
                violations.append(RtcViolation(operation, deadline, completion))
        return RtcReport(
            satisfied=not violations,
            makespan=makespan,
            violations=tuple(violations),
        )

    def check_completion(self, makespan: float) -> bool:
        """Quick check of a bare completion date against the global deadline."""
        if self.global_deadline is None:
            return True
        return makespan <= self.global_deadline
