"""Execution-time table ``Exe`` and distribution constraints ``Dis``.

Section 3.4: ``Exe`` associates to each pair ``(operation, processor)``
the execution time of the operation on that processor, in abstract time
units.  The architecture being heterogeneous, times differ per processor.
Distribution constraints ``Dis`` are expressed by the value ``inf``:
``Exe[o, p] = inf`` means ``o`` cannot run on ``p``.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

from repro.exceptions import TimingError

#: The ``Dis`` marker: an operation/processor pair that is forbidden.
FORBIDDEN = math.inf


class ExecutionTimes:
    """Table of per-``(operation, processor)`` execution durations.

    Entries must be explicitly present for every pair the scheduler may
    query; a missing entry raises :class:`~repro.exceptions.TimingError`
    (in the face of ambiguity, refuse the temptation to guess).

    Examples
    --------
    >>> exe = ExecutionTimes()
    >>> exe.set("A", "P1", 2.0)
    >>> exe.forbid("A", "P2")
    >>> exe.is_allowed("A", "P1"), exe.is_allowed("A", "P2")
    (True, False)
    """

    def __init__(self, entries: Mapping[tuple[str, str], float] | None = None) -> None:
        self._times: dict[tuple[str, str], float] = {}
        #: Bumped by every mutation; lets derived-table caches (the
        #: compiled kernel's content hashes) revalidate in O(1).
        self._version = 0
        if entries:
            for (operation, processor), duration in entries.items():
                self.set(operation, processor, duration)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def set(self, operation: str, processor: str, duration: float) -> None:
        """Record the duration of ``operation`` on ``processor``.

        ``duration`` must be positive or ``inf`` (= forbidden).  A zero
        or negative duration is rejected: the schedule-pressure algebra
        assumes strictly positive execution times.
        """
        value = float(duration)
        if not value > 0 and not math.isinf(value):
            raise TimingError(
                f"execution time of {operation!r} on {processor!r} must be "
                f"positive or inf, got {duration!r}"
            )
        self._times[(operation, processor)] = value
        self._version += 1

    def forbid(self, operation: str, processor: str) -> None:
        """Add the distribution constraint ``operation`` not-on ``processor``."""
        self._times[(operation, processor)] = FORBIDDEN
        self._version += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def time_of(self, operation: str, processor: str) -> float:
        """Duration of ``operation`` on ``processor`` (``inf`` = forbidden)."""
        try:
            return self._times[(operation, processor)]
        except KeyError:
            raise TimingError(
                f"no execution time recorded for {operation!r} on {processor!r}"
            ) from None

    def is_allowed(self, operation: str, processor: str) -> bool:
        """True when the pair has a finite execution time."""
        return math.isfinite(self.time_of(operation, processor))

    def has_entry(self, operation: str, processor: str) -> bool:
        """True when the pair is present in the table (even forbidden)."""
        return (operation, processor) in self._times

    def allowed_processors(
        self, operation: str, processors: Iterable[str]
    ) -> tuple[str, ...]:
        """Processors of ``processors`` on which ``operation`` may run, sorted."""
        return tuple(
            sorted(p for p in processors if self.is_allowed(operation, p))
        )

    def average(self, operation: str, processors: Iterable[str]) -> float:
        """Mean duration over the *allowed* processors.

        Used by the static part of the schedule pressure (the bottom
        level ``S̄``), because the priority must not depend on a placement
        that is not chosen yet.  Raises when no processor is allowed.
        """
        finite = [
            self.time_of(operation, p)
            for p in processors
            if self.is_allowed(operation, p)
        ]
        if not finite:
            raise TimingError(f"operation {operation!r} is forbidden everywhere")
        return sum(finite) / len(finite)

    def operations(self) -> tuple[str, ...]:
        """All operation names appearing in the table, sorted."""
        return tuple(sorted({op for op, _ in self._times}))

    def entries(self) -> Mapping[tuple[str, str], float]:
        """A read-only snapshot of the raw table."""
        return dict(self._times)

    def copy(self) -> "ExecutionTimes":
        """An independent copy of the table."""
        return ExecutionTimes(self._times)

    def __len__(self) -> int:
        return len(self._times)

    def __repr__(self) -> str:
        return f"ExecutionTimes(entries={len(self._times)})"

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def uniform(
        cls,
        operations: Iterable[str],
        processors: Iterable[str],
        duration: float,
    ) -> "ExecutionTimes":
        """Same duration for every pair — a homogeneous architecture."""
        table = cls()
        procs = tuple(processors)
        for operation in operations:
            for processor in procs:
                table.set(operation, processor, duration)
        return table

    @classmethod
    def from_rows(
        cls,
        processors: Sequence[str],
        rows: Mapping[str, Sequence[float]],
    ) -> "ExecutionTimes":
        """Build from a paper-style table: one row of durations per op.

        ``rows[op][i]`` is the duration of ``op`` on ``processors[i]``;
        use ``float('inf')`` for forbidden pairs (the paper's ``∞``).
        """
        table = cls()
        for operation, durations in rows.items():
            if len(durations) != len(processors):
                raise TimingError(
                    f"row for {operation!r} has {len(durations)} entries, "
                    f"expected {len(processors)}"
                )
            for processor, duration in zip(processors, durations):
                table.set(operation, processor, duration)
        return table

    def validate_against(
        self,
        operations: Iterable[str],
        processors: Iterable[str],
    ) -> None:
        """Check the table is complete for a problem and nowhere-empty.

        Every ``(operation, processor)`` pair must have an entry, and
        every operation must keep at least one allowed processor.
        """
        procs = tuple(processors)
        times = self._times
        isfinite = math.isfinite
        for operation in operations:
            allowed = False
            for processor in procs:
                value = times.get((operation, processor))
                if value is None:
                    raise TimingError(
                        f"missing execution time for {operation!r} on {processor!r}"
                    )
                if not allowed and isfinite(value):
                    allowed = True
            if not allowed:
                raise TimingError(f"operation {operation!r} is forbidden everywhere")
