"""Timing characterisation: ``Exe``, ``Dis`` and ``Rtc`` (section 3.4)."""

from repro.timing.comm_times import CommunicationTimes
from repro.timing.constraints import RealTimeConstraints, RtcReport, RtcViolation
from repro.timing.exec_times import FORBIDDEN, ExecutionTimes

__all__ = [
    "CommunicationTimes",
    "ExecutionTimes",
    "FORBIDDEN",
    "RealTimeConstraints",
    "RtcReport",
    "RtcViolation",
]
