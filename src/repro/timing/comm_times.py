"""Communication-time table for data-dependencies on links.

Section 3.4: for inter-processor communications, ``Exe`` associates to
each pair ``(data-dependency, communication link)`` the transmission time
of that dependency on that link.  Intra-processor communication takes
zero time and is not tabulated (the scheduler applies that rule itself).
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

from repro.exceptions import TimingError

Edge = tuple[str, str]


class CommunicationTimes:
    """Table of per-``(data-dependency, link)`` transmission durations.

    Examples
    --------
    >>> com = CommunicationTimes()
    >>> com.set(("I", "A"), "L1.2", 1.75)
    >>> com.time_of(("I", "A"), "L1.2")
    1.75
    """

    def __init__(self, entries: Mapping[tuple[Edge, str], float] | None = None) -> None:
        self._times: dict[tuple[Edge, str], float] = {}
        #: Bumped by every mutation; lets derived-table caches (the
        #: compiled kernel's content hashes) revalidate in O(1).
        self._version = 0
        if entries:
            for (edge, link), duration in entries.items():
                self.set(edge, link, duration)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def set(self, edge: Edge, link: str, duration: float) -> None:
        """Record the duration of ``edge`` on ``link`` (must be > 0)."""
        value = float(duration)
        if not value > 0 or math.isinf(value):
            raise TimingError(
                f"communication time of {edge!r} on {link!r} must be a "
                f"positive finite number, got {duration!r}"
            )
        self._times[(self._normalize(edge), link)] = value
        self._version += 1

    @staticmethod
    def _normalize(edge: Edge) -> Edge:
        source, target = edge
        return (str(source), str(target))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def time_of(self, edge: Edge, link: str) -> float:
        """Transmission duration of ``edge`` on ``link``."""
        try:
            return self._times[(self._normalize(edge), link)]
        except KeyError:
            raise TimingError(
                f"no communication time recorded for {edge!r} on {link!r}"
            ) from None

    def has_entry(self, edge: Edge, link: str) -> bool:
        """True when the pair is tabulated."""
        return (self._normalize(edge), link) in self._times

    def average(self, edge: Edge, links: Iterable[str]) -> float:
        """Mean duration over the given links (for static priorities)."""
        durations = [self.time_of(edge, l) for l in links]
        if not durations:
            raise TimingError(f"no links given to average {edge!r} over")
        return sum(durations) / len(durations)

    def edges(self) -> tuple[Edge, ...]:
        """All tabulated data-dependencies, sorted."""
        return tuple(sorted({edge for edge, _ in self._times}))

    def entries(self) -> Mapping[tuple[Edge, str], float]:
        """A read-only snapshot of the raw table."""
        return dict(self._times)

    def copy(self) -> "CommunicationTimes":
        """An independent copy of the table."""
        return CommunicationTimes(self._times)

    def __len__(self) -> int:
        return len(self._times)

    def __repr__(self) -> str:
        return f"CommunicationTimes(entries={len(self._times)})"

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def uniform(
        cls,
        edges: Iterable[Edge],
        links: Iterable[str],
        duration: float,
    ) -> "CommunicationTimes":
        """Same duration for every pair — homogeneous links."""
        table = cls()
        link_names = tuple(links)
        for edge in edges:
            for link in link_names:
                table.set(edge, link, duration)
        return table

    @classmethod
    def from_rows(
        cls,
        links: Sequence[str],
        rows: Mapping[Edge, Sequence[float]],
    ) -> "CommunicationTimes":
        """Build from a paper-style table: one row of durations per edge."""
        table = cls()
        for edge, durations in rows.items():
            if len(durations) != len(links):
                raise TimingError(
                    f"row for {edge!r} has {len(durations)} entries, "
                    f"expected {len(links)}"
                )
            for link, duration in zip(links, durations):
                table.set(edge, link, duration)
        return table

    @classmethod
    def from_bandwidth(
        cls,
        edges_with_sizes: Mapping[Edge, float],
        bandwidths: Mapping[str, float],
        latencies: Mapping[str, float] | None = None,
    ) -> "CommunicationTimes":
        """Derive durations from data sizes and per-link bandwidths.

        ``duration = latency + data_size / bandwidth``.  This is the
        convenient path for synthetic workloads where only data volumes
        are known.
        """
        latencies = dict(latencies or {})
        table = cls()
        for edge, size in edges_with_sizes.items():
            if size <= 0:
                raise TimingError(f"data size of {edge!r} must be positive")
            for link, bandwidth in bandwidths.items():
                if bandwidth <= 0:
                    raise TimingError(f"bandwidth of {link!r} must be positive")
                table.set(edge, link, latencies.get(link, 0.0) + size / bandwidth)
        return table

    def validate_against(
        self,
        edges: Iterable[Edge],
        links: Iterable[str],
    ) -> None:
        """Check the table is complete for a problem."""
        link_names = tuple(links)
        times = self._times
        for edge in edges:
            normalized = (str(edge[0]), str(edge[1]))
            for link in link_names:
                if (normalized, link) not in times:
                    raise TimingError(
                        f"missing communication time for {edge!r} on {link!r}"
                    )
