"""Random workload generator following section 6.1 of the paper.

"A random algorithm graph is generated as follows: given the number of
operations N, we randomly generate a set of levels with a random number
of operations.  Then, operations at a given level are randomly connected
to operations at a higher level.  The execution times of each operation
are randomly selected from a uniform distribution with the mean equal to
the chosen average execution time.  Similarly, the communication times
of each data dependency are randomly selected from a uniform
distribution with the mean equal to the chosen average communication
time."

The two swept parameters are ``N`` and the communication-to-computation
ratio ``CCR`` (average communication time / average computation time).
For the FTBAR-vs-HBP comparison the tables are *homogeneous* (HBP's
assumption; the paper downgrades FTBAR accordingly); the ``Npf`` sweep
(E7) uses heterogeneous tables instead.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.graphs.algorithm import AlgorithmGraph
from repro.hardware.topologies import fully_connected
from repro.problem import ProblemSpec
from repro.timing.comm_times import CommunicationTimes
from repro.timing.exec_times import ExecutionTimes


@dataclass(frozen=True)
class RandomWorkloadConfig:
    """Parameters of one random problem instance.

    Parameters
    ----------
    operations:
        Number of operations ``N`` of the algorithm graph.
    ccr:
        Communication-to-computation ratio; the average communication
        time is ``ccr * mean_execution``.
    processors:
        Size of the fully connected target architecture (the paper uses
        4).
    npf:
        Failure hypothesis carried by the generated problem.
    mean_execution:
        Average execution time of the uniform distribution.
    heterogeneous:
        When False (default) every processor executes an operation in
        the same time and every link transfers a dependency in the same
        time — the homogeneous setting of the HBP comparison.  When True
        each (operation, processor) and (dependency, link) pair is drawn
        independently.
    max_predecessors:
        Upper bound on the number of incoming edges drawn per operation.
    seed:
        Seed of the private :class:`random.Random` generator; equal
        configs generate identical problems.
    """

    operations: int
    ccr: float
    processors: int = 4
    npf: int = 1
    mean_execution: float = 10.0
    heterogeneous: bool = False
    max_predecessors: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.operations < 1:
            raise ValueError("operations must be >= 1")
        if self.ccr <= 0:
            raise ValueError("ccr must be positive")
        if self.processors < 1:
            raise ValueError("processors must be >= 1")
        if self.mean_execution <= 0:
            raise ValueError("mean_execution must be positive")
        if self.max_predecessors < 1:
            raise ValueError("max_predecessors must be >= 1")

    @property
    def mean_communication(self) -> float:
        """Average communication time implied by the CCR."""
        return self.ccr * self.mean_execution


def _uniform_around(rng: random.Random, mean: float) -> float:
    """A positive sample of the uniform distribution with the given mean.

    The paper only fixes the mean; we use the common ``U(0.5m, 1.5m)``
    spread, which keeps every duration strictly positive.
    """
    return rng.uniform(0.5 * mean, 1.5 * mean)


def generate_layers(rng: random.Random, operations: int) -> list[list[str]]:
    """Split ``operations`` vertices into a random number of levels.

    The level count is drawn around ``sqrt(N)`` (between ``sqrt(N)`` and
    ``2*sqrt(N)``), a balanced regime exhibiting both parallelism inside
    levels and depth across them; every level receives at least one
    operation.
    """
    low = max(1, round(math.sqrt(operations)))
    high = max(low, min(operations, 2 * low))
    level_count = rng.randint(low, high)
    layers: list[list[str]] = [[] for _ in range(level_count)]
    names = [f"T{i}" for i in range(operations)]
    # Guarantee non-empty levels, then scatter the rest uniformly.
    for level in range(level_count):
        layers[level].append(names[level])
    for name in names[level_count:]:
        layers[rng.randrange(level_count)].append(name)
    return layers


def generate_algorithm(
    rng: random.Random,
    operations: int,
    max_predecessors: int = 3,
    name: str = "random",
) -> AlgorithmGraph:
    """Generate a levelled random DAG per the paper's recipe."""
    layers = generate_layers(rng, operations)
    graph = AlgorithmGraph(name)
    for layer in layers:
        for operation in layer:
            graph.add_operation(operation)
    below: list[str] = list(layers[0])
    for layer in layers[1:]:
        for operation in layer:
            fan_in = rng.randint(1, min(max_predecessors, len(below)))
            for predecessor in rng.sample(below, fan_in):
                graph.add_dependency(predecessor, operation)
        below.extend(layer)
    return graph


def generate_exec_times(
    rng: random.Random,
    algorithm: AlgorithmGraph,
    processors: tuple[str, ...],
    mean_execution: float,
    heterogeneous: bool,
) -> ExecutionTimes:
    """Uniform execution times with the configured mean."""
    table = ExecutionTimes()
    for operation in algorithm.operation_names():
        if heterogeneous:
            for processor in processors:
                table.set(operation, processor, _uniform_around(rng, mean_execution))
        else:
            duration = _uniform_around(rng, mean_execution)
            for processor in processors:
                table.set(operation, processor, duration)
    return table


def generate_comm_times(
    rng: random.Random,
    algorithm: AlgorithmGraph,
    links: tuple[str, ...],
    mean_communication: float,
    heterogeneous: bool,
) -> CommunicationTimes:
    """Uniform communication times with the configured mean."""
    table = CommunicationTimes()
    for edge in algorithm.dependencies():
        if heterogeneous:
            for link in links:
                table.set(edge, link, _uniform_around(rng, mean_communication))
        else:
            duration = _uniform_around(rng, mean_communication)
            for link in links:
                table.set(edge, link, duration)
    return table


def generate_problem(config: RandomWorkloadConfig) -> ProblemSpec:
    """Generate one full random scheduling problem.

    The architecture is fully connected with point-to-point links, the
    setting of the paper's simulations.
    """
    rng = random.Random(config.seed)
    algorithm = generate_algorithm(
        rng,
        config.operations,
        config.max_predecessors,
        name=f"random-N{config.operations}-seed{config.seed}",
    )
    architecture = fully_connected(config.processors)
    exec_times = generate_exec_times(
        rng,
        algorithm,
        architecture.processor_names(),
        config.mean_execution,
        config.heterogeneous,
    )
    comm_times = generate_comm_times(
        rng,
        algorithm,
        architecture.link_names(),
        config.mean_communication,
        config.heterogeneous,
    )
    return ProblemSpec(
        algorithm=algorithm,
        architecture=architecture,
        exec_times=exec_times,
        comm_times=comm_times,
        npf=config.npf,
        name=f"random-N{config.operations}-ccr{config.ccr:g}-seed{config.seed}",
    )
