"""Classic task-graph families from the DAG-scheduling literature.

Beyond the paper's random levelled graphs, these structured families
are the standard stress tests of scheduling heuristics (Kwok & Ahmad's
benchmark suites): reduction trees, broadcast trees, FFT butterflies,
Gaussian-elimination kernels and linear pipelines.  They all come with
matching timing-table helpers so a full :class:`~repro.problem.
ProblemSpec` is one call away.
"""

from __future__ import annotations

from repro.graphs.algorithm import AlgorithmGraph
from repro.hardware.topologies import fully_connected
from repro.problem import ProblemSpec
from repro.timing.comm_times import CommunicationTimes
from repro.timing.exec_times import ExecutionTimes


def in_tree(depth: int, arity: int = 2, name: str = "in-tree") -> AlgorithmGraph:
    """A reduction tree: ``arity^depth`` leaves reduced to one root.

    Nodes are named ``R<level>_<index>``; level 0 is the leaves and the
    deepest level is the single root, so edges point leaf -> root.
    """
    if depth < 0 or arity < 1:
        raise ValueError("depth must be >= 0 and arity >= 1")
    graph = AlgorithmGraph(name)
    widths = [arity ** (depth - level) for level in range(depth + 1)]
    for level, width in enumerate(widths):
        for index in range(width):
            graph.add_operation(f"R{level}_{index}")
    for level in range(depth):
        for index in range(widths[level]):
            graph.add_dependency(
                f"R{level}_{index}", f"R{level + 1}_{index // arity}"
            )
    return graph


def out_tree(depth: int, arity: int = 2, name: str = "out-tree") -> AlgorithmGraph:
    """A broadcast tree: one root fanning out to ``arity^depth`` leaves."""
    if depth < 0 or arity < 1:
        raise ValueError("depth must be >= 0 and arity >= 1")
    graph = AlgorithmGraph(name)
    widths = [arity ** level for level in range(depth + 1)]
    for level, width in enumerate(widths):
        for index in range(width):
            graph.add_operation(f"B{level}_{index}")
    for level in range(depth):
        for index in range(widths[level + 1]):
            graph.add_dependency(
                f"B{level}_{index // arity}", f"B{level + 1}_{index}"
            )
    return graph


def butterfly(stages: int, name: str = "butterfly") -> AlgorithmGraph:
    """An FFT butterfly: ``2^stages`` rows over ``stages`` exchange steps.

    Node ``F<stage>_<row>`` feeds ``F<stage+1>_<row>`` and its butterfly
    partner ``F<stage+1>_<row XOR 2^stage>``.
    """
    if stages < 0:
        raise ValueError("stages must be >= 0")
    rows = 2 ** stages
    graph = AlgorithmGraph(name)
    for stage in range(stages + 1):
        for row in range(rows):
            graph.add_operation(f"F{stage}_{row}")
    for stage in range(stages):
        for row in range(rows):
            graph.add_dependency(f"F{stage}_{row}", f"F{stage + 1}_{row}")
            graph.add_dependency(
                f"F{stage}_{row}", f"F{stage + 1}_{row ^ (1 << stage)}"
            )
    return graph


def gaussian_elimination(size: int, name: str = "gauss") -> AlgorithmGraph:
    """The task graph of Gaussian elimination on a ``size × size`` matrix.

    Per step ``k``: a pivot task ``P<k>`` feeds the update tasks
    ``U<k>_<row>`` of the remaining rows, each of which feeds the next
    step — the classic triangular DAG used throughout the scheduling
    literature.
    """
    if size < 2:
        raise ValueError("size must be >= 2")
    graph = AlgorithmGraph(name)
    for k in range(size - 1):
        graph.add_operation(f"P{k}")
        for row in range(k + 1, size):
            graph.add_operation(f"U{k}_{row}")
    for k in range(size - 1):
        for row in range(k + 1, size):
            graph.add_dependency(f"P{k}", f"U{k}_{row}")
            if k + 1 < size - 1 and row >= k + 1:
                if row == k + 1:
                    graph.add_dependency(f"U{k}_{row}", f"P{k + 1}")
                else:
                    graph.add_dependency(f"U{k}_{row}", f"U{k + 1}_{row}")
    return graph


def pipeline(stages: int, width: int = 1, name: str = "pipeline") -> AlgorithmGraph:
    """``width`` parallel chains of length ``stages`` (a stream pipeline)."""
    if stages < 1 or width < 1:
        raise ValueError("stages and width must be >= 1")
    graph = AlgorithmGraph(name)
    for lane in range(width):
        previous = None
        for stage in range(stages):
            node = f"S{stage}_{lane}"
            graph.add_operation(node)
            if previous is not None:
                graph.add_dependency(previous, node)
            previous = node
    return graph


def family_problem(
    algorithm: AlgorithmGraph,
    processors: int = 4,
    exec_time: float = 1.0,
    ccr: float = 1.0,
    npf: int = 1,
) -> ProblemSpec:
    """Wrap a family graph into a uniform-timing scheduling problem."""
    architecture = fully_connected(processors)
    exec_times = ExecutionTimes.uniform(
        algorithm.operation_names(), architecture.processor_names(), exec_time
    )
    comm_times = CommunicationTimes.uniform(
        algorithm.dependencies(),
        architecture.link_names(),
        ccr * exec_time,
    )
    return ProblemSpec(
        algorithm=algorithm,
        architecture=architecture,
        exec_times=exec_times,
        comm_times=comm_times,
        npf=npf,
        name=f"{algorithm.name}-p{processors}-ccr{ccr:g}",
    )
