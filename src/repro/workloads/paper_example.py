"""The paper's worked example (Figure 2, Tables 1 and 2, ``Rtc = 16``).

Nine operations — the ``extio`` input ``I``, computations ``A``–``G``
and the ``extio`` output ``O`` — scheduled on three processors fully
connected by heterogeneous point-to-point links, tolerating one
permanent processor failure (``Npf = 1``).

The paper's own run produces a fault-tolerant schedule of length 15.05
(< Rtc = 16), a basic non-fault-tolerant schedule of length 10.7, and
degraded lengths 15.35 / 15.05 / 12.6 when P1 / P2 / P3 crashes at time
0 (Figures 7 and 8).  The benchmark ``bench_paper_example`` compares our
implementation's numbers against these references.
"""

from __future__ import annotations

import math

from repro.graphs.builder import AlgorithmGraphBuilder
from repro.graphs.algorithm import AlgorithmGraph
from repro.hardware.architecture import Architecture
from repro.hardware.link import Link
from repro.problem import ProblemSpec
from repro.timing.comm_times import CommunicationTimes
from repro.timing.constraints import RealTimeConstraints
from repro.timing.exec_times import ExecutionTimes

INF = math.inf

#: Real-time constraint of the example: complete in less than 16 units.
PAPER_RTC = 16.0
#: Failure hypothesis of the example.
PAPER_NPF = 1

#: Schedule lengths the paper reports (section 4.3/4.4), used by the
#: benchmark harness as reference points for the reproduction.
PAPER_FT_LENGTH = 15.05
PAPER_BASIC_LENGTH = 10.7
PAPER_OVERHEAD = PAPER_FT_LENGTH - PAPER_BASIC_LENGTH  # 4.35
PAPER_DEGRADED_LENGTHS = {"P1": 15.35, "P2": 15.05, "P3": 12.6}

#: Table 1 — execution times; columns are P1, P2, P3; ``inf`` is the
#: paper's ``∞`` (distribution constraints ``Dis``).
EXECUTION_TABLE: dict[str, tuple[float, float, float]] = {
    "I": (1.0, 1.3, INF),
    "A": (2.0, 1.5, 1.0),
    "B": (3.0, 1.0, 1.5),
    "C": (2.0, 3.0, 1.0),
    "D": (3.0, 1.7, 3.0),
    "E": (1.0, 1.2, 2.0),
    "F": (2.0, 2.5, 1.0),
    "G": (1.4, 1.0, 1.5),
    "O": (1.4, INF, 1.8),
}

#: Table 2 — communication times; columns are L1.2, L2.3, L1.3.
COMMUNICATION_TABLE: dict[tuple[str, str], tuple[float, float, float]] = {
    ("I", "A"): (1.75, 1.25, 1.25),
    ("A", "B"): (1.0, 0.5, 0.5),
    ("A", "C"): (1.0, 0.5, 0.5),
    ("A", "D"): (1.5, 1.0, 1.0),
    ("A", "E"): (1.0, 0.5, 0.5),
    ("B", "F"): (1.0, 0.5, 0.5),
    ("C", "F"): (1.3, 0.8, 0.8),
    ("D", "G"): (1.9, 1.4, 1.4),
    ("E", "G"): (1.3, 0.8, 0.8),
    ("F", "G"): (1.0, 0.5, 0.5),
    ("G", "O"): (1.1, 0.6, 0.6),
}


def build_algorithm() -> AlgorithmGraph:
    """Figure 2(a): I feeds A; A fans out to B–E; F and G join; G feeds O."""
    return (
        AlgorithmGraphBuilder("paper-example")
        .external_io("I", "O")
        .computation("A", "B", "C", "D", "E", "F", "G")
        .feeds("I", into=["A"])
        .feeds("A", into=["B", "C", "D", "E"])
        .depends("F", on=["B", "C"])
        .depends("G", on=["D", "E", "F"])
        .feeds("G", into=["O"])
        .build()
    )


def build_architecture() -> Architecture:
    """Figure 2(b): P1, P2, P3 with the three point-to-point links."""
    architecture = Architecture("paper-architecture")
    for processor in ("P1", "P2", "P3"):
        architecture.add_processor(processor)
    architecture.add_link(Link.between("L1.2", "P1", "P2"))
    architecture.add_link(Link.between("L2.3", "P2", "P3"))
    architecture.add_link(Link.between("L1.3", "P1", "P3"))
    return architecture


def build_exec_times() -> ExecutionTimes:
    """Table 1 as an :class:`~repro.timing.ExecutionTimes` table."""
    return ExecutionTimes.from_rows(("P1", "P2", "P3"), EXECUTION_TABLE)


def build_comm_times() -> CommunicationTimes:
    """Table 2 as a :class:`~repro.timing.CommunicationTimes` table."""
    return CommunicationTimes.from_rows(
        ("L1.2", "L2.3", "L1.3"), COMMUNICATION_TABLE
    )


def build_problem(npf: int = PAPER_NPF) -> ProblemSpec:
    """The complete example problem (``Npf = 1`` and ``Rtc = 16``)."""
    return ProblemSpec(
        algorithm=build_algorithm(),
        architecture=build_architecture(),
        exec_times=build_exec_times(),
        comm_times=build_comm_times(),
        npf=npf,
        rtc=RealTimeConstraints(global_deadline=PAPER_RTC),
        name="paper-example",
    )
