"""Workload generators: §6.1 random graphs, classic families, the example."""

from repro.workloads.families import (
    butterfly,
    family_problem,
    gaussian_elimination,
    in_tree,
    out_tree,
    pipeline,
)
from repro.workloads.paper_example import (
    PAPER_BASIC_LENGTH,
    PAPER_DEGRADED_LENGTHS,
    PAPER_FT_LENGTH,
    PAPER_NPF,
    PAPER_OVERHEAD,
    PAPER_RTC,
    build_algorithm,
    build_architecture,
    build_comm_times,
    build_exec_times,
    build_problem,
)
from repro.workloads.random_dag import (
    RandomWorkloadConfig,
    generate_algorithm,
    generate_comm_times,
    generate_exec_times,
    generate_layers,
    generate_problem,
)

__all__ = [
    "PAPER_BASIC_LENGTH",
    "PAPER_DEGRADED_LENGTHS",
    "PAPER_FT_LENGTH",
    "PAPER_NPF",
    "PAPER_OVERHEAD",
    "PAPER_RTC",
    "RandomWorkloadConfig",
    "build_algorithm",
    "build_architecture",
    "build_comm_times",
    "build_exec_times",
    "build_problem",
    "butterfly",
    "family_problem",
    "gaussian_elimination",
    "generate_algorithm",
    "generate_comm_times",
    "generate_exec_times",
    "generate_layers",
    "generate_problem",
    "in_tree",
    "out_tree",
    "pipeline",
]
