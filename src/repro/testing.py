"""Hypothesis strategies for testing code built on this library.

Downstream users who extend the scheduler (new cost functions, new
baselines, new runtimes) need randomised problems with the same
invariants our own property tests rely on.  This module packages those
strategies; it requires ``hypothesis`` (part of the ``dev`` extra) and
imports it lazily so the core library stays dependency-light.

Example
-------
>>> from hypothesis import given
>>> from repro.testing import problems
>>> @given(problem=problems(max_operations=8))
... def test_my_scheduler_is_sane(problem):
...     ...
"""

from __future__ import annotations

from repro.workloads.random_dag import RandomWorkloadConfig, generate_problem


def _strategies():
    try:
        from hypothesis import strategies as st
    except ImportError as error:  # pragma: no cover - dev extra installed here
        raise ImportError(
            "repro.testing needs hypothesis: pip install repro[dev]"
        ) from error
    return st


def workload_configs(
    max_operations: int = 12,
    min_operations: int = 1,
    processors: tuple[int, ...] = (2, 3, 4),
    npf_values: tuple[int, ...] = (0, 1),
    ccr_values: tuple[float, ...] = (0.1, 0.5, 1.0, 2.0, 5.0),
    allow_heterogeneous: bool = True,
):
    """A strategy of :class:`~repro.workloads.RandomWorkloadConfig`.

    Configurations always satisfy ``min(processors) >= max(npf) + 1`` is
    *not* enforced — combine with a filter or pick compatible ranges if
    your code requires feasible replication.
    """
    st = _strategies()

    @st.composite
    def build(draw) -> RandomWorkloadConfig:
        heterogeneous = draw(st.booleans()) if allow_heterogeneous else False
        return RandomWorkloadConfig(
            operations=draw(
                st.integers(min_value=min_operations, max_value=max_operations)
            ),
            ccr=draw(st.sampled_from(ccr_values)),
            processors=draw(st.sampled_from(processors)),
            npf=draw(st.sampled_from(npf_values)),
            heterogeneous=heterogeneous,
            seed=draw(st.integers(min_value=0, max_value=100_000)),
        )

    return build()


def problems(
    max_operations: int = 12,
    min_operations: int = 1,
    processors: tuple[int, ...] = (2, 3, 4),
    npf_values: tuple[int, ...] = (0, 1),
    ccr_values: tuple[float, ...] = (0.1, 0.5, 1.0, 2.0, 5.0),
    allow_heterogeneous: bool = True,
    feasible_only: bool = True,
):
    """A strategy of complete, schedulable :class:`~repro.ProblemSpec`.

    With ``feasible_only`` (default) every generated problem has enough
    processors for its ``Npf + 1`` replication.
    """
    st = _strategies()
    configs = workload_configs(
        max_operations=max_operations,
        min_operations=min_operations,
        processors=processors,
        npf_values=npf_values,
        ccr_values=ccr_values,
        allow_heterogeneous=allow_heterogeneous,
    )
    if feasible_only:
        configs = configs.filter(lambda c: c.processors >= c.npf + 1)
    return configs.map(generate_problem)


def algorithm_graphs(max_operations: int = 12, min_operations: int = 1):
    """A strategy of random levelled :class:`~repro.AlgorithmGraph`."""
    return problems(
        max_operations=max_operations,
        min_operations=min_operations,
        npf_values=(0,),
    ).map(lambda problem: problem.algorithm)


__all__ = ["algorithm_graphs", "problems", "workload_configs"]
