"""Append-only JSONL result store making campaigns resumable.

Every completed job appends exactly one line; a line is written with a
single ``write()`` call and flushed (``fsync``) before the runner moves
on, so a killed campaign loses at most the line being written when the
signal landed.  ``load()`` tolerates that torn tail by skipping the
final line when it is not valid JSON.

Corruption never stops an iteration: a corrupt *interior* line (bit
rot, a torn write that later appends glued over, an injected fault)
is skipped and counted — each one surfaces as a structured
``warn.store_corrupt_line`` trace event, a ``store.corrupt_lines``
counter, and an entry in :attr:`ResultStore.corrupt_lines` that
``repro campaign status`` reports.  A skipped line only ever costs a
recompute: the job's digest goes unrecorded, so resume logic simply
runs it again.

Appends are self-healing: each durable write runs under the shared
transient-I/O retry policy (:func:`repro.core.retry.retry_io`), and
every attempt re-repairs the torn tail first — so a fault injected
mid-append (:mod:`repro.faultinject`) costs one backoff, not a record.

Each line separates the *deterministic* measurement record (identical
across runs, worker counts and machines) from the volatile envelope
(wall-clock timing, cache provenance, completion timestamp) so stores
from different runs of the same campaign can be compared byte-for-byte
modulo the envelope.

Besides result lines the store carries *worker event* lines
(``{"event": kind, ...}``) — structured operational facts such as a
directory worker reclaiming an expired lease.  Events are part of the
run's history, not of any job's measurement, so every record accessor
(:meth:`ResultStore.load`, :meth:`~ResultStore.digests`,
:meth:`~ResultStore.diffable_lines`) skips them; they are read back
through :meth:`ResultStore.events` and harvested into a sidecar by
``repro campaign merge``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Iterator

from repro import obs
from repro.core.retry import retry_io
from repro.faultinject import failpoint

#: Envelope keys that legitimately differ between two runs of the same
#: campaign (used by tests and ``diffable_lines``).
VOLATILE_KEYS = ("elapsed_s", "finished_at", "source")


class ResultStore:
    """An append-only JSONL file of per-job results, keyed by digest."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        #: Corrupt interior lines found by the most recent full scan:
        #: ``[{"line": 1-based number, "chars": length}, ...]``.
        self.corrupt_lines: list[dict] = []

    def exists(self) -> bool:
        """True when the store file is present on disk."""
        return self.path.exists()

    def _drop_torn_tail(self) -> None:
        """Truncate a trailing half-written line left by a hard kill.

        Without this, appending to a file whose last write was torn
        would glue the new line onto the fragment, losing both — the
        fragment carries no recoverable result, so cutting it back to
        the last complete line is safe.
        """
        try:
            with open(self.path, "r+b") as handle:
                size = handle.seek(0, os.SEEK_END)
                if size == 0:
                    return
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) == b"\n":
                    return
                handle.seek(0)
                content = handle.read()
                handle.truncate(content.rfind(b"\n") + 1)
        except OSError:  # no store file yet
            return

    def append(
        self,
        digest: str,
        record: dict,
        *,
        elapsed_s: float = 0.0,
        source: str = "computed",
    ) -> None:
        """Durably append one result line (repairing any torn tail)."""
        line = json.dumps(
            {
                "digest": digest,
                "record": record,
                "elapsed_s": elapsed_s,
                "source": source,
                "finished_at": time.time(),
            },
            sort_keys=True,
        )
        self._append_line(line, key=digest)

    def append_event(self, kind: str, **fields) -> None:
        """Durably append one worker-event line (e.g. a lease reclaim).

        Events record *how* a campaign ran (lease reclaims, exhausted
        retries), never *what* it measured — they carry wall-clock data
        and worker identities, so every record accessor skips them and
        ``campaign merge`` routes them to an events sidecar instead of
        the canonical merged store.
        """
        line = json.dumps(
            {"event": kind, **fields, "recorded_at": time.time()},
            sort_keys=True,
        )
        self._append_line(line, key=kind)

    def _append_line(self, line: str, key: str | None = None) -> None:
        def attempt() -> None:
            # Re-repairing on *every* attempt is what makes retries
            # heal a torn write instead of gluing onto the fragment.
            self._drop_torn_tail()
            payload = line + "\n"
            fault = failpoint("store.append.write", key=key)
            if fault is not None:
                payload = fault.apply_text(payload)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(payload)
                handle.flush()
                if fault is not None and fault.kind == "torn_write":
                    raise fault.error()
                failpoint("store.append.fsync", key=key)
                os.fsync(handle.fileno())

        retry_io(attempt, attempts=3, base_s=0.005, cap_s=0.05)

    def lines(self) -> Iterator[dict]:
        """Iterate the recorded lines; corruption is skipped, never fatal.

        A torn *final* line is the expected residue of a killed run and
        is dropped silently (the next append repairs it).  A corrupt
        *interior* line is counted into :attr:`corrupt_lines` and
        reported as a ``warn.store_corrupt_line`` event — the digest it
        carried simply stays unrecorded, so resume recomputes it.
        """
        if not self.path.exists():
            return
        self.corrupt_lines = []
        # errors="replace": external corruption can break UTF-8 itself;
        # a mangled decode then fails JSON parsing below like any other
        # corrupt line instead of killing the whole iteration.
        raw = self.path.read_text(
            encoding="utf-8", errors="replace"
        ).splitlines()
        for number, text in enumerate(raw):
            if not text.strip():
                continue
            try:
                line = json.loads(text)
                if not isinstance(line, dict):
                    raise ValueError("line is not a JSON object")
            except (json.JSONDecodeError, ValueError):
                if number == len(raw) - 1:
                    return  # torn tail of a killed run
                self.corrupt_lines.append(
                    {"line": number + 1, "chars": len(text)}
                )
                obs.event(
                    "warn.store_corrupt_line",
                    store=str(self.path),
                    line=number + 1,
                )
                obs.metrics.inc("store.corrupt_lines")
                continue
            yield line

    def records(self) -> Iterator[dict]:
        """Iterate the result lines only (worker-event lines skipped)."""
        for line in self.lines():
            if "digest" in line:
                yield line

    def events(self) -> Iterator[dict]:
        """Iterate the worker-event lines only (result lines skipped)."""
        for line in self.lines():
            if "event" in line and "digest" not in line:
                yield line

    def load(self) -> dict[str, dict]:
        """Map digest -> deterministic record (last occurrence wins)."""
        return {line["digest"]: line["record"] for line in self.records()}

    def digests(self) -> set[str]:
        """The set of digests already recorded (the resume skip-list)."""
        return {line["digest"] for line in self.records()}

    def diffable_lines(self) -> list[dict]:
        """The recorded lines with the volatile envelope stripped.

        Two runs of the same campaign (uninterrupted vs killed+resumed,
        computed vs cache-served) agree on this view exactly.  Event
        lines are omitted whole: which worker reclaimed which lease is
        legitimately different between two runs.
        """
        stripped = []
        for line in self.records():
            stripped.append(
                {k: v for k, v in line.items() if k not in VOLATILE_KEYS}
            )
        return stripped
