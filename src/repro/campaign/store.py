"""Append-only JSONL result store making campaigns resumable.

Every completed job appends exactly one line; a line is written with a
single ``write()`` call and flushed (``fsync``) before the runner moves
on, so a killed campaign loses at most the line being written when the
signal landed.  ``load()`` tolerates that torn tail by skipping the
final line when it is not valid JSON.

Each line separates the *deterministic* measurement record (identical
across runs, worker counts and machines) from the volatile envelope
(wall-clock timing, cache provenance, completion timestamp) so stores
from different runs of the same campaign can be compared byte-for-byte
modulo the envelope.

Besides result lines the store carries *worker event* lines
(``{"event": kind, ...}``) — structured operational facts such as a
directory worker reclaiming an expired lease.  Events are part of the
run's history, not of any job's measurement, so every record accessor
(:meth:`ResultStore.load`, :meth:`~ResultStore.digests`,
:meth:`~ResultStore.diffable_lines`) skips them; they are read back
through :meth:`ResultStore.events` and harvested into a sidecar by
``repro campaign merge``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Iterator

#: Envelope keys that legitimately differ between two runs of the same
#: campaign (used by tests and ``diffable_lines``).
VOLATILE_KEYS = ("elapsed_s", "finished_at", "source")


class ResultStore:
    """An append-only JSONL file of per-job results, keyed by digest."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def exists(self) -> bool:
        """True when the store file is present on disk."""
        return self.path.exists()

    def _drop_torn_tail(self) -> None:
        """Truncate a trailing half-written line left by a hard kill.

        Without this, appending to a file whose last write was torn
        would glue the new line onto the fragment, losing both — the
        fragment carries no recoverable result, so cutting it back to
        the last complete line is safe.
        """
        try:
            with open(self.path, "r+b") as handle:
                size = handle.seek(0, os.SEEK_END)
                if size == 0:
                    return
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) == b"\n":
                    return
                handle.seek(0)
                content = handle.read()
                handle.truncate(content.rfind(b"\n") + 1)
        except OSError:  # no store file yet
            return

    def append(
        self,
        digest: str,
        record: dict,
        *,
        elapsed_s: float = 0.0,
        source: str = "computed",
    ) -> None:
        """Durably append one result line (repairing any torn tail)."""
        line = json.dumps(
            {
                "digest": digest,
                "record": record,
                "elapsed_s": elapsed_s,
                "source": source,
                "finished_at": time.time(),
            },
            sort_keys=True,
        )
        self._append_line(line)

    def append_event(self, kind: str, **fields) -> None:
        """Durably append one worker-event line (e.g. a lease reclaim).

        Events record *how* a campaign ran (lease reclaims, exhausted
        retries), never *what* it measured — they carry wall-clock data
        and worker identities, so every record accessor skips them and
        ``campaign merge`` routes them to an events sidecar instead of
        the canonical merged store.
        """
        line = json.dumps(
            {"event": kind, **fields, "recorded_at": time.time()},
            sort_keys=True,
        )
        self._append_line(line)

    def _append_line(self, line: str) -> None:
        self._drop_torn_tail()
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def lines(self) -> Iterator[dict]:
        """Iterate the recorded lines, skipping a torn final line."""
        if not self.path.exists():
            return
        raw = self.path.read_text(encoding="utf-8").splitlines()
        for number, text in enumerate(raw):
            if not text.strip():
                continue
            try:
                yield json.loads(text)
            except json.JSONDecodeError:
                if number == len(raw) - 1:
                    return  # torn tail of a killed run
                raise

    def records(self) -> Iterator[dict]:
        """Iterate the result lines only (worker-event lines skipped)."""
        for line in self.lines():
            if "digest" in line:
                yield line

    def events(self) -> Iterator[dict]:
        """Iterate the worker-event lines only (result lines skipped)."""
        for line in self.lines():
            if "event" in line and "digest" not in line:
                yield line

    def load(self) -> dict[str, dict]:
        """Map digest -> deterministic record (last occurrence wins)."""
        return {line["digest"]: line["record"] for line in self.records()}

    def digests(self) -> set[str]:
        """The set of digests already recorded (the resume skip-list)."""
        return {line["digest"] for line in self.records()}

    def diffable_lines(self) -> list[dict]:
        """The recorded lines with the volatile envelope stripped.

        Two runs of the same campaign (uninterrupted vs killed+resumed,
        computed vs cache-served) agree on this view exactly.  Event
        lines are omitted whole: which worker reclaimed which lease is
        legitimately different between two runs.
        """
        stripped = []
        for line in self.records():
            stripped.append(
                {k: v for k, v in line.items() if k not in VOLATILE_KEYS}
            )
        return stripped
