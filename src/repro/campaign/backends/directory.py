"""Work-stealing campaign execution on shared storage.

One campaign directory is the whole coordination substrate — no broker,
no server, no network protocol beyond a filesystem that N worker
processes (on any number of hosts) can all see::

    <dir>/
      campaign.json        the spec (workers re-expand jobs from it)
      claims/<digest>.claim  lease files: owner + attempt, heartbeat mtime
      shards/<worker>.jsonl  per-worker append-only result stores
      cache/               content-addressed schedule cache (shared)

The protocol (Dwork–Halpern–Waarts setting: many workers, independent
idempotent jobs, workers that may stall or die):

* **claim** — a worker takes a job by creating its claim file with
  ``O_CREAT | O_EXCL``: the filesystem arbitrates, exactly one creator
  wins.  The file records owner host/pid/worker-id and the attempt
  number;
* **heartbeat** — while executing, a daemon thread touches the claim
  file's mtime every ``lease_ttl / 4``.  A live worker's lease
  therefore never looks stale, however long the job runs;
* **steal** — a claim whose mtime is older than ``lease_ttl`` belongs
  to a dead (or wedged) worker.  Any worker may reclaim it: unlink the
  stale file, then race a fresh ``O_EXCL`` create (losing the race is
  harmless).  Each reclaim bumps the attempt counter and appends a
  structured ``lease_reclaimed`` event to the stealer's shard;
* **bounded retry** — a job whose claim has died ``max_attempts`` times
  is poisoned (it kills its workers): the stale claim is left as a
  tombstone, a ``retries_exhausted`` event is recorded once per
  observer, and the job stays unrecorded rather than looping forever;
* **done** — the result is appended to the worker's *own* shard (no
  write contention), then the claim is released.  Workers exit when
  every job is recorded in some shard.

Correctness does not rest on the lease being a perfect mutex: jobs are
deterministic and content-addressed, so the worst race (two workers
computing the same job) yields byte-identical records that the merge
(:mod:`repro.campaign.merge`) deduplicates — and any *non*-identical
duplicate is a hard merge conflict, never silent corruption.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

from repro import obs
from repro.campaign.backends import ExecutionBackend
from repro.campaign.cache import ScheduleCache
from repro.campaign.jobs import Job, execute_job, expand_jobs
from repro.core.retry import retry_io
from repro.faultinject import failpoint, set_worker
from repro.campaign.spec import (
    CampaignSpec,
    campaign_from_dict,
    campaign_to_dict,
)
from repro.campaign.store import ResultStore
from repro.exceptions import ReproError
from repro.schedule.serialization import load_json, save_json

#: Default lease time-to-live: a claim untouched this long is stealable.
DEFAULT_LEASE_TTL_S = 30.0

#: Default attempts before a job is declared poisonous.
DEFAULT_MAX_ATTEMPTS = 5


def worker_identity() -> str:
    """This process's worker id: ``<host>-<pid>`` (multi-host unique)."""
    return f"{socket.gethostname()}-{os.getpid()}"


class DirectoryCampaign:
    """One campaign directory: spec, claims, shards, shared cache."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.spec_path = self.root / "campaign.json"
        self.claims_dir = self.root / "claims"
        self.shards_dir = self.root / "shards"
        self.cache_dir = self.root / "cache"

    # -- lifecycle ------------------------------------------------------

    @classmethod
    def initialize(
        cls, spec: CampaignSpec, root: str | Path
    ) -> "DirectoryCampaign":
        """Create (or re-open) the campaign directory for ``spec``.

        Re-initializing an existing directory with the *same* spec is a
        no-op (that is how a crashed dispatch resumes); a different spec
        is refused — one directory is one campaign.
        """
        campaign = cls(root)
        document = campaign_to_dict(spec)
        if campaign.spec_path.exists():
            existing = load_json(campaign.spec_path)
            # Compare specs, not documents: JSON round-trips tuples into
            # lists, so a raw dict comparison would refuse a re-init
            # with the exact same spec.
            if campaign_from_dict(existing) != spec:
                raise ReproError(
                    f"{campaign.spec_path} already holds a different "
                    f"campaign ({existing.get('name')!r}); one directory "
                    "is one campaign"
                )
        else:
            campaign.root.mkdir(parents=True, exist_ok=True)
            save_json(document, campaign.spec_path)
        for directory in (
            campaign.claims_dir, campaign.shards_dir, campaign.cache_dir
        ):
            directory.mkdir(parents=True, exist_ok=True)
        return campaign

    def spec(self) -> CampaignSpec:
        """The campaign spec this directory was initialized with."""
        if not self.spec_path.exists():
            raise ReproError(
                f"{self.root} is not a campaign directory (no campaign.json "
                "— run `repro campaign init` or `campaign run --backend "
                "directory` first)"
            )
        return campaign_from_dict(load_json(self.spec_path))

    def jobs(self) -> list[Job]:
        """The campaign's deduplicated jobs (re-expanded, deterministic)."""
        return expand_jobs(self.spec())

    # -- shards ---------------------------------------------------------

    def shard_paths(self) -> list[Path]:
        """Every worker shard currently present, sorted for determinism."""
        if not self.shards_dir.exists():
            return []
        return sorted(self.shards_dir.glob("*.jsonl"))

    def shard_for(self, worker: str) -> ResultStore:
        """The private result shard of one worker."""
        return ResultStore(self.shards_dir / f"{worker}.jsonl")

    def recorded_digests(self) -> set[str]:
        """Digests recorded in *any* shard (the shared done-set)."""
        done: set[str] = set()
        for path in self.shard_paths():
            done |= ResultStore(path).digests()
        return done

    # -- claims ---------------------------------------------------------

    def claim_path(self, digest: str) -> Path:
        return self.claims_dir / f"{digest}.claim"

    def try_claim(self, digest: str, worker: str, attempt: int = 1) -> bool:
        """Atomically claim one job; exactly one concurrent caller wins."""
        host, _, pid = worker.rpartition("-")
        payload = json.dumps(
            {
                "digest": digest,
                "worker": worker,
                "host": host or socket.gethostname(),
                "pid": os.getpid(),
                "attempt": attempt,
                "claimed_at": time.time(),
            },
            sort_keys=True,
        )
        def attempt_claim() -> bool:
            failpoint("directory.claim.create", key=digest)
            try:
                descriptor = os.open(
                    self.claim_path(digest),
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                )
            except FileExistsError:
                # Losing the race is an answer, not a transient —
                # returned before the retry policy can touch it.
                return False
            fault = failpoint("directory.claim.write", key=digest)
            text = payload if fault is None else fault.apply_text(payload)
            try:
                with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                    handle.write(text)
                if fault is not None and fault.kind == "torn_write":
                    raise fault.error()
            except OSError:
                # A half-written claim is a lie; drop it before the
                # retry, or the O_EXCL create would lose to our own
                # corpse and strand the job behind a garbage lease.
                self.release(digest)
                raise
            return True

        return retry_io(attempt_claim, attempts=3, base_s=0.005, cap_s=0.05)

    def read_claim(self, digest: str) -> dict | None:
        """The claim document of one job, or ``None`` (absent/torn)."""
        try:
            return json.loads(self.claim_path(digest).read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def claim_age_s(self, digest: str) -> float | None:
        """Seconds since the claim's last heartbeat, or ``None``."""
        try:
            return time.time() - self.claim_path(digest).stat().st_mtime
        except OSError:
            return None

    def release(self, digest: str, *, owner: str | None = None) -> None:
        """Drop a claim (idempotent — a racing steal may have won).

        With ``owner``, only a claim that worker still holds is
        dropped: a victim whose lease was stolen must not unlink the
        *stealer's* live claim on its way out — that window would let a
        third worker claim the job yet again.
        """
        if owner is not None:
            claim = self.read_claim(digest)
            if claim is not None and claim.get("worker") != owner:
                return
        try:
            os.unlink(self.claim_path(digest))
        except FileNotFoundError:
            pass

    def renew(self, digest: str) -> None:
        """Heartbeat: refresh the claim's mtime (its lease)."""
        try:
            os.utime(self.claim_path(digest))
        except OSError:
            pass  # claim stolen or released under us; the job is idempotent

    def active_claims(self) -> list[dict]:
        """Every live claim with its owner and age (the status view)."""
        claims = []
        if not self.claims_dir.exists():
            return claims
        for path in sorted(self.claims_dir.glob("*.claim")):
            try:
                document = json.loads(path.read_text())
                age = time.time() - path.stat().st_mtime
            except (OSError, json.JSONDecodeError):
                continue
            document["age_s"] = age
            claims.append(document)
        return claims


class _Heartbeat:
    """Daemon thread renewing one claim's lease while its job runs.

    Renewal *and* detection: each beat re-reads the claim before
    touching it, and the thread flags :attr:`lost` when the claim now
    names another worker (a stealer decided we were dead), when the
    claim stays missing or unrenewable for three beats running, or when
    anything at all kills the thread itself — a silently-dead heartbeat
    would leave the worker computing a job whose lease *will* be
    stolen.  The worker checks :attr:`lost` (plus one direct ownership
    read) immediately before recording, so a stolen lease can never
    yield a duplicate record.
    """

    def __init__(
        self,
        campaign: DirectoryCampaign,
        digest: str,
        interval_s: float,
        worker: str | None = None,
    ) -> None:
        self._campaign = campaign
        self._digest = digest
        self._interval = max(interval_s, 0.02)
        self._worker = worker
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        #: Set once this lease is known to no longer protect the job.
        self.lost = threading.Event()
        #: Why the lease was lost (for the ``lease_lost`` event).
        self.reason: str | None = None

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> bool:
        self._stop.set()
        self._thread.join()
        return False

    def _mark_lost(self, reason: str) -> None:
        self.reason = reason
        self.lost.set()

    def _run(self) -> None:
        strikes = 0
        try:
            while not self._stop.wait(self._interval):
                try:
                    failpoint(
                        "directory.heartbeat.renew", key=self._digest
                    )
                    claim = self._campaign.read_claim(self._digest)
                    if (
                        claim is not None
                        and self._worker is not None
                        and claim.get("worker") != self._worker
                    ):
                        self._mark_lost(
                            f"lease stolen by {claim.get('worker')!r}"
                        )
                        return
                    if claim is None:
                        raise OSError("claim file missing or unreadable")
                    self._campaign.renew(self._digest)
                    strikes = 0
                    obs.event(
                        "campaign.lease_renew", job=self._digest[:12]
                    )
                    obs.metrics.inc("campaign.backend.lease_renewals")
                except OSError as error:
                    strikes += 1
                    if strikes >= 3:
                        self._mark_lost(f"heartbeat failing: {error}")
                        return
        except BaseException as error:
            # Nothing may kill this daemon silently (the classic bug:
            # an unhandled error ends the thread, the claim goes stale,
            # the lease is stolen, and the oblivious victim records a
            # job another worker is re-running).
            self._mark_lost(f"heartbeat thread died: {error!r}")


@dataclass
class WorkerReport:
    """What one :func:`worker_loop` invocation did."""

    worker: str
    executed: int = 0
    cache_hits: int = 0
    reclaims: int = 0
    exhausted: int = 0
    #: Jobs completed but *not* recorded because the lease was lost
    #: (stolen or heartbeat-dead) — the double-execution guard.
    lost_leases: int = 0
    #: Jobs that failed with an I/O error and were released for retry.
    errors: int = 0
    elapsed_s: float = 0.0

    @property
    def completed(self) -> int:
        """Jobs this worker recorded (computed or cache-served)."""
        return self.executed + self.cache_hits

    def summary(self) -> str:
        """One-line human-readable outcome."""
        parts = [
            f"worker {self.worker}: {self.completed} jobs recorded "
            f"({self.executed} executed, {self.cache_hits} cache hits)"
        ]
        if self.reclaims:
            parts.append(f"{self.reclaims} leases reclaimed")
        if self.lost_leases:
            parts.append(f"{self.lost_leases} lost leases abandoned unrecorded")
        if self.errors:
            parts.append(f"{self.errors} jobs errored (released for retry)")
        if self.exhausted:
            parts.append(f"{self.exhausted} jobs abandoned (retries exhausted)")
        parts.append(f"elapsed {self.elapsed_s:.2f}s")
        return ", ".join(parts)


def worker_loop(
    root: str | Path,
    *,
    worker: str | None = None,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    poll_s: float = 0.2,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    delay_s: float = 0.0,
    use_cache: bool = True,
    progress=None,
) -> WorkerReport:
    """Run one work-stealing worker against a campaign directory.

    The loop claims and executes unclaimed pending jobs first; once
    everything pending is claimed by others it turns to stealing:
    leases whose heartbeat has expired are reclaimed (bounded by
    ``max_attempts`` per job), and otherwise the worker polls until the
    shards record every job.  Returns when nothing is left to do —
    which makes ``repro campaign worker <dir>`` safe to point at one
    directory from as many processes and hosts as you like, with zero
    coordination beyond the shared filesystem.

    ``delay_s`` is a fault-injection knob (used by tests and the CI
    dispatch-smoke job): sleep that long between claiming a job and
    executing it, so a kill signal reliably lands mid-lease.
    """
    started = time.perf_counter()
    campaign = DirectoryCampaign(root)
    spec = campaign.spec()
    jobs = expand_jobs(spec)
    worker = worker or worker_identity()
    # Bind the identity fault-plan ``worker`` patterns match against
    # (no-op unless an injection plan is active in this process).
    set_worker(worker)
    shard = campaign.shard_for(worker)
    cache = ScheduleCache(campaign.cache_dir) if use_cache else None
    report = WorkerReport(worker=worker)
    say = progress or (lambda message: None)
    tracer = obs.tracer()
    #: Jobs this worker has given up on (tombstoned claims).
    abandoned: set[str] = set()
    degraded_noted = False

    def drain_cache_events() -> None:
        """Turn cache self-reports into structured shard events."""
        nonlocal degraded_noted
        if cache is None:
            return
        for corruption in cache.pop_corruptions():
            shard.append_event(
                "cache_corrupt",
                job=corruption["digest"],
                reason=corruption["reason"],
                quarantined_to=corruption["quarantined_to"],
                worker=worker,
            )
        if cache.degraded and not degraded_noted:
            degraded_noted = True
            shard.append_event(
                "cache_degraded", root=str(cache.root), worker=worker
            )

    def job_error(job: Job, error: OSError) -> None:
        """Contain one job's I/O failure: note it, release, move on."""
        report.errors += 1
        obs.event("warn.job_error", job=job.digest[:12], error=str(error))
        obs.metrics.inc("campaign.backend.job_errors")
        say(f"[{worker}] error on {job.digest[:12]}: {error}")
        try:
            shard.append_event(
                "job_error", job=job.digest, worker=worker, error=str(error)
            )
        except OSError:
            pass  # the shard itself is hurting; the event is best-effort

    def run_claimed(job: Job, attempt: int) -> None:
        if delay_s:
            time.sleep(delay_s)
        failpoint("directory.worker.claimed", key=job.digest)
        heartbeat = _Heartbeat(
            campaign, job.digest, lease_ttl_s / 4, worker=worker
        )

        def lease_held() -> bool:
            # The async flag alone is not enough: the heartbeat may not
            # have ticked since the steal, so re-read ownership now.
            if heartbeat.lost.is_set():
                return False
            claim = campaign.read_claim(job.digest)
            return claim is not None and claim.get("worker") == worker

        def abandon() -> None:
            # The double-execution guard: our lease stopped protecting
            # this job (stolen, or the heartbeat died), so another
            # worker is — or soon will be — re-running it.  Recording
            # now could race a divergent merge view; walking away is
            # free because the job is idempotent and the stealer's
            # record is bit-identical.
            reason = heartbeat.reason or "claim lost before recording"
            report.lost_leases += 1
            shard.append_event(
                "lease_lost",
                job=job.digest,
                worker=worker,
                attempt=attempt,
                reason=reason,
            )
            obs.event(
                "warn.lease_lost", job=job.digest[:12], reason=reason
            )
            obs.metrics.inc("campaign.backend.leases_lost")
            say(f"[{worker}] abandoning {job.digest[:12]}: {reason}")

        recorded = False
        try:
            with heartbeat:
                entry = cache.get(job.digest) if cache is not None else None
                drain_cache_events()
                if entry is not None:
                    if not lease_held():
                        abandon()
                        return
                    shard.append(job.digest, entry["record"], source="cache")
                    report.cache_hits += 1
                else:
                    document = execute_job(job)
                    if cache is not None:
                        cache.put(job.digest, document)
                        drain_cache_events()
                    failpoint("directory.worker.record", key=job.digest)
                    if not lease_held():
                        abandon()
                        return
                    shard.append(
                        job.digest,
                        document["record"],
                        elapsed_s=document["timing"]["elapsed_s"],
                        source="computed",
                    )
                    report.executed += 1
                recorded = True
            failpoint("directory.worker.release", key=job.digest)
            say(f"[{worker}] {job.index}: {job.digest[:12]} done")
            if tracer is not None and recorded:
                tracer.event(
                    "campaign.job",
                    job=job.digest[:12],
                    index=job.index,
                    worker=worker,
                    attempt=attempt,
                )
        finally:
            campaign.release(job.digest, owner=worker)

    while True:
        done = campaign.recorded_digests()
        for digest in done:
            age = campaign.claim_age_s(digest)
            if age is not None and age >= lease_ttl_s:
                # A worker recorded this job but died before releasing:
                # the work is safe, only the claim is a corpse — sweep
                # it so ``status`` stops listing a phantom active lease.
                campaign.release(digest)
        pending = [
            job
            for job in jobs
            if job.digest not in done and job.digest not in abandoned
        ]
        if not pending:
            break
        progressed = False
        # Pass 1: virgin territory — claim whatever nobody holds.
        for job in pending:
            with obs.span("campaign.claim", job=job.digest[:12]):
                won = campaign.try_claim(job.digest, worker)
            if not won:
                continue
            if job.digest in campaign.recorded_digests():
                # Stale pending list: someone recorded and released this
                # job after our scan — don't recompute it.
                campaign.release(job.digest)
                continue
            obs.metrics.inc("campaign.backend.claims")
            progressed = True
            try:
                run_claimed(job, attempt=1)
            except OSError as error:
                # Transients below already retried and still failed;
                # release happened in run_claimed's finally, so the
                # next scan (here or elsewhere) re-claims the job.
                job_error(job, error)
        if progressed:
            continue
        # Pass 2: everything pending is claimed by someone else — steal
        # any lease whose heartbeat has expired.
        for job in pending:
            age = campaign.claim_age_s(job.digest)
            if age is None or age < lease_ttl_s:
                continue  # live lease (or just released — next scan sees it)
            stale = campaign.read_claim(job.digest) or {}
            attempt = int(stale.get("attempt", 1))
            if attempt >= max_attempts:
                if job.digest not in abandoned:
                    abandoned.add(job.digest)
                    report.exhausted += 1
                    shard.append_event(
                        "retries_exhausted",
                        job=job.digest,
                        attempts=attempt,
                        worker=worker,
                    )
                    obs.event(
                        "warn.retries_exhausted",
                        job=job.digest[:12],
                        attempts=attempt,
                    )
                    obs.metrics.inc("campaign.backend.retries_exhausted")
                    say(
                        f"[{worker}] giving up on {job.digest[:12]} after "
                        f"{attempt} dead leases"
                    )
                continue
            campaign.release(job.digest)  # drop the corpse...
            with obs.span("campaign.claim", job=job.digest[:12], steal=True):
                won = campaign.try_claim(job.digest, worker, attempt + 1)
            if not won:
                continue  # another stealer beat us to the re-create
            if job.digest in campaign.recorded_digests():
                # The victim recorded the result but died before
                # releasing: the work is done, only the claim was stale.
                campaign.release(job.digest)
                continue
            report.reclaims += 1
            progressed = True
            shard.append_event(
                "lease_reclaimed",
                job=job.digest,
                previous_worker=stale.get("worker"),
                attempt=attempt + 1,
                age_s=round(age, 3),
                worker=worker,
            )
            obs.event(
                "warn.lease_reclaimed",
                job=job.digest[:12],
                previous_worker=stale.get("worker"),
                attempt=attempt + 1,
            )
            obs.metrics.inc("campaign.backend.reclaims")
            say(
                f"[{worker}] reclaimed {job.digest[:12]} from "
                f"{stale.get('worker')} (attempt {attempt + 1})"
            )
            try:
                run_claimed(job, attempt=attempt + 1)
            except OSError as error:
                job_error(job, error)
        if not progressed:
            time.sleep(poll_s)
    report.elapsed_s = time.perf_counter() - started
    return report


def _worker_process(root, worker, lease_ttl_s, poll_s, max_attempts) -> None:
    """Entry point of a dispatched worker process (fork-safe)."""
    obs.worker_reset()
    worker_loop(
        root,
        worker=worker,
        lease_ttl_s=lease_ttl_s,
        poll_s=poll_s,
        max_attempts=max_attempts,
    )


class DirectoryBackend(ExecutionBackend):
    """Dispatch a campaign onto directory workers and stream results.

    ``execute`` initializes the campaign directory, spawns ``workers``
    local worker processes against it (more can join from other
    processes or hosts via ``repro campaign worker <dir>``), and tails
    the shards — yielding each result document the moment some worker
    records it, plus any worker-event lines, in completion order.
    Workers write full execution documents into the directory's shared
    content-addressed cache themselves (``manages_cache``), so the
    runner does not re-cache the record-only documents yielded here.
    """

    name = "directory"
    manages_cache = True

    def __init__(
        self,
        root: str | Path,
        workers: int = 1,
        *,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        poll_s: float = 0.2,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> None:
        self.root = Path(root)
        self.workers = workers
        self.lease_ttl_s = lease_ttl_s
        self.poll_s = poll_s
        self.max_attempts = max_attempts

    def execute(
        self, spec: CampaignSpec, jobs: Sequence[Job]
    ) -> Iterator[dict]:
        from repro.campaign.pool import default_worker_count

        campaign = DirectoryCampaign.initialize(spec, self.root)
        count = self.workers if self.workers else default_worker_count()
        count = min(max(count, 1), max(1, len(jobs)))
        processes = [
            multiprocessing.Process(
                target=_worker_process,
                args=(
                    str(self.root),
                    f"{worker_identity()}-w{index}",
                    self.lease_ttl_s,
                    self.poll_s,
                    self.max_attempts,
                ),
                daemon=True,
            )
            for index in range(count)
        ]
        tail = _ShardTail(campaign)
        wanted = {job.digest for job in jobs}
        yielded: set[str] = set()
        try:
            for process in processes:
                process.start()
            while True:
                for document in tail.poll():
                    if "event" in document:
                        yield document
                    elif (
                        document["digest"] in wanted
                        and document["digest"] not in yielded
                    ):
                        yielded.add(document["digest"])
                        yield document
                if wanted <= yielded:
                    break
                if not any(process.is_alive() for process in processes):
                    # Workers exited; one final scan catches the tail,
                    # then whatever is missing stays missing (e.g.
                    # retries exhausted) — the runner reports it.
                    for document in tail.poll():
                        if "event" in document:
                            yield document
                        elif (
                            document["digest"] in wanted
                            and document["digest"] not in yielded
                        ):
                            yielded.add(document["digest"])
                            yield document
                    break
                time.sleep(min(self.poll_s, 0.1))
            for process in processes:
                process.join()
        finally:
            for process in processes:
                if process.is_alive():
                    process.terminate()
            for process in processes:
                process.join()


class _ShardTail:
    """Incremental reader over a campaign's shards (complete lines only)."""

    def __init__(self, campaign: DirectoryCampaign) -> None:
        self._campaign = campaign
        self._offsets: dict[Path, int] = {}

    def poll(self) -> Iterator[dict]:
        """Yield the documents appended since the last poll.

        Result lines come back runner-shaped (``digest`` / ``record`` /
        ``timing.elapsed_s`` / ``source``); event lines come back
        verbatim.  Only byte ranges ending in a newline are consumed —
        a torn in-flight write is left for the next poll.
        """
        for path in self._campaign.shard_paths():
            offset = self._offsets.get(path, 0)
            try:
                with open(path, "rb") as handle:
                    handle.seek(offset)
                    chunk = handle.read()
            except OSError:
                continue
            complete = chunk.rfind(b"\n") + 1
            if not complete:
                continue
            self._offsets[path] = offset + complete
            for raw in chunk[:complete].splitlines():
                if not raw.strip():
                    continue
                try:
                    line = json.loads(raw)
                except json.JSONDecodeError:
                    continue  # torn mid-file line from a killed worker
                if "digest" in line:
                    yield {
                        "digest": line["digest"],
                        "record": line["record"],
                        "timing": {"elapsed_s": line.get("elapsed_s", 0.0)},
                        "source": line.get("source", "computed"),
                    }
                elif "event" in line:
                    yield line
