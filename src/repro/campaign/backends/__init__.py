"""Pluggable campaign execution backends.

The campaign runner is a policy-free loop: expand jobs, skip what the
store and cache already answer, dispatch the rest, persist each result
the moment it exists.  *How* the pending jobs turn into execution
documents is the backend's business, behind one small contract:

* :class:`SerialBackend` (``"serial"``) — in-process, no fork, no
  pickling; the bit-exact legacy path and the debugger's friend;
* :class:`LocalPoolBackend` (``"local"``) — the long-lived
  ``multiprocessing`` pool (the historical default, unchanged
  semantics);
* :class:`DirectoryBackend` (``"directory"``) — a work-stealing queue
  on shared storage: N worker processes (on any number of hosts)
  lease-claim jobs from one campaign directory with zero coordination
  beyond the filesystem, and their per-worker shards merge
  bit-identically (:mod:`repro.campaign.merge`).

Every backend yields the same execution documents in completion order,
so the runner's persistence, caching, telemetry and resume logic are
backend-agnostic.  New transports (SSH fan-out, a job server) slot in
by registering another :class:`ExecutionBackend`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, Sequence

from repro.campaign.jobs import Job
from repro.campaign.spec import BACKENDS, CampaignSpec
from repro.exceptions import ReproError

__all__ = [
    "BACKENDS",
    "DirectoryBackend",
    "ExecutionBackend",
    "LocalPoolBackend",
    "SerialBackend",
    "make_backend",
]


class ExecutionBackend(ABC):
    """One way of turning pending campaign jobs into result documents.

    ``execute`` yields per-job documents in *completion* order.  Result
    documents carry at least ``digest``, ``record``, ``source`` and
    ``timing.elapsed_s``; in-process backends yield the full
    :func:`~repro.campaign.jobs.execute_job` document (schedule and
    telemetry included).  A backend may interleave *event* documents
    (``{"event": kind, ...}``) reporting operational facts — lease
    reclaims, exhausted retries — which the runner records and re-emits
    but never counts as results.
    """

    #: Registry name, also the CLI ``--backend`` value.
    name: str = "?"

    #: True when the backend persists full documents into the campaign's
    #: content-addressed cache itself (the runner then skips its own
    #: ``cache.put`` — the yielded documents may be record-only).
    manages_cache: bool = False

    @abstractmethod
    def execute(
        self, spec: CampaignSpec, jobs: Sequence[Job]
    ) -> Iterator[dict]:
        """Execute ``jobs`` of ``spec``, yielding documents as completed."""


from repro.campaign.backends.directory import DirectoryBackend  # noqa: E402
from repro.campaign.backends.local import LocalPoolBackend  # noqa: E402
from repro.campaign.backends.serial import SerialBackend  # noqa: E402


def make_backend(
    name: str,
    *,
    workers: int = 1,
    directory=None,
    lease_ttl_s: float = 30.0,
    poll_s: float = 0.2,
    max_attempts: int = 5,
) -> ExecutionBackend:
    """Build the named backend with its transport-specific knobs.

    ``workers`` follows the historical ``--jobs`` convention (``0`` =
    one per available CPU); the serial backend ignores it.  The
    directory knobs (``directory``, lease/poll/retry) only matter for
    ``"directory"``, which requires a campaign directory path.
    """
    if name == "serial":
        return SerialBackend()
    if name == "local":
        return LocalPoolBackend(workers=workers)
    if name == "directory":
        if directory is None:
            raise ReproError(
                "the directory backend needs a campaign directory "
                "(--dir PATH on the CLI)"
            )
        return DirectoryBackend(
            directory,
            workers=workers,
            lease_ttl_s=lease_ttl_s,
            poll_s=poll_s,
            max_attempts=max_attempts,
        )
    raise ReproError(
        f"unknown execution backend {name!r}; expected one of {BACKENDS}"
    )
