"""The in-process execution backend: no fork, no pickling, no pool.

Every job runs in the caller's interpreter, one after the other, which
makes this the backend for debugging (breakpoints and tracebacks land
in one process) and the bit-exact reference the experiment harness
compares everything else against.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from repro.campaign.backends import ExecutionBackend
from repro.campaign.jobs import Job, execute_job
from repro.campaign.spec import CampaignSpec


class SerialBackend(ExecutionBackend):
    """Execute jobs sequentially in the current process."""

    name = "serial"

    def __init__(self, execute: Callable[[Job], dict] = execute_job) -> None:
        self._execute = execute

    def execute(
        self, spec: CampaignSpec, jobs: Sequence[Job]
    ) -> Iterator[dict]:
        for job in jobs:
            yield self._execute(job)
