"""The single-host ``multiprocessing`` pool backend.

This wraps the historical :mod:`repro.campaign.pool` machinery —
long-lived forked workers, chunked dispatch, completion-order streaming,
graceful Ctrl-C — behind the :class:`ExecutionBackend` contract without
changing its semantics: ``workers <= 1`` degrades to the sequential
in-process path exactly as ``--jobs 1`` always has.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.campaign.backends import ExecutionBackend
from repro.campaign.jobs import Job
from repro.campaign.pool import execute_jobs
from repro.campaign.spec import CampaignSpec


class LocalPoolBackend(ExecutionBackend):
    """Execute jobs on one host's worker-process pool."""

    name = "local"

    def __init__(self, workers: int = 1, chunk_size: int | None = None) -> None:
        #: ``0`` = one per available CPU, resolved by the pool.
        self.workers = workers
        self.chunk_size = chunk_size

    def execute(
        self, spec: CampaignSpec, jobs: Sequence[Job]
    ) -> Iterator[dict]:
        return execute_jobs(
            list(jobs), worker_count=self.workers, chunk_size=self.chunk_size
        )
