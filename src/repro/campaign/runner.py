"""Campaign orchestration: expand, dispatch, persist, resume, report.

:func:`run_campaign` is the one entry point everything routes through —
the ``campaign`` CLI, the Figure-9/10 experiment harness and the
benchmarks.  The flow per run:

1. expand the spec into deduplicated, content-hashed jobs;
2. with ``resume=True``, skip every job whose digest the result store
   already records (a killed campaign continues where it stopped);
3. serve the remaining jobs from the content-addressed schedule cache
   when possible, dispatching only genuinely new work to the pool;
4. persist every completed result to the store the moment it arrives.

A ``KeyboardInterrupt`` mid-run is caught after the flush of every
completed result: the returned report is marked ``interrupted`` and the
store is ready for ``--resume``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro import obs
from repro.campaign.backends import ExecutionBackend, make_backend
from repro.campaign.cache import ScheduleCache
from repro.campaign.jobs import Job, expand_jobs, reemit_job_telemetry
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore


@dataclass
class CampaignReport:
    """What one :func:`run_campaign` invocation did."""

    name: str
    grid_size: int
    total_jobs: int
    executed: int = 0
    cache_hits: int = 0
    resumed: int = 0
    interrupted: bool = False
    elapsed_s: float = 0.0
    records: dict[str, dict] = field(default_factory=dict)
    jobs: list[Job] = field(default_factory=list)
    backend: str = "local"
    #: Worker-event lines the backend reported (kind -> count), e.g.
    #: ``lease_reclaimed`` when a directory worker stole a dead lease.
    events: dict[str, int] = field(default_factory=dict)

    @property
    def completed(self) -> int:
        """Jobs accounted for by this run (executed, cached or resumed)."""
        return self.executed + self.cache_hits + self.resumed

    def records_in_order(self) -> list[dict]:
        """The deterministic records in canonical grid order."""
        return [
            self.records[job.digest]
            for job in self.jobs
            if job.digest in self.records
        ]

    def summary(self) -> str:
        """One-paragraph human-readable outcome."""
        state = "interrupted" if self.interrupted else "completed"
        return (
            f"campaign {self.name!r} {state}: "
            f"{self.completed}/{self.total_jobs} jobs "
            f"({self.grid_size} grid points, "
            f"{self.grid_size - self.total_jobs} deduplicated) — "
            f"{self.executed} executed, "
            f"cache hits: {self.cache_hits}/{self.total_jobs}, "
            f"resumed: {self.resumed}, "
            f"elapsed {self.elapsed_s:.2f}s"
            + (
                " — worker events: "
                + ", ".join(
                    f"{kind}: {count}"
                    for kind, count in sorted(self.events.items())
                )
                if self.events
                else ""
            )
        )


def run_campaign(
    spec: CampaignSpec,
    *,
    jobs: int = 1,
    store: ResultStore | str | Path | None = None,
    cache: ScheduleCache | str | Path | None = None,
    resume: bool = False,
    progress: Callable[[str], None] | None = None,
    backend: ExecutionBackend | str | None = None,
    directory: str | Path | None = None,
    lease_ttl_s: float = 30.0,
    max_attempts: int = 5,
) -> CampaignReport:
    """Run a campaign and return its report.

    ``jobs`` is the worker count (``1`` = sequential in-process, the
    bit-exact legacy path; ``0`` = one worker per available CPU).
    ``store`` and ``cache`` are optional: without a store the records
    only live in the report; without a cache every pending job is
    computed.

    ``backend`` selects the execution transport — an
    :class:`~repro.campaign.backends.ExecutionBackend` instance, a
    registry name, or ``None`` for the spec's own ``backend`` field
    (default ``"local"``, the historical pool path — the legacy
    signature is bit-exact unchanged).  The remaining keywords only
    matter for the ``"directory"`` backend: the campaign directory and
    its lease/retry protocol knobs.
    """
    started = time.perf_counter()
    if store is not None and not isinstance(store, ResultStore):
        store = ResultStore(store)
    if cache is not None and not isinstance(cache, ScheduleCache):
        cache = ScheduleCache(cache)
    if not isinstance(backend, ExecutionBackend):
        backend = make_backend(
            backend or spec.backend,
            workers=jobs,
            directory=directory,
            lease_ttl_s=lease_ttl_s,
            max_attempts=max_attempts,
        )
    say = progress or (lambda message: None)
    tracer = obs.tracer()

    with (
        tracer.span("campaign.expand", campaign=spec.name)
        if tracer is not None
        else obs.NOOP_SPAN
    ):
        expanded = expand_jobs(spec)
    report = CampaignReport(
        name=spec.name,
        grid_size=spec.grid_size,
        total_jobs=len(expanded),
        jobs=expanded,
        backend=backend.name,
    )
    by_digest = {job.digest: job for job in expanded}

    pending = expanded
    recorded = (
        store.load() if store is not None and store.exists() else {}
    )
    stored_digests = set(recorded)
    if resume and recorded:
        for job in expanded:
            if job.digest in recorded:
                report.records[job.digest] = recorded[job.digest]
                report.resumed += 1
        pending = [job for job in expanded if job.digest not in report.records]
        if report.resumed:
            say(f"resume: {report.resumed} jobs already recorded")

    degraded_noted = False

    def note_cache_health() -> None:
        """Surface cache self-reports (corruption, ENOSPC degradation).

        Quarantined entries and a read-only flip are operational facts
        of the run: they become store events and ``warn.*`` trace
        events exactly like backend worker events do.
        """
        nonlocal degraded_noted
        if cache is None:
            return
        for corruption in cache.pop_corruptions():
            report.events["cache_corrupt"] = (
                report.events.get("cache_corrupt", 0) + 1
            )
            if store is not None:
                store.append_event(
                    "cache_corrupt",
                    job=corruption["digest"],
                    reason=corruption["reason"],
                    quarantined_to=corruption["quarantined_to"],
                )
            if tracer is not None:
                tracer.event(
                    "warn.cache_corrupt",
                    job=corruption["digest"][:12],
                    reason=corruption["reason"],
                )
        if cache.degraded and not degraded_noted:
            degraded_noted = True
            report.events["cache_degraded"] = (
                report.events.get("cache_degraded", 0) + 1
            )
            if store is not None:
                store.append_event("cache_degraded", root=str(cache.root))
            say(f"cache degraded read-only (out of space): {cache.root}")

    try:
        to_compute: list[Job] = []
        for job in pending:
            entry = cache.get(job.digest) if cache is not None else None
            if entry is not None:
                report.records[job.digest] = entry["record"]
                report.cache_hits += 1
                # Don't re-append a line the store already carries —
                # repeated cache-served reruns must not grow the store.
                if store is not None and job.digest not in stored_digests:
                    store.append(job.digest, entry["record"], source="cache")
            else:
                to_compute.append(job)
        note_cache_health()
        if report.cache_hits:
            say(f"cache: {report.cache_hits} jobs served from {cache.root}")

        with (
            tracer.span(
                "campaign.dispatch",
                campaign=spec.name,
                jobs=len(to_compute),
                workers=jobs,
                backend=backend.name,
            )
            if tracer is not None
            else obs.NOOP_SPAN
        ):
            for document in backend.execute(spec, to_compute):
                if "event" in document and "digest" not in document:
                    # A worker-event line (lease reclaim, exhausted
                    # retries): operational history, not a result.
                    kind = str(document["event"])
                    report.events[kind] = report.events.get(kind, 0) + 1
                    detail = {
                        k: v
                        for k, v in document.items()
                        if k not in ("event", "recorded_at")
                    }
                    if store is not None:
                        store.append_event(kind, **detail)
                    if tracer is not None:
                        tracer.event("warn." + kind, **detail)
                    say(f"worker event: {kind} ({detail.get('job', '?')})")
                    continue
                digest = document["digest"]
                record = document["record"]
                if digest in report.records:
                    continue  # raced steal recomputed it; idempotent
                report.records[digest] = record
                source = document.get("source", "computed")
                if source == "cache":
                    report.cache_hits += 1
                else:
                    report.executed += 1
                if cache is not None and not backend.manages_cache:
                    cache.put(digest, document)
                    note_cache_health()
                if store is not None:
                    store.append(
                        digest,
                        record,
                        elapsed_s=document["timing"]["elapsed_s"],
                        source=source,
                    )
                if tracer is not None:
                    reemit_job_telemetry(tracer, by_digest[digest], document)
                say(
                    f"[{report.completed}/{report.total_jobs}] "
                    f"{by_digest[digest].index}: {record['problem']}"
                )
    except KeyboardInterrupt:
        report.interrupted = True
        say("interrupted — every completed job is persisted; rerun with --resume")

    report.elapsed_s = time.perf_counter() - started
    if tracer is not None:
        metrics = obs.metrics
        metrics.inc("campaign.jobs.executed", report.executed)
        metrics.inc("campaign.jobs.cache_hits", report.cache_hits)
        metrics.inc("campaign.jobs.resumed", report.resumed)
        metrics.gauge("campaign.jobs.pending", len(expanded) - len(report.records))
        metrics.observe("campaign.run_s", report.elapsed_s)
        for kind, count in report.events.items():
            metrics.inc(f"campaign.events.{kind}", count)
    return report


# ----------------------------------------------------------------------
# status / report
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CampaignStatus:
    """Progress of a campaign against its result store."""

    name: str
    total_jobs: int
    done: int
    #: Corrupt interior store lines skipped while scanning (each one
    #: is a digest that will be recomputed, plus a forensics lead).
    corrupt_lines: int = 0

    @property
    def pending(self) -> int:
        """Jobs not yet recorded."""
        return self.total_jobs - self.done

    @property
    def percent(self) -> float:
        """Completion percentage."""
        return 100.0 * self.done / self.total_jobs if self.total_jobs else 100.0

    def summary(self) -> str:
        """One-line progress report."""
        line = (
            f"campaign {self.name!r}: {self.done}/{self.total_jobs} jobs done "
            f"({self.percent:.0f}%), {self.pending} pending"
        )
        if self.corrupt_lines:
            line += f" — {self.corrupt_lines} corrupt store lines skipped"
        return line


def campaign_status(spec: CampaignSpec, store: ResultStore) -> CampaignStatus:
    """How far a campaign has progressed in a result store."""
    expanded = expand_jobs(spec)
    recorded = store.digests()
    done = sum(1 for job in expanded if job.digest in recorded)
    return CampaignStatus(
        name=spec.name,
        total_jobs=len(expanded),
        done=done,
        corrupt_lines=len(store.corrupt_lines),
    )


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def campaign_report(spec: CampaignSpec, store: ResultStore) -> str:
    """Aggregate a campaign's recorded results into a text table.

    Rows group by (workload family, topology, npf): job counts, mean
    FTBAR makespan, mean overhead versus the non-fault-tolerant baseline
    (when measured) and the fraction of injected failure scenarios whose
    outputs were delivered.
    """
    expanded = expand_jobs(spec)
    recorded = store.load()
    groups: dict[tuple[str, str, int, int], list[dict]] = {}
    for job in expanded:
        record = recorded.get(job.digest)
        if record is not None:
            key = (job.workload.family, job.topology, job.npf, job.npl)
            groups.setdefault(key, []).append(record)

    # The npf column reads "npf/npl" only when the grid sweeps npl,
    # keeping the historical table for processor-only campaigns.
    with_npl = any(npl for _, _, _, npl in groups)
    headers = [
        "family", "topology",
        "npf/npl" if with_npl else "npf",
        "jobs", "makespan", "overhead%", "delivered",
    ]
    rows: list[list[str]] = []
    for (family, topology, npf, npl), records in sorted(groups.items()):
        makespans = [r["ftbar"]["makespan"] for r in records]
        overheads = [
            (r["ftbar"]["makespan"] - r["non_ft"]["makespan"])
            / r["ftbar"]["makespan"]
            * 100.0
            for r in records
            if "non_ft" in r and r["ftbar"]["makespan"] > 0
        ]
        injections = [
            entry
            for r in records
            for entry in r.get("failures", [])
            if entry.get("delivered") is not None
        ]
        delivered = (
            f"{sum(1 for e in injections if e['delivered'])}/{len(injections)}"
            if injections
            else "-"
        )
        rows.append(
            [
                family,
                topology,
                f"{npf}/{npl}" if with_npl else str(npf),
                str(len(records)),
                f"{_mean(makespans):.2f}",
                f"{_mean(overheads):.1f}" if overheads else "-",
                delivered,
            ]
        )
    if not rows:
        return f"campaign {spec.name!r}: no recorded results in {store.path}"

    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * width for width in widths),
    ]
    lines += [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in rows
    ]
    missing = len(expanded) - sum(len(records) for records in groups.values())
    if missing:
        lines.append(f"({missing} jobs not yet recorded)")
    return "\n".join(lines)


def reliability_heatmap(
    spec: CampaignSpec, store: ResultStore, value: str = "reliability"
) -> str:
    """Render the campaign's reliability heatmap from its result store.

    Rows are the grid's ``npfs`` axis, columns the reliability spec's
    per-processor failure probabilities; each cell aggregates every
    recorded job of that ``npf`` (mean across workloads, topologies,
    CCRs and seeds).  ``value`` selects the cell quantity:

    * ``"reliability"`` — mean probability that one iteration delivers
      all outputs;
    * ``"mttf"`` — mean iterations to the first unmasked failure
      (``inf`` when every recorded job is fully reliable);
    * ``"certified"`` — fraction of jobs whose certificate holds.
    """
    if value not in ("reliability", "mttf", "certified"):
        raise ValueError(f"unknown heatmap value {value!r}")
    if spec.reliability is None:
        return (
            f"campaign {spec.name!r} has no reliability spec — add "
            f'"reliability" to its measures'
        )
    expanded = expand_jobs(spec)
    recorded = store.load()
    # cells[(npf, npl)][probability] -> list of per-job values; jobs
    # with different link hypotheses must never average into one cell.
    cells: dict[tuple[int, int], dict[float, list[float]]] = {}
    for job in expanded:
        record = recorded.get(job.digest)
        if record is None or "reliability" not in record:
            continue
        block = record["reliability"]
        row = cells.setdefault((job.npf, job.npl), {})
        for point in block["sweep"]:
            if value == "reliability":
                cell = point["reliability"]
            elif value == "mttf":
                mttf = point["mttf_iterations"]
                cell = math.inf if mttf is None else mttf
            else:
                cell = 1.0 if block["certified"] else 0.0
            row.setdefault(point["probability"], []).append(cell)
    if not cells:
        return (
            f"campaign {spec.name!r}: no reliability records in {store.path}"
        )

    probabilities = sorted({q for row in cells.values() for q in row})
    # Rows label npl only when the grid sweeps it, keeping the
    # historical rendering for processor-only campaigns.
    with_npl = any(npl for _, npl in cells)
    headers = [("npf/npl \\ q" if with_npl else "npf \\ q")] + [
        f"{q:g}" for q in probabilities
    ]
    rows = []
    for npf, npl in sorted(cells):
        row = [f"{npf}/{npl}" if with_npl else str(npf)]
        for q in probabilities:
            values = cells[(npf, npl)].get(q)
            row.append(_format_cell(_mean(values), value) if values else "-")
        rows.append(row)
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows))
        for i in range(len(headers))
    ]
    lines = [
        f"{value} heatmap — campaign {spec.name!r}",
        "  ".join(h.rjust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * width for width in widths),
    ]
    lines += [
        "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        for row in rows
    ]
    return "\n".join(lines)


def _format_cell(mean: float, value: str) -> str:
    if math.isinf(mean):
        return "inf"
    if value == "mttf":
        return f"{mean:.3g}"
    return f"{mean:.6f}"
