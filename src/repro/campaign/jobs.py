"""Deterministic expansion of a campaign spec into content-hashed jobs.

Every grid point of a :class:`~repro.campaign.spec.CampaignSpec` becomes
one :class:`Job`.  A job's ``digest`` is the SHA-256 of the canonical
JSON of the *problem it builds* plus the scheduler options, measures and
failure scenarios — so two jobs that would schedule the same problem the
same way share a digest, are deduplicated at expansion time, and hit the
same entry of the content-addressed cache across campaigns.

Jobs are plain picklable dataclasses: the worker pool ships the
coordinate, not the built problem, and rebuilds it deterministically in
the worker process.
"""

from __future__ import annotations

import math
import random
import warnings
from dataclasses import asdict, dataclass
from typing import Mapping

from repro import obs
from repro.analysis.reliability import CertificationCapWarning
from repro.baselines.hbp import schedule_hbp
from repro.baselines.list_scheduler import schedule_non_fault_tolerant
from repro.core.compile import compile_cache_stats
from repro.core.ftbar import schedule_ftbar
from repro.core.options import SchedulerOptions
from repro.campaign.spec import (
    CampaignSpec,
    FailureSpec,
    ReliabilitySpec,
    WorkloadSpec,
)
from repro.exceptions import CompiledFallbackWarning, SerializationError
from repro.faultinject import failpoint
from repro.analysis.metrics import degraded_lengths
from repro.analysis.reliability import (
    event_boundary_times,
    fault_tolerance_certificate,
    mean_time_to_failure_iterations,
    schedule_reliability,
)
from repro.simulation.batch import BatchScenarioEngine
from repro.hardware.architecture import Architecture
from repro.hardware.topologies import fully_connected, ring, single_bus, star
from repro.problem import ProblemSpec
from repro.schedule.serialization import (
    content_hash,
    problem_to_dict,
    schedule_to_dict,
)
from repro.simulation.executor import DetectionPolicy, simulate
from repro.simulation.failures import FailureScenario
from repro.workloads import families
from repro.workloads.random_dag import (
    RandomWorkloadConfig,
    generate_algorithm,
    generate_comm_times,
    generate_exec_times,
    generate_problem,
)

_TOPOLOGY_BUILDERS = {
    "fully_connected": fully_connected,
    "single_bus": single_bus,
    "ring": ring,
    "star": star,
}


@dataclass(frozen=True)
class Job:
    """One unit of campaign work: a problem coordinate plus its digest."""

    index: int
    campaign: str
    workload: WorkloadSpec
    topology: str
    processors: int
    npf: int
    ccr: float
    seed: int
    failures: tuple[FailureSpec, ...]
    measures: tuple[str, ...]
    options: Mapping[str, bool]
    mean_execution: float
    digest: str
    reliability: ReliabilitySpec | None = None
    npl: int = 0

    def coordinate(self) -> dict:
        """The grid coordinate of this job as a JSON-compatible dict."""
        return {
            "workload": asdict(self.workload),
            "topology": self.topology,
            "processors": self.processors,
            "npf": self.npf,
            "npl": self.npl,
            "ccr": self.ccr,
            "seed": self.seed,
        }

    def scheduler_options(self) -> SchedulerOptions:
        """Scheduler configuration this job runs with."""
        return SchedulerOptions(**dict(self.options))


def build_architecture(topology: str, processors: int) -> Architecture:
    """Build the named architecture topology."""
    try:
        builder = _TOPOLOGY_BUILDERS[topology]
    except KeyError:
        raise SerializationError(f"unknown topology {topology!r}") from None
    return builder(processors)


def _family_graph(workload: WorkloadSpec):
    if workload.family == "in_tree":
        return families.in_tree(workload.size, workload.arity)
    if workload.family == "out_tree":
        return families.out_tree(workload.size, workload.arity)
    if workload.family == "butterfly":
        return families.butterfly(workload.size)
    if workload.family == "gauss":
        return families.gaussian_elimination(workload.size)
    if workload.family == "pipeline":
        return families.pipeline(workload.size, workload.arity)
    raise SerializationError(f"unknown workload family {workload.family!r}")


def build_problem(
    workload: WorkloadSpec,
    topology: str,
    processors: int,
    npf: int,
    ccr: float,
    seed: int,
    mean_execution: float = 10.0,
    npl: int = 0,
) -> ProblemSpec:
    """Deterministically build the problem of one grid coordinate.

    ``random`` workloads on the ``fully_connected`` topology go through
    :func:`~repro.workloads.random_dag.generate_problem` verbatim, so a
    campaign over the paper's setting produces *bit-identical* problems
    to the legacy Figure-9/10 sweeps.  Every other coordinate draws its
    timing tables from the same seeded uniform distributions, which
    makes the ``seeds`` axis meaningful for the structured families too.
    """
    if workload.family == "random" and topology == "fully_connected":
        problem = generate_problem(
            RandomWorkloadConfig(
                operations=workload.size,
                ccr=ccr,
                processors=processors,
                npf=npf,
                mean_execution=mean_execution,
                heterogeneous=workload.heterogeneous,
                max_predecessors=workload.max_predecessors,
                seed=seed,
            )
        )
        problem.npl = npl
        return problem
    rng = random.Random(seed)
    if workload.family == "random":
        algorithm = generate_algorithm(
            rng,
            workload.size,
            workload.max_predecessors,
            name=f"random-N{workload.size}-seed{seed}",
        )
    else:
        algorithm = _family_graph(workload)
    architecture = build_architecture(topology, processors)
    exec_times = generate_exec_times(
        rng,
        algorithm,
        architecture.processor_names(),
        mean_execution,
        workload.heterogeneous,
    )
    comm_times = generate_comm_times(
        rng,
        algorithm,
        architecture.link_names(),
        ccr * mean_execution,
        workload.heterogeneous,
    )
    return ProblemSpec(
        algorithm=algorithm,
        architecture=architecture,
        exec_times=exec_times,
        comm_times=comm_times,
        npf=npf,
        npl=npl,
        name=(
            f"{algorithm.name}-{topology}-p{processors}"
            f"-npf{npf}"
            + (f"-npl{npl}" if npl else "")
            + f"-ccr{ccr:g}-seed{seed}"
        ),
    )


def job_problem(job: Job) -> ProblemSpec:
    """Rebuild the problem a job schedules (deterministic)."""
    return build_problem(
        job.workload,
        job.topology,
        job.processors,
        job.npf,
        job.ccr,
        job.seed,
        job.mean_execution,
        npl=job.npl,
    )


def job_digest(
    problem: ProblemSpec,
    options: Mapping[str, bool],
    measures: tuple[str, ...],
    failures: tuple[FailureSpec, ...],
    reliability: ReliabilitySpec | None = None,
) -> str:
    """Content hash identifying a job: problem + configuration."""
    document = {
        "problem": problem_to_dict(problem),
        "options": dict(options),
        "measures": list(measures),
        "failures": [asdict(f) for f in failures],
    }
    if reliability is not None:
        # Only hashed when present so pre-existing digests (and their
        # cache entries) stay valid for campaigns without the measure;
        # unset link knobs are dropped for the same reason — a spec
        # predating link tolerance must keep its digests.
        spec_document = asdict(reliability)
        for knob in ("max_link_failures", "link_probability", "budget"):
            if spec_document.get(knob) is None:
                del spec_document[knob]
        # Default-valued sampling knobs are likewise dropped: a spec
        # predating sampled certification must keep its digests.
        for knob, default in (
            ("method", "auto"), ("confidence", 0.99), ("seed", 0)
        ):
            if spec_document.get(knob) == default:
                del spec_document[knob]
        document["reliability"] = spec_document
    return content_hash("job", document)


def expand_jobs(spec: CampaignSpec) -> list[Job]:
    """Expand a spec into its deduplicated, deterministically-ordered jobs.

    Grid points whose problems (and configuration) hash identically are
    collapsed onto the first occurrence — identical work is never
    scheduled twice, the content-addressed guarantee of the subsystem.
    """
    jobs: list[Job] = []
    seen: set[str] = set()
    reliability = spec.reliability if "reliability" in spec.measures else None
    for index, coordinate in enumerate(spec.coordinates()):
        workload, topology, processors, npf, npl, ccr, seed = coordinate
        problem = build_problem(
            workload, topology, processors, npf, ccr, seed,
            spec.mean_execution, npl=npl,
        )
        digest = job_digest(
            problem, spec.options, spec.measures, spec.failures, reliability
        )
        if digest in seen:
            continue
        seen.add(digest)
        jobs.append(
            Job(
                index=index,
                campaign=spec.name,
                workload=workload,
                topology=topology,
                processors=processors,
                npf=npf,
                npl=npl,
                ccr=ccr,
                seed=seed,
                failures=spec.failures,
                measures=spec.measures,
                options=dict(spec.options),
                mean_execution=spec.mean_execution,
                digest=digest,
                reliability=reliability,
            )
        )
    return jobs


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------

def execute_job(job: Job) -> dict:
    """Run one job and return its cacheable document.

    The returned document has two parts: ``record`` — the deterministic
    measurement record written to the result store (identical across
    runs, machines and worker counts) — and ``schedule`` / ``timing`` —
    the serialized FTBAR schedule and the run's volatile telemetry.

    Every job runs under a private in-memory tracer (installed as the
    process tracer for the job's duration), so the scheduler and batch
    engine spans land in the job's own stream whether or not the parent
    traces.  The ``timing`` section is derived from that stream:
    ``elapsed_s`` is the ``job.run`` root span's duration, and the new
    ``obs`` subsection carries the per-phase span totals plus the
    worker heartbeat.  Structured warnings raised while the job runs
    (:class:`~repro.exceptions.CompiledFallbackWarning`,
    :class:`~repro.analysis.reliability.CertificationCapWarning`) are
    additionally recorded — deterministically, without timestamps — as
    ``record["events"]``, then re-emitted for the caller.
    """
    # Chaos-harness hook: models slow or dying compute (sleep past a
    # lease TTL, kill mid-job) on any backend; no-op in production.
    failpoint("worker.execute", key=job.digest)
    exporter = obs.ListExporter()
    tracer = obs.Tracer(
        exporter, meta={"job": job.digest[:12], "campaign": job.campaign}
    )
    with obs.scoped(tracer), warnings.catch_warnings(record=True) as caught:
        # Record every occurrence: the default once-per-location filter
        # would hide repeats inside a long-lived worker process.
        warnings.simplefilter("always")
        with tracer.span("job.run", job=job.digest[:12], index=job.index):
            record, schedule_document, compile_delta = _execute(job, tracer)
    for entry in caught:
        warnings.warn_explicit(
            entry.message, entry.category, entry.filename, entry.lineno
        )
    events = _warning_events(caught)
    if events:
        # Deterministic (no wall-clock data), so the store records which
        # jobs fell back or were cap-sampled; omitted when empty to keep
        # the historical record shape.
        record["events"] = events
    spans = obs.aggregate_spans(exporter.lines)
    meta_line = exporter.lines[0]
    return {
        "digest": job.digest,
        "record": record,
        "schedule": schedule_document,
        "timing": {
            "elapsed_s": sum(
                entry["total_s"] for entry in spans
                if entry["name"] == "job.run"
            ),
            "compile_cache": compile_delta,
            "obs": {
                "worker": meta_line["pid"],
                "started_wall": meta_line["started_wall"],
                "spans": spans,
            },
        },
    }


def reemit_job_telemetry(tracer, job: Job, document: dict) -> None:
    """Fold one worker's job telemetry into the parent trace.

    Workers trace into in-memory streams (their fork must not touch the
    parent's file — see :func:`repro.campaign.pool._init_worker`); the
    dispatching process re-emits the shipped summary: one
    ``campaign.job`` completion event carrying the worker heartbeat, the
    job's per-phase aggregate spans, and one event per structured
    warning the job recorded.
    """
    timing = document.get("timing", {})
    telemetry = timing.get("obs", {})
    tracer.event(
        "campaign.job",
        job=job.digest[:12],
        index=job.index,
        worker=telemetry.get("worker"),
        started_wall=telemetry.get("started_wall"),
        elapsed_s=timing.get("elapsed_s"),
    )
    for entry in telemetry.get("spans", ()):
        tracer.aggregate(
            entry["name"],
            entry["total_s"],
            entry["count"],
            job=job.digest[:12],
        )
    for event in document["record"].get("events", ()):
        tracer.event(
            "job." + event["kind"],
            job=job.digest[:12],
            **{k: v for k, v in event.items() if k != "kind"},
        )


def _execute(job: Job, tracer) -> tuple[dict, dict, dict]:
    """The job's measurement phases, spanned under the job tracer."""
    compile_before = compile_cache_stats()
    with tracer.span("job.build_problem"):
        problem = job_problem(job)
    options = job.scheduler_options()
    measures = set(job.measures)

    with tracer.span("job.schedule", problem=problem.name):
        ftbar = schedule_ftbar(problem, options)
    record: dict = {
        "problem": problem.name,
        "coordinate": job.coordinate(),
        "ftbar": {
            "makespan": ftbar.makespan,
            "rtc_satisfied": ftbar.rtc_satisfied,
            "replicas": ftbar.schedule.replica_count(),
            "comms": ftbar.schedule.comm_count(),
            "pressure_evaluations": ftbar.stats.pressure_evaluations,
        },
    }
    if "non_ft" in measures:
        with tracer.span("job.baseline", kind="non_ft"):
            record["non_ft"] = {
                "makespan": schedule_non_fault_tolerant(
                    problem, options
                ).makespan
            }
    hbp = None
    if "hbp" in measures:
        with tracer.span("job.baseline", kind="hbp"):
            hbp = schedule_hbp(problem)
        record["hbp"] = {"makespan": hbp.makespan}
    if "degraded" in measures and job.npf >= 1:
        with tracer.span("job.degraded"):
            degraded: dict = {
                "ftbar": degraded_lengths(
                    ftbar.schedule, ftbar.expanded_algorithm
                )
            }
            if hbp is not None:
                degraded["hbp"] = degraded_lengths(
                    hbp.schedule, problem.algorithm
                )
        record["degraded"] = degraded
    if "reliability" in measures and job.reliability is not None:
        with tracer.span("job.certify"):
            record["reliability"] = _certify(job.reliability, ftbar)
    if job.failures:
        with tracer.span("job.inject", scenarios=len(job.failures)):
            record["failures"] = [
                _inject(job, failure, ftbar, problem)
                for failure in job.failures
            ]
    # The compile-cache delta goes in the volatile ``timing`` section,
    # not ``record``: whether this job's CompiledProblem core was a memo
    # hit depends on which jobs ran before it in this process, so it
    # would break record determinism across worker counts.
    compile_after = compile_cache_stats()
    with tracer.span("job.serialize"):
        schedule_document = schedule_to_dict(ftbar.schedule)
    compile_delta = {
        key: compile_after[key] - compile_before[key]
        for key in (
            "core_hits",
            "core_misses",
            "variant_hits",
            "variant_misses",
        )
    }
    return record, schedule_document, compile_delta


def _warning_events(caught) -> list[dict]:
    """Deterministic event entries for the structured warnings caught.

    Occurrence order, deduplicated; only wall-clock-free fields, so the
    result is byte-identical across runs, machines and worker counts.
    """
    events: list[dict] = []
    for entry in caught:
        message = entry.message
        if isinstance(message, CertificationCapWarning):
            event = {
                "kind": "certification_cap",
                "resources": list(message.resources),
                "cap": message.cap,
                "enumerated_subsets": message.enumerated_subsets,
                "total_subsets": message.total_subsets,
            }
        elif isinstance(message, CompiledFallbackWarning):
            event = {"kind": "compiled_fallback"}
        else:
            continue
        if event not in events:
            events.append(event)
    return events


def _certify(spec: ReliabilitySpec, ftbar) -> dict:
    """Certify one FTBAR schedule and sweep its failure probabilities.

    One batched scenario engine serves the certificate and every point
    of the probability sweep, so the crash-subset verdicts are simulated
    once per equivalence class for the whole record.  The record is
    deterministic: identical across runs, machines and worker counts.
    """
    schedule = ftbar.schedule
    algorithm = ftbar.expanded_algorithm
    times = (
        event_boundary_times(schedule, limit=spec.boundary_limit)
        if spec.crash_times == "boundaries"
        else (0.0,)
    )
    engine = BatchScenarioEngine(schedule, algorithm, spec.detection)
    certificate = fault_tolerance_certificate(
        schedule,
        algorithm,
        max_failures=spec.max_failures,
        crash_times=times,
        detection=spec.detection,
        engine=engine,
        max_link_failures=spec.max_link_failures,
        method=spec.method,
        confidence=spec.confidence,
        budget=spec.budget,
        seed=spec.seed,
    )
    link_probabilities = (
        {l: spec.link_probability for l in schedule.link_names()}
        if spec.link_probability is not None
        else None
    )
    sweep = []
    for probability in spec.probabilities:
        report = schedule_reliability(
            schedule,
            algorithm,
            {p: probability for p in schedule.processor_names()},
            crash_times=times,
            detection=spec.detection,
            engine=engine,
            link_failure_probabilities=link_probabilities,
            method=spec.method,
            confidence=spec.confidence,
            budget=spec.budget,
            seed=spec.seed,
        )
        mttf = mean_time_to_failure_iterations(report.reliability)
        point = {
            "probability": probability,
            "reliability": report.reliability,
            "guaranteed_lower_bound": report.guaranteed_lower_bound,
            # None instead of inf: the records must stay strict JSON.
            "mttf_iterations": None if math.isinf(mttf) else mttf,
        }
        if report.method == "sampled":
            point["method"] = "sampled"
            point["ci"] = list(report.ci)
            point["samples"] = report.samples
        sweep.append(point)
    record = {
        "certified": certificate.certified,
        "crash_times": len(times),
        "levels": [
            {
                "failures": level.failures,
                "masked": level.masked_subsets,
                "total": level.total_subsets,
                # Key emitted only for combined levels so npl = 0
                # records keep their historical shape.
                **(
                    {"link_failures": level.link_failures}
                    if level.link_failures
                    else {}
                ),
                # Sampling keys likewise only when the level was not
                # resolved by plain enumeration.
                **(
                    {"method": level.method}
                    if level.method != "exact"
                    else {}
                ),
                **(
                    {"population": level.population}
                    if level.population is not None
                    and level.population != level.total_subsets
                    else {}
                ),
                **(
                    {"estimate": level.estimate, "ci": list(level.ci)}
                    if level.method == "sampled" and level.ci is not None
                    else {}
                ),
            }
            for level in certificate.levels
        ],
        "sweep": sweep,
        "scenarios": engine.stats.scenarios,
        "simulated": engine.stats.simulated,
    }
    if certificate.npl:
        record["npl"] = certificate.npl
    if certificate.method == "sampled":
        record["method"] = "sampled"
        record["verdict"] = certificate.verdict
        record["confidence"] = certificate.confidence
        record["samples"] = certificate.samples
        record["seed"] = certificate.seed
    return record


def _inject(
    job: Job, failure: FailureSpec, ftbar, problem: ProblemSpec
) -> dict:
    """Simulate one failure scenario against the job's FTBAR schedule."""
    names = problem.architecture.processor_names()
    if any(i >= len(names) for i in failure.processors) or not failure.processors:
        # The architecture is too small for this scenario: skip it
        # rather than silently simulating a weaker crash set.
        entry = {"processors": [], "at": failure.at}
        entry.update(delivered=None, makespan=None, skipped=True)
        return entry
    processors = [names[i] for i in failure.processors]
    entry = {"processors": processors, "at": failure.at}
    scenario = FailureScenario.crashes(processors, failure.at)
    trace = simulate(
        ftbar.schedule, ftbar.expanded_algorithm, scenario, DetectionPolicy.NONE
    )
    completion = trace.outputs_completion(ftbar.expanded_algorithm)
    entry.update(
        delivered=completion is not None,
        makespan=trace.makespan(),
        outputs_at=completion,
    )
    return entry
