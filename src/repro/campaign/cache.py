"""Content-addressed on-disk store of computed schedules.

The cache maps a job digest (see :func:`repro.campaign.jobs.job_digest`)
to the job's full execution document: the deterministic measurement
record plus the serialized FTBAR schedule.  Because the key is a content
hash of the problem and configuration, the cache is shared *across*
campaigns — any campaign that expands to an already-solved problem reads
the schedule back instead of recomputing it.

Entries are sharded two-hex-characters deep (``ab/abcdef....json``) so
directories stay small on large corpora, and written atomically
(temp file + ``os.replace``) so a killed campaign never leaves a torn
entry behind.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.exceptions import SerializationError


class ScheduleCache:
    """A content-addressed directory of executed-job documents."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, digest: str) -> Path:
        """Where the entry of one digest lives (sharded by prefix)."""
        if len(digest) < 3:
            raise SerializationError(f"invalid cache digest {digest!r}")
        return self.root / digest[:2] / f"{digest}.json"

    def __contains__(self, digest: str) -> bool:
        return self.path_for(digest).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("??/*.json"))

    def get(self, digest: str) -> dict | None:
        """Read one entry, or ``None`` when absent or unreadable.

        A corrupt entry (torn write from a hard kill predating the
        atomic-rename path, manual tampering) is treated as a miss so
        the job is simply recomputed.
        """
        path = self.path_for(digest)
        try:
            document = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if document.get("digest") != digest:
            return None
        return document

    def put(self, digest: str, document: dict) -> Path:
        """Atomically write one entry; last writer wins."""
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        temporary = path.parent / f".{path.name}.{os.getpid()}.tmp"
        temporary.write_text(json.dumps(document, sort_keys=True))
        os.replace(temporary, path)
        return path
