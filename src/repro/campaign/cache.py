"""Content-addressed on-disk store of computed schedules.

The cache maps a job digest (see :func:`repro.campaign.jobs.job_digest`)
to the job's full execution document: the deterministic measurement
record plus the serialized FTBAR schedule.  Because the key is a content
hash of the problem and configuration, the cache is shared *across*
campaigns — any campaign that expands to an already-solved problem reads
the schedule back instead of recomputing it.

Entries are sharded two-hex-characters deep (``ab/abcdef....json``) so
directories stay small on large corpora, and written atomically
(temp file + ``os.replace``) so a killed campaign never leaves a torn
entry behind.

A cached document is **never trusted on faith**:

* every entry is wrapped in a checksum envelope — ``{"checksum":
  sha256(canonical payload), "payload": document}`` — verified on every
  read (entries from before the envelope are still accepted);
* an entry that fails the checksum, carries the wrong digest, or does
  not parse is moved to ``<cache>/quarantine/`` for forensics, reported
  through :meth:`ScheduleCache.pop_corruptions` (the campaign layer
  turns those into structured ``cache_corrupt`` store events) and the
  job is recomputed;
* ``ENOSPC`` on a write flips the cache **read-only** instead of
  failing jobs: a full disk costs cache misses, never results.  The
  flip warns once per instance with
  :class:`~repro.exceptions.CacheDegradedWarning`.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import warnings
from contextlib import suppress
from pathlib import Path

from repro import obs
from repro.core.retry import retry_io
from repro.exceptions import CacheDegradedWarning, SerializationError
from repro.faultinject import failpoint


def _checksum(payload: dict) -> str:
    """SHA-256 over the canonical serialization of one cached document."""
    body = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(body.encode()).hexdigest()


class ScheduleCache:
    """A content-addressed directory of executed-job documents."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.quarantine_dir = self.root / "quarantine"
        self._degraded = False
        self._corruptions: list[dict] = []

    @property
    def degraded(self) -> bool:
        """True once ``ENOSPC`` flipped this cache read-only."""
        return self._degraded

    def pop_corruptions(self) -> list[dict]:
        """Drain the corrupt entries found since the last drain.

        Each entry: ``{"digest", "reason", "quarantined_to"}``.  The
        campaign layer appends these as ``cache_corrupt`` store events
        so a quarantined entry leaves an audit trail, not just a miss.
        """
        drained, self._corruptions = self._corruptions, []
        return drained

    def path_for(self, digest: str) -> Path:
        """Where the entry of one digest lives (sharded by prefix)."""
        if len(digest) < 3:
            raise SerializationError(f"invalid cache digest {digest!r}")
        return self.root / digest[:2] / f"{digest}.json"

    def __contains__(self, digest: str) -> bool:
        return self.path_for(digest).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("??/*.json"))

    def get(self, digest: str) -> dict | None:
        """Read one verified entry, or ``None`` when absent or corrupt.

        A corrupt entry (failed checksum, wrong digest, unparseable
        bytes) is quarantined — never trusted, never silently served —
        and the caller recomputes the job.
        """
        path = self.path_for(digest)
        if not path.exists():
            return None
        try:
            failpoint("cache.get.read", key=digest)
            document = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._quarantine(digest, path, "unreadable entry")
            return None
        payload, reason = self._verify(digest, document)
        if payload is None:
            self._quarantine(digest, path, reason)
            return None
        return payload

    def _verify(self, digest: str, document) -> tuple[dict | None, str]:
        """Validate one raw cache document -> (payload, failure reason)."""
        if not isinstance(document, dict):
            return None, "entry is not a JSON object"
        if "checksum" in document and "payload" in document:
            payload = document["payload"]
            if not isinstance(payload, dict):
                return None, "payload is not a JSON object"
            if _checksum(payload) != document["checksum"]:
                return None, "checksum mismatch"
            if payload.get("digest") != digest:
                return None, "digest mismatch"
            return payload, ""
        # Legacy entry from before the checksum envelope: the digest
        # self-identification is the only integrity check available.
        if document.get("digest") != digest:
            return None, "digest mismatch"
        return document, ""

    def _quarantine(self, digest: str, path: Path, reason: str) -> None:
        quarantined: str | None = None
        with suppress(OSError):
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            target = self.quarantine_dir / f"{path.name}.{os.getpid()}"
            os.replace(path, target)
            quarantined = str(target)
        self._corruptions.append(
            {"digest": digest, "reason": reason, "quarantined_to": quarantined}
        )
        obs.event("warn.cache_corrupt", digest=digest[:12], reason=reason)
        obs.metrics.inc("cache.corrupt_entries")

    def put(self, digest: str, document: dict) -> Path | None:
        """Atomically write one checksummed entry; last writer wins.

        Returns the entry path, or ``None`` when the write was skipped
        (cache degraded read-only) or failed — a cache write is always
        best-effort: the job's result is already safe in the store.
        """
        if self._degraded:
            return None
        path = self.path_for(digest)
        body = json.dumps(
            {"checksum": _checksum(document), "payload": document},
            sort_keys=True,
        )
        temporary = path.parent / f".{path.name}.{os.getpid()}.tmp"

        def attempt() -> None:
            fault = failpoint("cache.put.write", key=digest)
            text = body
            if fault is not None:
                text = fault.apply_text(text)
            temporary.write_text(text)
            if fault is not None and fault.kind == "torn_write":
                raise fault.error()
            failpoint("cache.put.replace", key=digest)
            os.replace(temporary, path)

        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # ENOSPC is an answer, not a transient: don't retry it.
            retry_io(
                attempt,
                attempts=3,
                base_s=0.005,
                cap_s=0.05,
                should_retry=lambda e: getattr(e, "errno", None)
                != errno.ENOSPC,
            )
        except OSError as error:
            with suppress(OSError):
                temporary.unlink()
            if getattr(error, "errno", None) == errno.ENOSPC:
                self._degrade(error)
            else:
                obs.event(
                    "warn.cache_put_failed",
                    digest=digest[:12],
                    error=str(error),
                )
                obs.metrics.inc("cache.put_failures")
            return None
        return path

    def _degrade(self, error: OSError) -> None:
        self._degraded = True
        warnings.warn(
            CacheDegradedWarning(
                f"schedule cache {self.root} is out of space ({error}); "
                "continuing read-only — existing entries keep serving, "
                "new results are computed but not cached"
            ),
            stacklevel=3,
        )
        obs.event("warn.cache_degraded", root=str(self.root), error=str(error))
        obs.metrics.gauge("cache.degraded", 1)
