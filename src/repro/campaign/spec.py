"""Declarative campaign specifications.

A *campaign* is a family of scheduling experiments described as a grid:
workload families x topologies x processor counts x Npf x Npl x CCR x
seeds, optionally decorated with failure-injection scenarios and a
scheduler configuration.  The spec is plain data — JSON-(de)serializable — so the
same campaign can be launched from the CLI, from the experiment
harness, or replayed on another machine, and its expansion into
:class:`~repro.campaign.jobs.Job` objects is deterministic.

The supported workload families are the repo's structured graphs
(:mod:`repro.workloads.families`) plus the paper's random levelled DAGs
(:mod:`repro.workloads.random_dag`).
"""

from __future__ import annotations

import itertools
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterator, Mapping

from repro.core.options import SchedulerOptions
from repro.exceptions import SerializationError
from repro.schedule.serialization import load_json, save_json

SPEC_FORMAT_VERSION = 1

#: Workload families a spec may sweep over.
FAMILIES = ("in_tree", "out_tree", "butterfly", "gauss", "pipeline", "random")

#: Architecture topologies a spec may sweep over.
TOPOLOGIES = ("fully_connected", "single_bus", "ring", "star")

#: Quantities a job may compute (``ftbar`` is always measured).
MEASURES = ("ftbar", "non_ft", "hbp", "degraded", "reliability")

#: Crash-instant policies of the ``reliability`` measure.
CRASH_TIME_POLICIES = ("zero", "boundaries")

#: Execution backends a spec may select (see :mod:`repro.campaign.backends`).
BACKENDS = ("local", "serial", "directory")


@dataclass(frozen=True)
class WorkloadSpec:
    """One workload family with its size parameters.

    ``size`` is the family's natural knob: tree depth for ``in_tree`` /
    ``out_tree``, stage count for ``butterfly`` and ``pipeline``, matrix
    size for ``gauss``, and the operation count ``N`` for ``random``.
    ``arity`` is the tree fan-in/out (or the pipeline width); the last
    two fields only matter for ``random`` graphs.
    """

    family: str
    size: int
    arity: int = 2
    heterogeneous: bool = False
    max_predecessors: int = 3

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise SerializationError(
                f"unknown workload family {self.family!r}; expected one of {FAMILIES}"
            )
        if self.size < 1:
            raise SerializationError("workload size must be >= 1")
        if self.family == "gauss" and self.size < 2:
            raise SerializationError("gauss workload size must be >= 2")
        if self.arity < 1:
            raise SerializationError("workload arity must be >= 1")


@dataclass(frozen=True)
class FailureSpec:
    """A failure-injection scenario applied to every job of the grid.

    ``processors`` are indices into the architecture's processor list
    (0-based), so the same spec works across topologies and processor
    counts; jobs whose architecture is too small skip the scenario.
    """

    processors: tuple[int, ...]
    at: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "processors", tuple(self.processors))
        if any(index < 0 for index in self.processors):
            raise SerializationError("failure processor indices must be >= 0")


@dataclass(frozen=True)
class ReliabilitySpec:
    """Configuration of the ``reliability`` measure (certification jobs).

    Every job certifies its FTBAR schedule with the batched scenario
    engine and sweeps ``probabilities`` as the uniform per-processor
    failure probability — one reliability/MTTF figure per probability,
    the columns of a campaign heatmap (the ``npfs`` axis of the grid
    provides the rows).  ``crash_times`` selects the crash instants:
    ``"zero"`` is the paper's worst case (t = 0), ``"boundaries"``
    crashes at up to ``boundary_limit`` static event start dates.
    """

    probabilities: tuple[float, ...] = (0.01,)
    crash_times: str = "zero"
    boundary_limit: int = 16
    max_failures: int | None = None
    detection: str = "none"
    #: Combined enumeration bound on broken links (None = the job
    #: schedule's own ``npl``, so link-tolerant schedules are certified
    #: against exactly what they promise).
    max_link_failures: int | None = None
    #: Uniform per-link failure probability for the reliability sweep
    #: (None keeps the processor-only probability sum).
    link_probability: float | None = None
    #: Certification method: ``"auto"`` (adaptive bounds/sampling past
    #: the enumeration cap), ``"exact"`` (legacy capped enumeration) or
    #: ``"sampled"``.  The defaults of these four knobs are dropped
    #: from job digests so pre-sampling specs keep their identities.
    method: str = "auto"
    #: Confidence level of sampled intervals.
    confidence: float = 0.99
    #: Total sample budget per certificate / reliability estimate
    #: (None = the library defaults).
    budget: int | None = None
    #: User seed of the deterministic sampling RNG streams.
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "probabilities", tuple(float(q) for q in self.probabilities)
        )
        if self.link_probability is not None and not (
            0.0 <= self.link_probability <= 1.0
        ):
            raise SerializationError(
                f"link failure probability must be in [0, 1], "
                f"got {self.link_probability!r}"
            )
        if not self.probabilities:
            raise SerializationError(
                "a reliability spec needs at least one failure probability"
            )
        for probability in self.probabilities:
            if not 0.0 <= probability <= 1.0:
                raise SerializationError(
                    f"failure probability must be in [0, 1], got {probability!r}"
                )
        if self.crash_times not in CRASH_TIME_POLICIES:
            raise SerializationError(
                f"unknown crash-time policy {self.crash_times!r}; "
                f"expected one of {CRASH_TIME_POLICIES}"
            )
        if self.boundary_limit < 1:
            raise SerializationError("boundary_limit must be >= 1")
        if self.detection not in ("none", "timeout-array"):
            raise SerializationError(
                f"unknown detection policy {self.detection!r}"
            )
        if self.method not in ("auto", "exact", "sampled"):
            raise SerializationError(
                f"unknown certification method {self.method!r}; "
                f"expected 'auto', 'exact' or 'sampled'"
            )
        if not 0.0 < self.confidence < 1.0:
            raise SerializationError(
                f"confidence must be in (0, 1), got {self.confidence!r}"
            )
        if self.budget is not None and self.budget < 1:
            raise SerializationError("sample budget must be >= 1")


@dataclass(frozen=True)
class CampaignSpec:
    """The full grid of one experiment campaign."""

    name: str
    workloads: tuple[WorkloadSpec, ...]
    topologies: tuple[str, ...] = ("fully_connected",)
    processors: tuple[int, ...] = (4,)
    npfs: tuple[int, ...] = (1,)
    npls: tuple[int, ...] = (0,)
    ccrs: tuple[float, ...] = (1.0,)
    seeds: tuple[int, ...] = (0,)
    failures: tuple[FailureSpec, ...] = ()
    measures: tuple[str, ...] = ("ftbar", "non_ft")
    mean_execution: float = 10.0
    options: Mapping[str, bool] = field(default_factory=dict)
    reliability: ReliabilitySpec | None = None
    #: Default execution backend (``repro campaign run --backend``
    #: overrides).  Not part of any job's digest: the same campaign
    #: computes the same records whatever transport ran it.
    backend: str = "local"

    def __post_init__(self) -> None:
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(self, "topologies", tuple(self.topologies))
        object.__setattr__(self, "processors", tuple(self.processors))
        object.__setattr__(self, "npfs", tuple(self.npfs))
        object.__setattr__(self, "npls", tuple(self.npls))
        if any(npl < 0 for npl in self.npls):
            raise SerializationError("npl values must be >= 0")
        object.__setattr__(self, "ccrs", tuple(float(c) for c in self.ccrs))
        object.__setattr__(self, "seeds", tuple(self.seeds))
        object.__setattr__(self, "failures", tuple(self.failures))
        object.__setattr__(self, "measures", tuple(self.measures))
        object.__setattr__(self, "options", dict(self.options))
        if not self.workloads:
            raise SerializationError("a campaign needs at least one workload")
        for topology in self.topologies:
            if topology not in TOPOLOGIES:
                raise SerializationError(
                    f"unknown topology {topology!r}; expected one of {TOPOLOGIES}"
                )
        for measure in self.measures:
            if measure not in MEASURES:
                raise SerializationError(
                    f"unknown measure {measure!r}; expected one of {MEASURES}"
                )
        unknown = set(self.options) - {
            f.name for f in SchedulerOptions.__dataclass_fields__.values()
        }
        if unknown:
            raise SerializationError(f"unknown scheduler options: {sorted(unknown)}")
        if "reliability" in self.measures and self.reliability is None:
            object.__setattr__(self, "reliability", ReliabilitySpec())
        if self.backend not in BACKENDS:
            raise SerializationError(
                f"unknown execution backend {self.backend!r}; "
                f"expected one of {BACKENDS}"
            )

    @property
    def grid_size(self) -> int:
        """Number of grid points before job deduplication."""
        return (
            len(self.workloads)
            * len(self.topologies)
            * len(self.processors)
            * len(self.npfs)
            * len(self.npls)
            * len(self.ccrs)
            * len(self.seeds)
        )

    def coordinates(self) -> Iterator[tuple]:
        """Iterate the grid in its canonical (deterministic) order."""
        return itertools.product(
            self.workloads,
            self.topologies,
            self.processors,
            self.npfs,
            self.npls,
            self.ccrs,
            self.seeds,
        )

    def scheduler_options(self) -> SchedulerOptions:
        """The scheduler configuration every job of the campaign uses."""
        return SchedulerOptions(**self.options)


# ----------------------------------------------------------------------
# JSON round trip
# ----------------------------------------------------------------------

def campaign_to_dict(spec: CampaignSpec) -> dict:
    """Serialize a campaign spec to a JSON-compatible document."""
    document = asdict(spec)
    document["format_version"] = SPEC_FORMAT_VERSION
    document["workloads"] = [asdict(w) for w in spec.workloads]
    document["failures"] = [asdict(f) for f in spec.failures]
    document["reliability"] = (
        asdict(spec.reliability) if spec.reliability is not None else None
    )
    return document


def campaign_from_dict(document: Mapping) -> CampaignSpec:
    """Rebuild a campaign spec from its document form."""
    try:
        return CampaignSpec(
            name=document["name"],
            workloads=tuple(
                WorkloadSpec(**entry) for entry in document["workloads"]
            ),
            topologies=tuple(document.get("topologies", ("fully_connected",))),
            processors=tuple(document.get("processors", (4,))),
            npfs=tuple(document.get("npfs", (1,))),
            npls=tuple(document.get("npls", (0,))),
            ccrs=tuple(document.get("ccrs", (1.0,))),
            seeds=tuple(document.get("seeds", (0,))),
            failures=tuple(
                FailureSpec(
                    processors=tuple(entry["processors"]),
                    at=float(entry.get("at", 0.0)),
                )
                for entry in document.get("failures", [])
            ),
            measures=tuple(document.get("measures", ("ftbar", "non_ft"))),
            mean_execution=float(document.get("mean_execution", 10.0)),
            options=dict(document.get("options", {})),
            reliability=(
                ReliabilitySpec(
                    probabilities=tuple(
                        document["reliability"].get("probabilities", (0.01,))
                    ),
                    crash_times=document["reliability"].get("crash_times", "zero"),
                    boundary_limit=int(
                        document["reliability"].get("boundary_limit", 16)
                    ),
                    max_failures=document["reliability"].get("max_failures"),
                    detection=document["reliability"].get("detection", "none"),
                    max_link_failures=document["reliability"].get(
                        "max_link_failures"
                    ),
                    link_probability=document["reliability"].get(
                        "link_probability"
                    ),
                    method=document["reliability"].get("method", "auto"),
                    confidence=float(
                        document["reliability"].get("confidence", 0.99)
                    ),
                    budget=document["reliability"].get("budget"),
                    seed=int(document["reliability"].get("seed", 0)),
                )
                if document.get("reliability") is not None
                else None
            ),
            backend=document.get("backend", "local"),
        )
    except (KeyError, TypeError, AttributeError) as error:
        raise SerializationError(f"invalid campaign document: {error}") from error


def load_campaign(path: str | Path) -> CampaignSpec:
    """Read a campaign spec from a JSON file."""
    return campaign_from_dict(load_json(path))


def save_campaign(spec: CampaignSpec, path: str | Path) -> None:
    """Write a campaign spec as pretty-printed JSON."""
    save_json(campaign_to_dict(spec), path)
