"""Batch experiment orchestration: specs, jobs, cache, pool, store.

The campaign subsystem turns the one-shot scheduler into a batch
service: declarative :class:`CampaignSpec` grids expand into
content-hashed :class:`Job` units, executed on a ``multiprocessing``
pool, persisted to an append-only JSONL :class:`ResultStore` (making
every campaign resumable) and memoized in a content-addressed
:class:`ScheduleCache` shared across campaigns.
"""

from repro.campaign.cache import ScheduleCache
from repro.campaign.jobs import (
    Job,
    build_architecture,
    build_problem,
    execute_job,
    expand_jobs,
    job_digest,
    job_problem,
)
from repro.campaign.pool import default_worker_count, execute_jobs
from repro.campaign.runner import (
    CampaignReport,
    CampaignStatus,
    campaign_report,
    campaign_status,
    reliability_heatmap,
    run_campaign,
)
from repro.campaign.spec import (
    CampaignSpec,
    FailureSpec,
    ReliabilitySpec,
    WorkloadSpec,
    campaign_from_dict,
    campaign_to_dict,
    load_campaign,
    save_campaign,
)
from repro.campaign.store import ResultStore

__all__ = [
    "CampaignReport",
    "CampaignSpec",
    "CampaignStatus",
    "FailureSpec",
    "Job",
    "ReliabilitySpec",
    "ResultStore",
    "ScheduleCache",
    "WorkloadSpec",
    "build_architecture",
    "build_problem",
    "campaign_from_dict",
    "campaign_report",
    "campaign_status",
    "campaign_to_dict",
    "default_worker_count",
    "execute_job",
    "execute_jobs",
    "expand_jobs",
    "job_digest",
    "job_problem",
    "load_campaign",
    "reliability_heatmap",
    "run_campaign",
    "save_campaign",
]
