"""Batch experiment orchestration: specs, jobs, backends, store, merge.

The campaign subsystem turns the one-shot scheduler into a batch
service: declarative :class:`CampaignSpec` grids expand into
content-hashed :class:`Job` units, executed through a pluggable
:class:`ExecutionBackend` (in-process ``serial``, the single-host
``local`` pool, or the work-stealing multi-host ``directory`` queue),
persisted to an append-only JSONL :class:`ResultStore` (making every
campaign resumable), memoized in a content-addressed
:class:`ScheduleCache` shared across campaigns, and merged
bit-identically across shards with :func:`merge_stores`.
"""

from repro.campaign.backends import (
    BACKENDS,
    DirectoryBackend,
    ExecutionBackend,
    LocalPoolBackend,
    SerialBackend,
    make_backend,
)
from repro.campaign.backends.directory import (
    DirectoryCampaign,
    WorkerReport,
    worker_loop,
)
from repro.campaign.cache import ScheduleCache
from repro.campaign.jobs import (
    Job,
    build_architecture,
    build_problem,
    execute_job,
    expand_jobs,
    job_digest,
    job_problem,
)
from repro.campaign.merge import MergeConflictError, MergeReport, merge_stores
from repro.campaign.pool import (
    cpu_affinity_count,
    default_worker_count,
    execute_jobs,
)
from repro.campaign.runner import (
    CampaignReport,
    CampaignStatus,
    campaign_report,
    campaign_status,
    reliability_heatmap,
    run_campaign,
)
from repro.campaign.spec import (
    CampaignSpec,
    FailureSpec,
    ReliabilitySpec,
    WorkloadSpec,
    campaign_from_dict,
    campaign_to_dict,
    load_campaign,
    save_campaign,
)
from repro.campaign.store import ResultStore

__all__ = [
    "BACKENDS",
    "CampaignReport",
    "CampaignSpec",
    "CampaignStatus",
    "DirectoryBackend",
    "DirectoryCampaign",
    "ExecutionBackend",
    "FailureSpec",
    "Job",
    "LocalPoolBackend",
    "MergeConflictError",
    "MergeReport",
    "ReliabilitySpec",
    "ResultStore",
    "ScheduleCache",
    "SerialBackend",
    "WorkerReport",
    "WorkloadSpec",
    "build_architecture",
    "build_problem",
    "campaign_from_dict",
    "campaign_report",
    "campaign_status",
    "campaign_to_dict",
    "cpu_affinity_count",
    "default_worker_count",
    "execute_job",
    "execute_jobs",
    "expand_jobs",
    "job_digest",
    "job_problem",
    "load_campaign",
    "make_backend",
    "merge_stores",
    "reliability_heatmap",
    "run_campaign",
    "save_campaign",
    "worker_loop",
]
