"""Parallel job execution on a ``multiprocessing`` worker pool.

The pool is forked once per campaign and kept alive for all chunks, so
workers amortize interpreter start-up and module imports over many jobs
(per-worker engine reuse).  Jobs are shipped as coordinates — each
worker rebuilds its problems deterministically — and results stream back
through ``imap_unordered`` in completion order, which lets the runner
persist every result the moment it exists (the property resumability
rests on).

Ctrl-C is handled gracefully: workers ignore ``SIGINT`` (the classic
initializer pattern), the parent terminates the pool, and the
``KeyboardInterrupt`` propagates to the runner *after* every completed
result has been flushed, so a killed campaign resumes from exactly
where it stopped.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
from typing import Callable, Iterable, Iterator

from repro import obs
from repro.campaign.jobs import Job, execute_job
from repro.core.retry import retry_io


def resilient_execute(job: Job) -> dict:
    """Execute one job, absorbing transient I/O faults.

    The default pool callable: a worker hitting a transient ``OSError``
    (flaky storage under the problem generator's file reads, an
    injected fault) retries under the shared backoff policy instead of
    poisoning the whole chunk.  Deterministic results are unaffected —
    a retried job recomputes the exact same record.
    """
    return retry_io(lambda: execute_job(job), attempts=3, base_s=0.01,
                    cap_s=0.1)


def cpu_affinity_count() -> int | None:
    """CPUs this process may actually run on, or ``None`` if unknowable.

    Under cgroup/taskset confinement (CI runners, batch schedulers,
    containers) ``os.cpu_count()`` reports the whole machine while the
    scheduler only ever grants the affinity mask — sizing a pool on the
    former oversubscribes the mask and serializes the "parallel" workers.
    """
    getter = getattr(os, "sched_getaffinity", None)
    if getter is None:  # non-Linux
        return None
    try:
        return len(getter(0)) or None
    except OSError:
        return None


def default_worker_count() -> int:
    """Worker count used for ``jobs=0`` / ``--jobs 0``.

    One worker per *available* CPU: the scheduling affinity mask when
    the platform exposes it, the raw CPU count otherwise.
    """
    return cpu_affinity_count() or os.cpu_count() or 1


def _init_worker() -> None:
    """Pool initializer: leave Ctrl-C to the parent, drop its telemetry.

    Workers ignore ``SIGINT`` (the classic initializer pattern) and
    forget any tracer inherited across ``fork`` — the parent owns the
    trace stream; a worker writing to the shared descriptor would
    corrupt it.  Job telemetry ships back inside each job document
    instead (see :func:`repro.campaign.jobs.execute_job`).
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    obs.worker_reset()


def execute_jobs(
    jobs: Iterable[Job],
    worker_count: int = 1,
    chunk_size: int | None = None,
    execute: Callable[[Job], dict] = resilient_execute,
) -> Iterator[dict]:
    """Execute jobs, yielding each execution document as it completes.

    ``worker_count == 0`` means one worker per CPU.  ``worker_count 1``
    (or less) runs everything sequentially in-process (no fork, no
    pickling) — the exact legacy single-process behavior the experiment
    harness relies on for bit-identical figures.  With more workers,
    jobs are dispatched in chunks to a long-lived pool and the yield
    order follows *completion*, not submission; consumers that need
    grid order sort on ``Job.index`` via the digest.
    """
    if worker_count == 0:
        worker_count = default_worker_count()
    job_list = list(jobs)
    if worker_count <= 1:
        for job in job_list:
            yield execute(job)
        return
    if chunk_size is None:
        chunk_size = max(1, len(job_list) // (worker_count * 4))
    pool = multiprocessing.Pool(
        processes=min(worker_count, max(1, len(job_list))),
        initializer=_init_worker,
    )
    try:
        for document in pool.imap_unordered(execute, job_list, chunk_size):
            yield document
        pool.close()
        pool.join()
    except BaseException:
        pool.terminate()
        pool.join()
        raise
    finally:
        # A consumer abandoning the generator mid-stream lands here via
        # GeneratorExit; make sure no worker outlives the campaign.
        pool.terminate()
