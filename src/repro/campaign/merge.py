"""Digest-keyed, order-canonicalized union of campaign result stores.

Directory-backend workers each append to a private JSONL shard; SSH
fan-out or multi-host runs produce one shard per worker per host.  The
content-hashed job identities make those shards mergeable *by
construction*: a job's digest names exactly one deterministic record,
so the union of any set of shards — whatever the completion order,
worker count or host mix — is a pure set union keyed by digest.

:func:`merge_stores` materializes that union canonically:

* **order-canonicalized** — one line per digest, sorted by digest, the
  record serialized with sorted keys and no volatile envelope.  Two
  campaigns that computed the same records produce *byte-identical*
  merged stores, regardless of how the work was sharded;
* **idempotent** — the merged store is itself a valid input shard;
  merging it again (with or without the original shards) reproduces
  the same bytes;
* **conflict-checking** — the same digest carrying two *different*
  records is a hard :class:`MergeConflictError`, never a silent
  last-writer-wins: a digest collision with divergent results means a
  worker is broken (or the determinism contract is), and merging would
  launder that.

Worker-event lines (lease reclaims, exhausted retries) are run history,
not measurements; they are harvested into an events sidecar next to the
merged store so operational forensics survive the merge without
polluting the canonical bytes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro import obs
from repro.campaign.store import ResultStore
from repro.core.retry import retry_io
from repro.exceptions import ReproError
from repro.faultinject import failpoint


class MergeConflictError(ReproError):
    """Two shards record *different* results under the same job digest."""


def _shard_files(inputs: Iterable[str | Path]) -> list[Path]:
    """Expand each input into its store files.

    A directory is expanded to its ``shards/*.jsonl`` (a campaign
    directory) or its own ``*.jsonl`` files; a file stands for itself.
    """
    files: list[Path] = []
    for entry in inputs:
        path = Path(entry)
        if path.is_dir():
            shard_dir = path / "shards" if (path / "shards").is_dir() else path
            found = sorted(shard_dir.glob("*.jsonl"))
            if not found:
                raise ReproError(f"no result shards under {path}")
            files.extend(found)
        elif path.exists():
            files.append(path)
        else:
            raise ReproError(f"merge input does not exist: {path}")
    return files


@dataclass
class MergeReport:
    """What one :func:`merge_stores` call combined."""

    shards: int
    jobs: int
    events: int
    duplicates: int
    output: Path | None = None
    events_output: Path | None = None
    event_kinds: dict[str, int] = field(default_factory=dict)
    #: Corrupt interior shard lines skipped during the merge scan.
    corrupt_lines: int = 0

    def summary(self) -> str:
        """One-line human-readable outcome."""
        parts = [
            f"merged {self.jobs} jobs from {self.shards} shards "
            f"({self.duplicates} duplicate records verified identical)"
        ]
        if self.events:
            kinds = ", ".join(
                f"{kind}: {count}"
                for kind, count in sorted(self.event_kinds.items())
            )
            parts.append(f"{self.events} worker events ({kinds})")
        if self.corrupt_lines:
            parts.append(f"{self.corrupt_lines} corrupt shard lines skipped")
        return " — ".join(parts)


def canonical_record_line(digest: str, record: dict) -> str:
    """The one canonical serialization of a merged result line."""
    return json.dumps({"digest": digest, "record": record}, sort_keys=True)


def merge_stores(
    inputs: Sequence[str | Path],
    output: str | Path | None = None,
    *,
    events_output: str | Path | None = None,
) -> MergeReport:
    """Merge result shards into one canonical store (see module doc).

    ``inputs`` are store files, campaign directories, or directories of
    shards; ``output`` is written atomically (temp file + ``replace``)
    so a killed merge never leaves a torn store, and may itself be one
    of the inputs (re-merging in place is the idempotence contract).
    With ``output=None`` the merge is a dry run: conflicts are still
    checked, nothing is written.

    Worker events from every shard go to ``events_output`` (default:
    ``<output stem>.events.jsonl``), only when any exist.
    """
    files = _shard_files(inputs)
    merged: dict[str, str] = {}
    first_seen: dict[str, Path] = {}
    events: list[dict] = []
    duplicates = 0
    corrupt_lines = 0
    with obs.span("campaign.merge", shards=len(files)):
        for path in files:
            store = ResultStore(path)
            for line in store.lines():
                if "digest" in line:
                    digest = line["digest"]
                    canonical = canonical_record_line(digest, line["record"])
                    previous = merged.get(digest)
                    if previous is None:
                        merged[digest] = canonical
                        first_seen[digest] = path
                    elif previous == canonical:
                        duplicates += 1
                    else:
                        raise MergeConflictError(
                            f"job {digest[:12]} has conflicting records: "
                            f"{first_seen[digest]} vs {path} disagree on "
                            "the deterministic record — a worker (or the "
                            "determinism contract) is broken; refusing to "
                            "merge"
                        )
                elif "event" in line:
                    events.append(line)
            # A corrupt shard line is a skipped digest, not a merge
            # failure: the line's job stays unrecorded and a re-run
            # recomputes it.  The count surfaces in the report.
            corrupt_lines += len(store.corrupt_lines)
        obs.metrics.inc("campaign.merge.jobs", len(merged))
        obs.metrics.inc("campaign.merge.events", len(events))

    report = MergeReport(
        shards=len(files),
        jobs=len(merged),
        events=len(events),
        duplicates=duplicates,
        corrupt_lines=corrupt_lines,
    )
    for line in events:
        kind = str(line.get("event"))
        report.event_kinds[kind] = report.event_kinds.get(kind, 0) + 1
    if output is None:
        return report

    output = Path(output)
    output.parent.mkdir(parents=True, exist_ok=True)
    body = "".join(merged[digest] + "\n" for digest in sorted(merged))
    _atomic_write(output, body)
    report.output = output
    if events:
        events_path = (
            Path(events_output)
            if events_output is not None
            else output.with_name(output.stem + ".events.jsonl")
        )
        # Sorted by serialized form: deterministic for fixed inputs even
        # though the lines carry wall-clock fields.
        _atomic_write(
            events_path,
            "".join(
                text + "\n"
                for text in sorted(json.dumps(line, sort_keys=True)
                                   for line in events)
            ),
        )
        report.events_output = events_path
    return report


def _atomic_write(path: Path, body: str) -> None:
    """Publish ``body`` atomically: the old file or the new, never torn.

    The ``merge.write`` / ``merge.replace`` failpoints bracket the
    crash window between the temp write and the rename — a kill landing
    there leaves the previous canonical store intact plus a stale temp
    file, and an idempotent re-merge recovers.  Transient write errors
    heal under the shared retry policy.
    """
    temporary = path.parent / f".{path.name}.{os.getpid()}.tmp"

    def attempt() -> None:
        fault = failpoint("merge.write", key=path.name)
        text = body
        if fault is not None:
            text = fault.apply_text(text)
        temporary.write_text(text, encoding="utf-8")
        if fault is not None and fault.kind == "torn_write":
            raise fault.error()
        failpoint("merge.replace", key=path.name)
        os.replace(temporary, path)

    retry_io(attempt, attempts=3, base_s=0.005, cap_s=0.05)
