"""Execution traces: what actually happened during a (faulty) run.

The simulator re-times every event of the static schedule; each event
gets a status:

* ``COMPLETED`` — executed/transmitted, with its actual ``[start, end)``;
* ``LOST`` — the hosting/sending processor was down (fail-silent);
* ``SKIPPED`` — never attempted: the data never existed, or the failure
  detector (option 2 of section 5) suppressed a send to a known-faulty
  processor;
* ``STARVED`` — an operation replica whose input set never completed
  (only possible when more than ``Npf`` processors fail).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graphs.algorithm import AlgorithmGraph
    from repro.timing.constraints import RealTimeConstraints


class EventStatus(str, enum.Enum):
    """Outcome of one event in a simulated execution."""

    COMPLETED = "completed"
    LOST = "lost"
    SKIPPED = "skipped"
    STARVED = "starved"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class SimulatedOperation:
    """Actual outcome of one operation replica."""

    operation: str
    replica: int
    processor: str
    status: EventStatus
    start: float | None = None
    end: float | None = None

    def label(self) -> str:
        """Short identity, e.g. ``A/1@P3=completed``."""
        return f"{self.operation}/{self.replica}@{self.processor}={self.status.value}"


@dataclass(frozen=True)
class SimulatedComm:
    """Actual outcome of one comm (one hop of one route copy)."""

    source: str
    target: str
    source_replica: int
    target_replica: int
    link: str
    source_processor: str
    target_processor: str
    hop_index: int
    status: EventStatus
    start: float | None = None
    end: float | None = None
    delivered: bool = False
    route: int = 0

    def label(self) -> str:
        """Short identity, e.g. ``I/0->A/1 on L1.3=completed``."""
        return (
            f"{self.source}/{self.source_replica}->{self.target}/"
            f"{self.target_replica} on {self.link}={self.status.value}"
        )


class ExecutionTrace:
    """All simulated events of one run plus convenience accessors."""

    def __init__(
        self,
        operations: Iterable[SimulatedOperation],
        comms: Iterable[SimulatedComm],
        detections: dict[str, dict[str, float]] | None = None,
    ) -> None:
        self.operations = tuple(operations)
        self.comms = tuple(comms)
        #: Failure-detection knowledge: ``detections[p][q]`` is the time
        #: at which processor ``p`` learned that ``q`` is faulty
        #: (option 2 of section 5 only).
        self.detections = detections or {}
        self._by_replica = {
            (o.operation, o.replica): o for o in self.operations
        }

    # ------------------------------------------------------------------
    # event accessors
    # ------------------------------------------------------------------
    def operation_outcome(self, operation: str, replica: int) -> SimulatedOperation:
        """The simulated outcome of one specific replica."""
        return self._by_replica[(operation, replica)]

    def outcomes_of(self, operation: str) -> tuple[SimulatedOperation, ...]:
        """All simulated replicas of one operation."""
        return tuple(
            o for o in self.operations if o.operation == operation
        )

    def completed_operations(self) -> tuple[SimulatedOperation, ...]:
        """Replicas that actually executed."""
        return tuple(
            o for o in self.operations if o.status is EventStatus.COMPLETED
        )

    def completed_comms(self) -> tuple[SimulatedComm, ...]:
        """Comms that actually occupied their link."""
        return tuple(
            c for c in self.comms if c.status is EventStatus.COMPLETED
        )

    # ------------------------------------------------------------------
    # aggregate measures
    # ------------------------------------------------------------------
    def makespan(self) -> float:
        """Completion date of the degraded execution.

        The latest end over every completed event (operations and
        comms); 0.0 when nothing completed.
        """
        latest = 0.0
        for operation in self.operations:
            if operation.status is EventStatus.COMPLETED:
                latest = max(latest, operation.end)
        for comm in self.comms:
            if comm.status is EventStatus.COMPLETED:
                latest = max(latest, comm.end)
        return latest

    def first_completion(self, operation: str) -> float | None:
        """Earliest completion among the replicas of ``operation``."""
        ends = [
            o.end
            for o in self.outcomes_of(operation)
            if o.status is EventStatus.COMPLETED
        ]
        return min(ends) if ends else None

    def outputs_completion(self, algorithm: "AlgorithmGraph") -> float | None:
        """When the last output operation delivers its first result.

        ``None`` when some output never completes (the failure hypothesis
        was exceeded).
        """
        latest = 0.0
        for sink in algorithm.sinks():
            first = self.first_completion(sink)
            if first is None:
                return None
            latest = max(latest, first)
        return latest

    def all_operations_delivered(self, algorithm: "AlgorithmGraph") -> bool:
        """True when every operation completed on at least one processor."""
        return all(
            self.first_completion(op) is not None
            for op in algorithm.operation_names()
        )

    def starved_operations(self) -> tuple[SimulatedOperation, ...]:
        """Replicas that blocked forever on a receive."""
        return tuple(
            o for o in self.operations if o.status is EventStatus.STARVED
        )

    def rtc_satisfied(self, rtc: "RealTimeConstraints") -> bool:
        """Check the degraded completion date against the global deadline."""
        makespan = self.makespan()
        if math.isinf(makespan):
            return False
        return rtc.check_completion(makespan)

    def summary(self) -> str:
        """One-paragraph textual description of the run."""
        counters: dict[EventStatus, int] = {}
        for event in (*self.operations, *self.comms):
            counters[event.status] = counters.get(event.status, 0) + 1
        parts = ", ".join(
            f"{status.value}={counters[status]}"
            for status in EventStatus
            if status in counters
        )
        return f"ExecutionTrace(makespan={self.makespan():g}, {parts})"

    def __repr__(self) -> str:
        return self.summary()
