"""Fail-silent failure scenarios (section 3.1 / section 5).

A failure makes a processor silent: it produces no results and sends no
comms while down.  Failures are *permanent* (``until = inf``) or
*intermittent* (the processor recovers at ``until``).  A scenario is a
set of failure intervals; the helpers answer the questions the simulator
asks ("is P up at t?", "when can P next run for d time units?").

Link failures are modelled the same way (a broken medium transmits
nothing while down) and are *masked* by schedules built with an
``Npl >= 1`` hypothesis: every inter-processor transfer is then carried
over ``Npl + 1`` link-disjoint routes, so any ``Npl`` broken links leave
at least one copy's route intact.  The paper's own conclusion left link
failures as future work; ``npl = 0`` schedules reproduce that original
engine, where a broken bus can still break the schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.exceptions import SimulationError


@dataclass(frozen=True, order=True)
class _Interval:
    resource: str
    at: float
    until: float = math.inf

    def __post_init__(self) -> None:
        if self.at < 0:
            raise SimulationError(
                f"failure of {self.resource!r} at negative time {self.at!r}"
            )
        if self.until <= self.at:
            raise SimulationError(
                f"failure of {self.resource!r} recovers at {self.until!r} "
                f"before failing at {self.at!r}"
            )

    @property
    def permanent(self) -> bool:
        """True when the resource never recovers."""
        return math.isinf(self.until)

    def covers(self, instant: float) -> bool:
        """True when the resource is down at ``instant``."""
        return self.at <= instant < self.until

    def overlaps(self, start: float, end: float) -> bool:
        """True when the down interval intersects ``[start, end)``."""
        return self.at < end and start < self.until


@dataclass(frozen=True, order=True)
class ProcessorFailure(_Interval):
    """One down interval ``[at, until)`` of one processor."""

    @property
    def processor(self) -> str:
        """Name of the failing processor."""
        return self.resource


@dataclass(frozen=True, order=True)
class LinkFailure(_Interval):
    """One down interval ``[at, until)`` of one communication link."""

    @property
    def link(self) -> str:
        """Name of the failing link."""
        return self.resource


class FailureScenario:
    """A set of failure intervals, indexed by processor (and link).

    Examples
    --------
    >>> scenario = FailureScenario.crash("P1", at=0.0)
    >>> scenario.is_up("P1", 5.0)
    False
    >>> scenario.is_up("P2", 5.0)
    True
    """

    def __init__(
        self, failures: Iterable[ProcessorFailure | LinkFailure] = ()
    ) -> None:
        self._intervals: dict[str, list[ProcessorFailure]] = {}
        self._link_intervals: dict[str, list[LinkFailure]] = {}
        # Lazily memoized canonical views (the scenario is immutable
        # after construction): computed once, reused by every hash,
        # equality check and batch-engine dedup instead of
        # re-canonicalizing the interval tables per comparison.
        self._signature: tuple | None = None
        self._hash: int | None = None
        self._crash_set: tuple[tuple[str, ...], float] | None | bool = False
        self._failure_set: tuple | None | bool = False
        for failure in failures:
            if isinstance(failure, LinkFailure):
                self._link_intervals.setdefault(failure.link, []).append(failure)
            else:
                self._intervals.setdefault(failure.processor, []).append(failure)
        for table in (self._intervals, self._link_intervals):
            for intervals in table.values():
                intervals.sort()
                for before, after in zip(intervals, intervals[1:]):
                    if before.overlaps(after.at, after.until):
                        raise SimulationError(
                            f"overlapping failure intervals for "
                            f"{before.resource!r}: {before} and {after}"
                        )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "FailureScenario":
        """The nominal scenario: every processor healthy forever."""
        return cls()

    @classmethod
    def crash(cls, processor: str, at: float = 0.0) -> "FailureScenario":
        """One permanent fail-silent crash."""
        return cls([ProcessorFailure(processor, at)])

    @classmethod
    def crashes(cls, processors: Iterable[str], at: float = 0.0) -> "FailureScenario":
        """Several simultaneous permanent crashes."""
        return cls([ProcessorFailure(p, at) for p in processors])

    @classmethod
    def intermittent(
        cls, processor: str, at: float, until: float
    ) -> "FailureScenario":
        """One transient failure: down during ``[at, until)``."""
        return cls([ProcessorFailure(processor, at, until)])

    @classmethod
    def link_down(
        cls, link: str, at: float = 0.0, until: float = math.inf
    ) -> "FailureScenario":
        """One link failure (masked by schedules built with ``Npl >= 1``).

        Schedules built with the paper's original ``npl = 0`` hypothesis
        carry each transfer on a single route and offer no masking
        guarantee against a broken medium.
        """
        return cls([LinkFailure(link, at, until)])

    @classmethod
    def resource_crashes(
        cls,
        processors: Iterable[str] = (),
        links: Iterable[str] = (),
        at: float = 0.0,
    ) -> "FailureScenario":
        """Simultaneous permanent crashes of processors *and* links.

        The combined scenario the processor+link certificates enumerate:
        every named resource goes silent at ``at`` and never recovers.
        """
        return cls(
            [ProcessorFailure(p, at) for p in processors]
            + [LinkFailure(l, at) for l in links]
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[ProcessorFailure]:
        for processor in sorted(self._intervals):
            yield from self._intervals[processor]

    def __len__(self) -> int:
        return sum(len(v) for v in self._intervals.values()) + sum(
            len(v) for v in self._link_intervals.values()
        )

    def failed_processors(self) -> tuple[str, ...]:
        """Processors having at least one down interval, sorted."""
        return tuple(sorted(self._intervals))

    def failed_links(self) -> tuple[str, ...]:
        """Links having at least one down interval, sorted."""
        return tuple(sorted(self._link_intervals))

    def link_failures(self) -> tuple[LinkFailure, ...]:
        """All link down intervals, sorted."""
        return tuple(
            failure
            for link in sorted(self._link_intervals)
            for failure in self._link_intervals[link]
        )

    def failure_count(self) -> int:
        """Number of distinct processors that fail (the paper's ``k``)."""
        return len(self._intervals)

    # ------------------------------------------------------------------
    # canonical identity (memoized)
    # ------------------------------------------------------------------
    def signature(self) -> tuple:
        """Canonical, hashable identity of this scenario (memoized).

        Two scenarios with the same signature answer every query
        identically, so the signature is safe as a cache key for
        simulation results (the batch engine's scenario dedup) and for
        campaign job hashing.
        """
        if self._signature is None:
            self._signature = (
                tuple(
                    (f.resource, f.at, f.until)
                    for p in sorted(self._intervals)
                    for f in self._intervals[p]
                ),
                tuple(
                    (f.resource, f.at, f.until)
                    for l in sorted(self._link_intervals)
                    for f in self._link_intervals[l]
                ),
            )
        return self._signature

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self.signature())
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FailureScenario):
            return NotImplemented
        return self.signature() == other.signature()

    def permanent_crash_set(self) -> tuple[tuple[str, ...], float] | None:
        """The ``(processors, at)`` form of a uniform crash subset.

        ``None`` unless every failure is a *permanent* processor crash
        and all crashes share one instant — the link-free special case
        of :meth:`permanent_failure_set` (the single place the
        detection logic lives), memoized like :meth:`signature`.
        """
        if self._crash_set is False:
            failure_set = self.permanent_failure_set()
            if failure_set is None or failure_set[1]:
                self._crash_set = None
            else:
                self._crash_set = (failure_set[0], failure_set[2])
        return self._crash_set

    def permanent_failure_set(
        self,
    ) -> tuple[tuple[str, ...], tuple[str, ...], float] | None:
        """The ``(processors, links, at)`` form of a uniform crash subset.

        Like :meth:`permanent_crash_set` but covering link failures:
        ``None`` unless every failure (processor *or* link) is permanent
        and all share one instant — the shape of the combined
        processor+link scenarios the batched certifier fast-paths.
        """
        if self._failure_set is False:
            self._failure_set = None
            failures = [
                f
                for table in (self._intervals, self._link_intervals)
                for fs in table.values()
                for f in fs
            ]
            if failures:
                instants = {f.at for f in failures}
                if len(instants) == 1 and all(f.permanent for f in failures):
                    self._failure_set = (
                        tuple(sorted(self._intervals)),
                        tuple(sorted(self._link_intervals)),
                        instants.pop(),
                    )
        return self._failure_set

    def is_up(self, processor: str, instant: float) -> bool:
        """True when ``processor`` is healthy at ``instant``."""
        return not any(
            f.covers(instant) for f in self._intervals.get(processor, ())
        )

    def up_during(self, processor: str, start: float, end: float) -> bool:
        """True when ``processor`` is healthy over all of ``[start, end)``."""
        return not any(
            f.overlaps(start, end) for f in self._intervals.get(processor, ())
        )

    def resume_time(self, processor: str, instant: float) -> float:
        """When the processor is next up, starting from ``instant``.

        Returns ``instant`` itself when already up, ``inf`` when the
        covering failure is permanent.
        """
        for failure in self._intervals.get(processor, ()):
            if failure.covers(instant):
                return failure.until
        return instant

    def next_crash_after(self, processor: str, instant: float) -> float:
        """Start of the first down interval at or after ``instant`` (inf if none)."""
        for failure in self._intervals.get(processor, ()):
            if failure.at >= instant:
                return failure.at
            if failure.covers(instant):
                return failure.at
        return math.inf

    def next_window(
        self, processor: str, earliest: float, duration: float
    ) -> float | None:
        """Earliest ``start >= earliest`` with ``[start, start+duration)`` up.

        Returns ``None`` when no such window exists (permanent failure).
        """
        return _next_window(
            self._intervals.get(processor, ()), earliest, duration
        )

    # ------------------------------------------------------------------
    # link queries
    # ------------------------------------------------------------------
    def link_is_up(self, link: str, instant: float) -> bool:
        """True when ``link`` transmits at ``instant``."""
        return not any(
            f.covers(instant) for f in self._link_intervals.get(link, ())
        )

    def link_up_during(self, link: str, start: float, end: float) -> bool:
        """True when ``link`` transmits over all of ``[start, end)``."""
        return not any(
            f.overlaps(start, end) for f in self._link_intervals.get(link, ())
        )

    def link_next_window(
        self, link: str, earliest: float, duration: float
    ) -> float | None:
        """Earliest window of ``duration`` with the link up (None = never)."""
        return _next_window(
            self._link_intervals.get(link, ()), earliest, duration
        )

    def __repr__(self) -> str:
        entries = list(self) + list(self.link_failures())
        return f"FailureScenario({entries!r})"


def _next_window(
    intervals, earliest: float, duration: float
) -> float | None:
    """Shared window search over a sorted interval list."""
    start = max(earliest, 0.0)
    for _ in range(len(intervals) + 1):
        blocker = next(
            (f for f in intervals if f.overlaps(start, start + duration)),
            None,
        )
        if blocker is None:
            return start
        if blocker.permanent:
            return None
        start = blocker.until
    return start  # pragma: no cover - bounded by interval count
