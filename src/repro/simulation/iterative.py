"""Cyclic execution: the schedule runs once per input event (§3.2, §5).

The paper's algorithm model is reactive: "the algorithm is executed
repeatedly for each input event from the sensors".  This module replays
the static schedule over many iterations:

* iteration ``k`` nominally starts at ``k * period`` (the period
  defaults to the static makespan — back-to-back iterations); a
  degraded iteration that overruns delays the next one (the static
  executive cannot start a new reaction while busy);
* failure scenarios are expressed in *absolute* time and sliced per
  iteration, so a processor can crash mid-iteration 2 and an
  intermittent processor can recover in iteration 4;
* with :attr:`DetectionPolicy.TIMEOUT_ARRAY`, the faulty-processor
  arrays persist across iterations — once detected, a processor stops
  receiving traffic in every subsequent iteration, exactly the
  behaviour (and the recovery limitation) section 5 describes for
  option 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.exceptions import SimulationError
from repro.graphs.algorithm import AlgorithmGraph
from repro.schedule.schedule import Schedule
from repro.simulation.executor import DetectionPolicy, ScheduleSimulator
from repro.simulation.failures import FailureScenario, ProcessorFailure
from repro.simulation.trace import ExecutionTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass


@dataclass(frozen=True)
class IterationOutcome:
    """One reaction of the cyclic execution."""

    index: int
    offset: float
    trace: ExecutionTrace
    outputs_at: float | None

    @property
    def delivered(self) -> bool:
        """True when every output operation produced a value."""
        return self.outputs_at is not None

    @property
    def busy_until(self) -> float:
        """Absolute completion date of the iteration's last event."""
        return self.offset + self.trace.makespan()


class IterativeTrace:
    """All iterations of one cyclic run."""

    def __init__(self, iterations: list[IterationOutcome], period: float) -> None:
        self.iterations = tuple(iterations)
        self.period = period

    def __len__(self) -> int:
        return len(self.iterations)

    def delivered_count(self) -> int:
        """Number of iterations that produced every output."""
        return sum(1 for i in self.iterations if i.delivered)

    def missed(self) -> tuple[IterationOutcome, ...]:
        """Iterations that lost at least one output."""
        return tuple(i for i in self.iterations if not i.delivered)

    def total_time(self) -> float:
        """Absolute completion date of the whole run."""
        if not self.iterations:
            return 0.0
        return max(i.busy_until for i in self.iterations)

    def average_iteration_length(self) -> float:
        """Mean makespan over the iterations."""
        if not self.iterations:
            return 0.0
        return sum(i.trace.makespan() for i in self.iterations) / len(self.iterations)

    def overruns(self) -> tuple[IterationOutcome, ...]:
        """Iterations that ran past their nominal period."""
        return tuple(
            i for i in self.iterations if i.trace.makespan() > self.period + 1e-9
        )

    def summary(self) -> str:
        """One-line account of the run."""
        return (
            f"IterativeTrace({len(self.iterations)} iterations, "
            f"{self.delivered_count()} delivered, "
            f"{len(self.overruns())} overruns, "
            f"total time {self.total_time():g})"
        )

    def __repr__(self) -> str:
        return self.summary()


class IterativeSimulator:
    """Replays a static schedule over successive iterations."""

    def __init__(
        self,
        schedule: Schedule,
        algorithm: AlgorithmGraph,
        detection: DetectionPolicy = DetectionPolicy.NONE,
        period: float | None = None,
    ) -> None:
        self._schedule = schedule
        self._algorithm = algorithm
        self._detection = DetectionPolicy(detection)
        self._simulator = ScheduleSimulator(schedule, algorithm, detection)
        nominal = schedule.makespan()
        self._period = nominal if period is None else period
        if self._period <= 0 and nominal > 0:
            raise SimulationError(f"period must be positive, got {period!r}")

    @property
    def period(self) -> float:
        """Nominal spacing between iteration start dates."""
        return self._period

    def run(
        self,
        iterations: int,
        scenario: FailureScenario | None = None,
    ) -> IterativeTrace:
        """Execute ``iterations`` reactions under an absolute-time scenario."""
        if iterations < 0:
            raise SimulationError("iterations must be >= 0")
        scenario = scenario or FailureScenario.none()
        outcomes: list[IterationOutcome] = []
        knowledge: dict[str, set[str]] = {}
        offset = 0.0
        for index in range(iterations):
            local_scenario = _shift_scenario(scenario, offset)
            trace = self._simulator.run(
                local_scenario,
                initial_knowledge=knowledge if knowledge else None,
            )
            outputs = trace.outputs_completion(self._algorithm)
            outcomes.append(
                IterationOutcome(
                    index=index,
                    offset=offset,
                    trace=trace,
                    outputs_at=None if outputs is None else offset + outputs,
                )
            )
            if self._detection is DetectionPolicy.TIMEOUT_ARRAY:
                knowledge = _merge_knowledge(knowledge, trace.detections)
            # The next reaction starts at its period tick, or when the
            # executive finishes the current (possibly overrun) one.
            offset = max(offset + self._period, offset + trace.makespan())
        return IterativeTrace(outcomes, self._period)


def _shift_scenario(scenario: FailureScenario, offset: float) -> FailureScenario:
    """The scenario as seen from an iteration starting at ``offset``."""
    shifted: list = []
    for failure in scenario:
        if failure.until <= offset:
            continue  # recovered before this iteration
        shifted.append(
            ProcessorFailure(
                failure.processor,
                max(failure.at - offset, 0.0),
                failure.until - offset,
            )
        )
    for failure in scenario.link_failures():
        if failure.until <= offset:
            continue
        shifted.append(
            type(failure)(
                failure.link,
                max(failure.at - offset, 0.0),
                failure.until - offset,
            )
        )
    return FailureScenario(shifted)


def _merge_knowledge(
    accumulated: dict[str, set[str]],
    detections: dict[str, dict[str, float]],
) -> dict[str, set[str]]:
    """Carry every (observer, faulty) pair into the next iteration."""
    merged = {observer: set(faulty) for observer, faulty in accumulated.items()}
    for observer, known in detections.items():
        merged.setdefault(observer, set()).update(known)
    return merged


def simulate_iterations(
    schedule: Schedule,
    algorithm: AlgorithmGraph,
    iterations: int,
    scenario: FailureScenario | None = None,
    detection: DetectionPolicy = DetectionPolicy.NONE,
    period: float | None = None,
) -> IterativeTrace:
    """One-call API for the cyclic execution."""
    simulator = IterativeSimulator(schedule, algorithm, detection, period)
    return simulator.run(iterations, scenario)
