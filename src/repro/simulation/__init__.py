"""Runtime behaviour: failure scenarios and schedule replay (section 5)."""

from repro.simulation.batch import (
    BatchScenarioEngine,
    BatchStats,
)
from repro.simulation.compiled import (
    CompiledSchedule,
    CompiledTrace,
)
from repro.simulation.executor import (
    DetectionPolicy,
    ScheduleSimulator,
    simulate,
)
from repro.simulation.failures import (
    FailureScenario,
    LinkFailure,
    ProcessorFailure,
)
from repro.simulation.iterative import (
    IterationOutcome,
    IterativeSimulator,
    IterativeTrace,
    simulate_iterations,
)
from repro.simulation.trace import (
    EventStatus,
    ExecutionTrace,
    SimulatedComm,
    SimulatedOperation,
)

__all__ = [
    "BatchScenarioEngine",
    "BatchStats",
    "CompiledSchedule",
    "CompiledTrace",
    "DetectionPolicy",
    "EventStatus",
    "ExecutionTrace",
    "FailureScenario",
    "IterationOutcome",
    "IterativeSimulator",
    "IterativeTrace",
    "LinkFailure",
    "ProcessorFailure",
    "ScheduleSimulator",
    "SimulatedComm",
    "SimulatedOperation",
    "simulate",
    "simulate_iterations",
]
