"""Batched failure-scenario simulation for reliability certification.

:class:`BatchScenarioEngine` answers "is this crash subset masked?" for
thousands of scenarios against one schedule — including the *combined*
processor+link subsets of link-failure certification (``npl >= 1``
schedules), which silence links exactly like the per-scenario executor
does.  It compiles the schedule once
(:mod:`repro.simulation.compiled`), simulates the failure-free
baseline once, and then spends per scenario only what the scenario
actually requires:

* **footprint-equivalence pruning** — crash subsets that silence no
  scheduled event are grouped into the *nominal* equivalence class and
  answered from the baseline without simulating: processors (and
  links) the schedule never involves are dropped from every subset,
  and a crash instant past a resource's last involvement (a
  processor's final replica end / last sent comm / last received comm,
  a link's last transmission end) provably reproduces the baseline
  trace.  The class membership test is O(|subset|), so the exact
  probability sum over all ``2^P`` subsets stays exact while most of
  the lattice is never simulated;
* **shared-prefix dirty-cone re-decision** — a subset's dirty cone (the
  events reachable from its silenced resources through data or
  resource-order edges) is the union of its members' cones; member
  cones are computed once and subset cones are assembled through a
  prefix cache that mirrors the lexicographic enumeration order of
  ``itertools.combinations``, so consecutive subsets reuse each other's
  partial unions.  Events outside the cone are copied from the baseline
  instead of re-decided;
* **verdict memoization** — every simulated ``(subset, instant)``
  verdict is cached under its canonical reduced form, so equivalent
  scenarios across certificate levels, crash-instant sweeps and
  reliability sums are simulated once per equivalence class.

All answers are bit-identical to replaying
:class:`~repro.simulation.executor.ScheduleSimulator` per scenario —
the pruning rules are exact theorems about the worklist semantics, and
the cone replay falls back to a full compiled replay whenever its
order-independence argument does not apply (failure detection enabled,
a baseline that needed the stalled-worklist relaxation, or a scenario
whose cone replay stalls).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, fields
from typing import Iterable

from repro import obs
from repro.graphs.algorithm import AlgorithmGraph
from repro.schedule.schedule import Schedule
from repro.simulation.compiled import (
    CompiledSchedule,
    _CrashSetQueries,
)
from repro.simulation.executor import DetectionPolicy
from repro.simulation.failures import FailureScenario
from repro.simulation.trace import ExecutionTrace


@dataclass
class BatchStats:
    """Work accounting of one :class:`BatchScenarioEngine`."""

    #: Scenario verdicts requested (one per ``(subset, instant)`` pair).
    scenarios: int = 0
    #: Scenarios answered from the nominal equivalence class.
    pruned_nominal: int = 0
    #: Scenarios answered from the verdict memo.
    memo_hits: int = 0
    #: Scenarios replayed with dirty-cone baseline copying.
    simulated_cone: int = 0
    #: Scenarios replayed in full (detection on, or cone stalled).
    simulated_full: int = 0
    #: Cone replays that stalled and re-ran as full replays.
    cone_fallbacks: int = 0
    #: Event decisions made across all replays (baseline included).
    decisions: int = 0
    #: Event outcomes copied from the baseline instead of re-decided.
    copied: int = 0

    @property
    def simulated(self) -> int:
        """Scenarios that actually ran a replay."""
        return self.simulated_cone + self.simulated_full


#: Live engines, tracked weakly so the metrics snapshot can total their
#: work accounting without keeping finished engines alive.
_ENGINES: "weakref.WeakSet[BatchScenarioEngine]" = weakref.WeakSet()


def _collect_batch_stats() -> dict:
    """Sum the :class:`BatchStats` of every live engine (pull-style)."""
    totals = {f.name: 0 for f in fields(BatchStats)}
    engines = 0
    for engine in list(_ENGINES):
        engines += 1
        stats = engine.stats
        for name in totals:
            totals[name] += getattr(stats, name)
    totals["engines"] = engines
    return totals


obs.metrics.register_collector("batch_sim", _collect_batch_stats)


class BatchScenarioEngine:
    """Compile-once, replay-many scenario engine for one schedule.

    Build once per ``(schedule, algorithm, detection)``; every query is
    side-effect free apart from cache growth.  :meth:`run` yields full
    executor-compatible traces for arbitrary scenarios;
    :meth:`crash_subset_masked` is the hot verdict path used by the
    reliability certificates.
    """

    def __init__(
        self,
        schedule: Schedule,
        algorithm: AlgorithmGraph,
        detection: DetectionPolicy = DetectionPolicy.NONE,
    ) -> None:
        self._detection = DetectionPolicy(detection)
        #: The schedule/algorithm this engine was compiled for — callers
        #: sharing one engine across calls can (and should) check it
        #: answers for the right schedule.
        self.schedule = schedule
        self.algorithm = algorithm
        with obs.span(
            "batch.compile",
            schedule=schedule.name,
            detection=self._detection.name,
        ):
            self._compiled = CompiledSchedule(schedule, algorithm)
            self.stats = BatchStats()
            self._baseline = self._compiled.replay(None, self._detection)
        _ENGINES.add(self)
        self.stats.decisions += self._baseline.decisions
        self._baseline_delivered = self._baseline.delivered(self._compiled)
        # The cone-copy and nominal-pruning arguments need a clean,
        # relaxation-free baseline; detection knowledge additionally
        # makes decisions order-dependent, so cones are NONE-only.
        self._baseline_clean = self._baseline.clean
        self._cone_ok = (
            self._detection is DetectionPolicy.NONE and self._baseline_clean
        )
        compiled = self._compiled
        n_procs = len(compiled.proc_names)
        n_links = len(compiled.link_names)
        self._host_send_last = [0.0] * n_procs
        self._recv_last = [-1.0] * n_procs
        #: Baseline end of the last comm on each link — a link failing
        #: after its last transmission reproduces the baseline verbatim.
        self._link_last = [0.0] * n_links
        if self._baseline_clean:
            for op, proc in enumerate(compiled.op_proc):
                end = self._baseline.op_end[op]
                if end > self._host_send_last[proc]:
                    self._host_send_last[proc] = end
            for comm in range(len(compiled.comm_events)):
                end = self._baseline.comm_end[comm]
                src = compiled.comm_src_proc[comm]
                dst = compiled.comm_dst_proc[comm]
                link = compiled.comm_link[comm]
                if end > self._host_send_last[src]:
                    self._host_send_last[src] = end
                if end > self._recv_last[dst]:
                    self._recv_last[dst] = end
                if end > self._link_last[link]:
                    self._link_last[link] = end
        #: Whether each link carries any comm at all — silencing an
        #: unused link can never change a decision.
        self._link_involved = tuple(
            bool(order) for order in compiled.link_order
        )
        self._verdict_memo: dict[tuple, bool] = {}
        self._cone_prefix: dict[tuple[int, ...], int] = {(): 0}
        self._link_cone_prefix: dict[tuple[int, ...], int] = {(): 0}
        self._trace_memo: dict[tuple, ExecutionTrace] = {}

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def detection(self) -> DetectionPolicy:
        """The failure-detection policy every replay runs with."""
        return self._detection

    @property
    def baseline_delivered(self) -> bool:
        """Whether the failure-free run delivers every operation."""
        return self._baseline_delivered

    def baseline_trace(self) -> ExecutionTrace:
        """The failure-free trace (compiled replay, executor-identical)."""
        return self._baseline.to_trace(self._compiled)

    def involved_processors(self) -> tuple[str, ...]:
        """Processors the schedule involves at all, in canonical order.

        A crash subset's verdict depends only on its intersection with
        this set (the reduction :meth:`crash_subset_masked` applies) —
        the exactness theorem the sampled certifier's involved-set
        projection is built on.
        """
        return tuple(
            name
            for name, involved in zip(
                self._compiled.proc_names, self._compiled.proc_involved
            )
            if involved
        )

    def involved_links(self) -> tuple[str, ...]:
        """Links that carry at least one comm, in canonical order."""
        return tuple(
            name
            for name, involved in zip(
                self._compiled.link_names, self._link_involved
            )
            if involved
        )

    def processor_cone_fractions(self) -> dict[str, float]:
        """Dirty-cone size of each involved processor as an event share.

        The fraction of all scheduled events reachable from the
        processor's failures through data or resource-order edges —
        the importance-sampling tilt of the sampled certifier (larger
        cone = more decisions revisited = likelier to break).
        """
        compiled = self._compiled
        total = max(1, len(compiled.op_events) + len(compiled.comm_events))
        return {
            name: compiled.proc_cone(compiled.proc_ids[name]).bit_count()
            / total
            for name in self.involved_processors()
        }

    def link_cone_fractions(self) -> dict[str, float]:
        """Dirty-cone event share per involved link (see above)."""
        compiled = self._compiled
        total = max(1, len(compiled.op_events) + len(compiled.comm_events))
        return {
            name: compiled.link_cone(compiled.link_ids[name]).bit_count()
            / total
            for name in self.involved_links()
        }

    # ------------------------------------------------------------------
    # generic scenarios (full traces)
    # ------------------------------------------------------------------
    def run(self, scenario: FailureScenario | None = None) -> ExecutionTrace:
        """Simulate one arbitrary scenario, returning the full trace.

        Bit-identical to ``simulate(schedule, algorithm, scenario,
        detection)`` — the cone replay is used when its exactness
        argument holds and silently falls back to the full compiled
        replay otherwise.
        """
        if scenario is None or len(scenario) == 0:
            return self.baseline_trace()
        key = scenario.signature()
        cached = self._trace_memo.get(key)
        if cached is not None:
            self.stats.memo_hits += 1
            return cached
        state = None
        if self._cone_ok:
            cone = self._compiled.scenario_cone(scenario)
            state = self._compiled.replay(
                scenario, self._detection, baseline=self._baseline, cone=cone
            )
            if state is None:
                self.stats.cone_fallbacks += 1
            else:
                self.stats.simulated_cone += 1
        if state is None:
            state = self._compiled.replay(scenario, self._detection)
            self.stats.simulated_full += 1
        self.stats.decisions += state.decisions
        self.stats.copied += state.copied
        trace = state.to_trace(self._compiled)
        self._trace_memo[key] = trace
        return trace

    # ------------------------------------------------------------------
    # crash-subset verdicts (the certification hot path)
    # ------------------------------------------------------------------
    def crash_subset_masked(
        self,
        processors: Iterable[str],
        crash_times: Iterable[float],
        links: Iterable[str] = (),
    ) -> bool:
        """True when the crash subset is masked at every instant.

        Mirrors the per-scenario rule: every operation must complete on
        at least one processor under simultaneous permanent crashes of
        ``processors`` (and, for combined processor+link certification,
        permanent failures of ``links``) at each instant of
        ``crash_times`` (checked in order, stopping at the first break —
        verdicts are memoized, so the short-circuit never loses
        information).
        """
        proc_ids = self._compiled.proc_ids
        involved = self._compiled.proc_involved
        reduced = tuple(
            sorted(
                proc_ids[name]
                for name in processors
                if name in proc_ids and involved[proc_ids[name]]
            )
        )
        link_ids = self._compiled.link_ids
        link_involved = self._link_involved
        reduced_links = tuple(
            sorted(
                link_ids[name]
                for name in links
                if name in link_ids and link_involved[link_ids[name]]
            )
        )
        for at in crash_times:
            if not self._crash_masked(reduced, at, reduced_links):
                return False
        return True

    def _crash_masked(
        self,
        reduced: tuple[int, ...],
        at: float,
        reduced_links: tuple[int, ...] = (),
    ) -> bool:
        """Verdict for one reduced subset at one crash instant."""
        self.stats.scenarios += 1
        if not reduced and not reduced_links:
            return self._baseline_delivered
        if self._baseline_clean and self._is_nominal_equivalent(
            reduced, at, reduced_links
        ):
            self.stats.pruned_nominal += 1
            return self._baseline_delivered
        key = (reduced, at) if not reduced_links else (reduced, at, reduced_links)
        cached = self._verdict_memo.get(key)
        if cached is not None:
            self.stats.memo_hits += 1
            return cached
        queries = _CrashSetQueries(
            frozenset(reduced), at, frozenset(reduced_links)
        )
        state = None
        if self._cone_ok:
            cone = self._subset_cone(reduced)
            if reduced_links:
                cone |= self._link_subset_cone(reduced_links)
            state = self._compiled.replay(
                baseline=self._baseline,
                cone=cone,
                verdict_only=True,
                queries=queries,
            )
            if state is None:
                self.stats.cone_fallbacks += 1
            else:
                self.stats.simulated_cone += 1
        if state is None:
            state = self._compiled.replay(
                detection=self._detection, verdict_only=True, queries=queries
            )
            self.stats.simulated_full += 1
        self.stats.decisions += state.decisions
        self.stats.copied += state.copied
        verdict = state.truncated or state.delivered(self._compiled)
        self._verdict_memo[key] = verdict
        return verdict

    def _is_nominal_equivalent(
        self,
        reduced: tuple[int, ...],
        at: float,
        reduced_links: tuple[int, ...] = (),
    ) -> bool:
        """Exact test: the crash lands after every involvement of the subset.

        A processor whose hosted operations and sent comms all end by
        ``at`` (and whose received comms end strictly before ``at``)
        answers every scenario query exactly as the nominal scenario
        does; a link whose last comm ends by ``at`` likewise never
        blocks a transmit window (a failure interval ``[at, inf)``
        overlaps a window ``[start, end)`` only when ``at < end``) — so
        the whole replay reproduces the baseline verbatim.
        """
        host_send = self._host_send_last
        recv = self._recv_last
        for proc in reduced:
            if host_send[proc] > at or recv[proc] >= at:
                return False
        link_last = self._link_last
        for link in reduced_links:
            if link_last[link] > at:
                return False
        return True

    def _subset_cone(self, reduced: tuple[int, ...]) -> int:
        """Dirty cone of a subset via the shared-prefix union cache.

        ``cone(p1..pk) = cone(p1..pk-1) | cone(pk)`` — with subsets
        enumerated lexicographically (``itertools.combinations`` order)
        the prefix is almost always already cached.
        """
        cached = self._cone_prefix.get(reduced)
        if cached is not None:
            return cached
        cone = (
            self._subset_cone(reduced[:-1])
            | self._compiled.proc_cone(reduced[-1])
        )
        self._cone_prefix[reduced] = cone
        return cone

    def _link_subset_cone(self, reduced_links: tuple[int, ...]) -> int:
        """Union of link cones with the same prefix-cache trick."""
        cached = self._link_cone_prefix.get(reduced_links)
        if cached is not None:
            return cached
        cone = (
            self._link_subset_cone(reduced_links[:-1])
            | self._compiled.link_cone(reduced_links[-1])
        )
        self._link_cone_prefix[reduced_links] = cone
        return cone
