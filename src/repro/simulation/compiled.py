"""Compile-once schedule representation for batched failure simulation.

:class:`~repro.simulation.executor.ScheduleSimulator` re-walks the
object graph (frozen-dataclass dict keys, name-keyed resource tables,
an O(comms) previous-hop scan) on every replay.  That cost is invisible
for one scenario but dominates reliability certification, which replays
the *same* schedule under thousands of crash subsets.

:class:`CompiledSchedule` flattens one ``Schedule`` + ``AlgorithmGraph``
into int-indexed struct-of-arrays — per-resource static orders,
predecessor/arrival tables, replica→processor maps, previous/next-hop
chains — compiled once and replayed many times with list indexing only.
:meth:`CompiledSchedule.replay` reproduces the worklist semantics of the
per-scenario executor *bit-identically* (same sweep order, same float
expressions, same stalled-worklist relaxation) and supports three
progressively cheaper modes:

* a full replay (any scenario, any detection policy);
* a *dirty-cone* replay that re-decides only the events reachable from
  a scenario's silenced resources and copies every other outcome from a
  baseline replay (exact: an event outside the cone has no data,
  resource-order or failure-query dependence on any changed event);
* a *verdict* replay that stops as soon as every algorithm operation
  has one completed replica (exact for masking checks, which only ask
  whether all operations were delivered).

The cone replay is only attempted without failure detection and with a
clean baseline: the timeout-array knowledge table makes decisions
order-dependent, and a baseline that needed the stalled-worklist
relaxation voids the order-independence argument.  A cone replay that
stalls returns ``None`` and the caller falls back to the full replay —
the executor would have needed the relaxation for that scenario too.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.exceptions import SimulationError
from repro.graphs.algorithm import AlgorithmGraph
from repro.schedule.schedule import Schedule
from repro.simulation.executor import DetectionPolicy
from repro.simulation.failures import FailureScenario
from repro.simulation.trace import (
    EventStatus,
    ExecutionTrace,
    SimulatedComm,
    SimulatedOperation,
)

#: Integer statuses of the array engine (index into ``_STATUS_VALUES``).
UNDECIDED = -1
COMPLETED = 0
LOST = 1
SKIPPED = 2
STARVED = 3

_STATUS_VALUES = (
    EventStatus.COMPLETED,
    EventStatus.LOST,
    EventStatus.SKIPPED,
    EventStatus.STARVED,
)


# ----------------------------------------------------------------------
# scenario query adapters (index-based views over FailureScenario)
# ----------------------------------------------------------------------

class _NominalQueries:
    """Every resource healthy forever — all queries are identities."""

    __slots__ = ()

    def next_window(self, proc: int, earliest: float, duration: float):
        return earliest

    def transmit_window(self, proc: int, link: int, earliest: float, duration: float):
        return earliest

    def is_up(self, proc: int, instant: float) -> bool:
        return True


class _CrashSetQueries:
    """Uniform permanent crash subset at one instant — the hot path.

    Replicates ``FailureScenario`` window arithmetic exactly for the
    special case of permanent ``[at, inf)`` failures: a window of
    ``duration`` fits at ``earliest`` iff it closes by ``at``.  The
    subset may silence processors *and* links (the combined scenarios of
    processor+link certification); a transmit window is blocked when
    either the sender or the medium is in the subset.
    """

    __slots__ = ("_down", "_at", "_down_links")

    def __init__(
        self,
        down: frozenset[int],
        at: float,
        down_links: frozenset[int] = frozenset(),
    ) -> None:
        self._down = down
        self._at = at
        self._down_links = down_links

    def next_window(self, proc: int, earliest: float, duration: float):
        if proc not in self._down:
            return earliest
        return earliest if self._at >= earliest + duration else None

    def transmit_window(self, proc: int, link: int, earliest: float, duration: float):
        if proc not in self._down and link not in self._down_links:
            return earliest
        return earliest if self._at >= earliest + duration else None

    def is_up(self, proc: int, instant: float) -> bool:
        return proc not in self._down or instant < self._at


class _GenericQueries:
    """Any :class:`FailureScenario` (intermittent, link failures, ...)."""

    __slots__ = ("_scenario", "_procs", "_links")

    def __init__(
        self,
        scenario: FailureScenario,
        procs: tuple[str, ...],
        links: tuple[str, ...],
    ) -> None:
        self._scenario = scenario
        self._procs = procs
        self._links = links

    def next_window(self, proc: int, earliest: float, duration: float):
        return self._scenario.next_window(self._procs[proc], earliest, duration)

    def transmit_window(self, proc: int, link: int, earliest: float, duration: float):
        # Same alternating search as the executor's ``_transmit_window``.
        scenario = self._scenario
        sender = self._procs[proc]
        medium = self._links[link]
        cursor = earliest
        while True:
            sender_ok = scenario.next_window(sender, cursor, duration)
            if sender_ok is None:
                return None
            link_ok = scenario.link_next_window(medium, sender_ok, duration)
            if link_ok is None:
                return None
            if link_ok == sender_ok:
                return link_ok
            cursor = link_ok

    def is_up(self, proc: int, instant: float) -> bool:
        return self._scenario.is_up(self._procs[proc], instant)


def _queries(
    compiled: "CompiledSchedule", scenario: FailureScenario | None
):
    """The cheapest query adapter that models ``scenario`` exactly."""
    if scenario is None or len(scenario) == 0:
        return _NominalQueries()
    failure_set = scenario.permanent_failure_set()
    if failure_set is not None:
        processors, links, at = failure_set
        down = frozenset(
            compiled.proc_ids[name]
            for name in processors
            if name in compiled.proc_ids
        )
        down_links = frozenset(
            compiled.link_ids[name]
            for name in links
            if name in compiled.link_ids
        )
        return _CrashSetQueries(down, at, down_links)
    return _GenericQueries(scenario, compiled.proc_names, compiled.link_names)


# ----------------------------------------------------------------------
# replay outcome
# ----------------------------------------------------------------------

@dataclass
class CompiledTrace:
    """Struct-of-arrays outcome of one compiled replay."""

    op_status: list[int]
    op_start: list[float | None]
    op_end: list[float | None]
    comm_status: list[int]
    comm_start: list[float | None]
    comm_end: list[float | None]
    comm_delivered: list[bool]
    #: ``(observer, faulty) -> detection time`` (timeout-array only).
    knowledge: dict[tuple[int, int], float] = field(default_factory=dict)
    #: Number of full event decisions made by this replay.
    decisions: int = 0
    #: Number of outcomes copied verbatim from the baseline (cone mode).
    copied: int = 0
    #: Number of stalled-worklist relaxations fired.
    relaxed_fires: int = 0
    #: True when the verdict-mode early exit truncated the replay.
    truncated: bool = False

    def delivered(self, compiled: "CompiledSchedule") -> bool:
        """True when every algorithm operation completed somewhere."""
        status = self.op_status
        for group in compiled.operation_groups:
            if not any(status[op] == COMPLETED for op in group):
                return False
        return True

    def to_trace(self, compiled: "CompiledSchedule") -> ExecutionTrace:
        """Rebuild the executor-compatible :class:`ExecutionTrace`."""
        if self.truncated:
            raise SimulationError(
                "a verdict-mode replay is truncated; rerun without "
                "verdict_only to obtain a full trace"
            )
        operations = []
        for op in compiled.ops_trace_order:
            event = compiled.op_events[op]
            operations.append(
                SimulatedOperation(
                    event.operation,
                    event.replica,
                    event.processor,
                    _STATUS_VALUES[self.op_status[op]],
                    start=self.op_start[op],
                    end=self.op_end[op],
                )
            )
        comms = []
        for comm in compiled.comms_trace_order:
            event = compiled.comm_events[comm]
            comms.append(
                SimulatedComm(
                    source=event.source,
                    target=event.target,
                    source_replica=event.source_replica,
                    target_replica=event.target_replica,
                    link=event.link,
                    source_processor=event.source_processor,
                    target_processor=event.target_processor,
                    hop_index=event.hop_index,
                    route=event.route,
                    status=_STATUS_VALUES[self.comm_status[comm]],
                    start=self.comm_start[comm],
                    end=self.comm_end[comm],
                    delivered=self.comm_delivered[comm],
                )
            )
        detections: dict[str, dict[str, float]] = {}
        for (observer, faulty), at in self.knowledge.items():
            table = detections.setdefault(compiled.proc_names[observer], {})
            table[compiled.proc_names[faulty]] = at
        return ExecutionTrace(
            operations=operations, comms=comms, detections=detections
        )

    @property
    def clean(self) -> bool:
        """True when every event completed without any relaxation."""
        return (
            self.relaxed_fires == 0
            and not self.truncated
            and all(s == COMPLETED for s in self.op_status)
            and all(s == COMPLETED for s in self.comm_status)
        )


# ----------------------------------------------------------------------
# the compiled schedule
# ----------------------------------------------------------------------

class CompiledSchedule:
    """One schedule flattened into int-indexed arrays, replayable cheaply.

    Build once with :meth:`compile`; every :meth:`replay` is independent.
    Operation ids number the per-processor static orders back-to-back in
    sorted processor order; comm ids do the same over links.  All event
    attributes the replay needs are plain Python lists indexed by id.
    """

    def __init__(self, schedule: Schedule, algorithm: AlgorithmGraph) -> None:
        for operation in algorithm.operation_names():
            if not schedule.replicas_of(operation):
                raise SimulationError(
                    f"operation {operation!r} of the algorithm is not in the "
                    f"schedule"
                )
        self.proc_names = schedule.processor_names()
        self.link_names = schedule.link_names()
        self.proc_ids = {name: i for i, name in enumerate(self.proc_names)}
        self.link_ids = {name: i for i, name in enumerate(self.link_names)}

        # --- operations -------------------------------------------------
        self.op_events: list = []
        self.proc_order: list[list[int]] = []
        op_ids: dict = {}
        for proc in self.proc_names:
            order = []
            for event in schedule.operations_on(proc):
                op = len(self.op_events)
                op_ids[event] = op
                self.op_events.append(event)
                order.append(op)
            self.proc_order.append(order)
        n_ops = len(self.op_events)
        self.op_proc = [self.proc_ids[e.processor] for e in self.op_events]
        self.op_duration = [e.end - e.start for e in self.op_events]
        replica_ids = {
            (e.operation, e.replica): op for op, e in enumerate(self.op_events)
        }

        # --- comms ------------------------------------------------------
        self.comm_events: list = []
        self.link_order: list[list[int]] = []
        comm_ids: dict = {}
        for link in self.link_names:
            order = []
            for event in schedule.comms_on(link):
                comm = len(self.comm_events)
                comm_ids[event] = comm
                self.comm_events.append(event)
                order.append(comm)
            self.link_order.append(order)
        self.comm_link = [self.link_ids[e.link] for e in self.comm_events]
        self.comm_duration = [e.end - e.start for e in self.comm_events]
        self.comm_static_end = [e.end for e in self.comm_events]
        self.comm_src_proc = [
            self.proc_ids[e.source_processor] for e in self.comm_events
        ]
        self.comm_dst_proc = [
            self.proc_ids[e.target_processor] for e in self.comm_events
        ]

        # Hop chains: producer replica for hop 0, previous hop otherwise.
        # One chain per route copy — route-replicated transfers
        # (npl >= 1) run Npl + 1 independent chains side by side.
        final_hop: dict[tuple, int] = {}
        by_chain: dict[tuple, int] = {}
        for comm, event in enumerate(self.comm_events):
            chain = (
                event.source, event.target,
                event.source_replica, event.target_replica, event.route,
            )
            final_hop[chain] = max(final_hop.get(chain, 0), event.hop_index)
            by_chain[(*chain, event.hop_index)] = comm
        self.comm_producer = [-1] * len(self.comm_events)
        self.comm_prev_hop = [-1] * len(self.comm_events)
        self.comm_is_final = [False] * len(self.comm_events)
        for comm, event in enumerate(self.comm_events):
            chain = (
                event.source, event.target,
                event.source_replica, event.target_replica, event.route,
            )
            self.comm_is_final[comm] = event.hop_index == final_hop[chain]
            if event.hop_index == 0:
                producer = schedule.replica(event.source, event.source_replica)
                self.comm_producer[comm] = op_ids[producer]
            else:
                previous = by_chain.get((*chain, event.hop_index - 1))
                if previous is None:
                    raise SimulationError(
                        f"missing hop {event.hop_index - 1} for {event!r}"
                    )
                self.comm_prev_hop[comm] = previous

        # --- input tables: per (op, predecessor) arrival sources --------
        feeding: dict[tuple[str, int, str], list[int]] = {}
        for comm, event in enumerate(self.comm_events):
            if self.comm_is_final[comm]:
                key = (event.target, event.target_replica, event.source)
                feeding.setdefault(key, []).append(comm)
        self.op_inputs: list[tuple[tuple[int, tuple[int, ...]], ...]] = []
        for op, event in enumerate(self.op_events):
            entries = []
            for predecessor in algorithm.predecessors(event.operation):
                local = schedule.replica_on(predecessor, event.processor)
                if local is not None and local.end > event.start + 1e-9:
                    local = None
                local_id = op_ids[local] if local is not None else -1
                comms = tuple(
                    feeding.get((event.operation, event.replica, predecessor), ())
                )
                entries.append((local_id, comms))
            self.op_inputs.append(tuple(entries))

        # --- verdict and trace views ------------------------------------
        self.operation_groups = tuple(
            tuple(
                replica_ids[(name, e.replica)]
                for e in schedule.replicas_of(name)
            )
            for name in algorithm.operation_names()
        )
        self.op_group_index = [-1] * n_ops
        for index, group in enumerate(self.operation_groups):
            for op in group:
                self.op_group_index[op] = index
        self.ops_trace_order = tuple(
            op_ids[e] for e in schedule.all_operations()
        )
        self.comms_trace_order = tuple(
            comm_ids[e] for e in schedule.all_comms()
        )

        # --- dirty-cone structure ---------------------------------------
        # Event graph node ids: op ``i`` is node ``i``; comm ``j`` is node
        # ``n_ops + j``.  ``successors`` holds every edge along which a
        # changed outcome can influence another decision: data flow
        # (producer→comm→next hop→consumer, local feed→consumer) and
        # resource order (event→next event on the same processor/link).
        successors: list[list[int]] = [
            [] for _ in range(n_ops + len(self.comm_events))
        ]
        for order in self.proc_order:
            for before, after in zip(order, order[1:]):
                successors[before].append(after)
        for order in self.link_order:
            for before, after in zip(order, order[1:]):
                successors[n_ops + before].append(n_ops + after)
        for comm in range(len(self.comm_events)):
            if self.comm_producer[comm] >= 0:
                successors[self.comm_producer[comm]].append(n_ops + comm)
            if self.comm_prev_hop[comm] >= 0:
                successors[n_ops + self.comm_prev_hop[comm]].append(n_ops + comm)
            if self.comm_is_final[comm]:
                event = self.comm_events[comm]
                target = replica_ids.get((event.target, event.target_replica))
                if target is not None:
                    successors[n_ops + comm].append(target)
        for op, entries in enumerate(self.op_inputs):
            for local_id, _ in entries:
                if local_id >= 0:
                    successors[local_id].append(op)
        self._successors = successors
        self._n_ops = n_ops
        self._proc_seed_nodes: list[list[int]] = [
            [] for _ in self.proc_names
        ]
        for op in range(n_ops):
            self._proc_seed_nodes[self.op_proc[op]].append(op)
        for comm in range(len(self.comm_events)):
            node = n_ops + comm
            self._proc_seed_nodes[self.comm_src_proc[comm]].append(node)
            self._proc_seed_nodes[self.comm_dst_proc[comm]].append(node)
        self._link_seed_nodes: list[list[int]] = [
            [n_ops + comm for comm in order] for order in self.link_order
        ]
        #: Whether each processor appears in the schedule at all (hosts an
        #: operation, sends or receives a comm) — crashing an uninvolved
        #: processor can never change any decision.
        self.proc_involved = tuple(
            bool(seeds) for seeds in self._proc_seed_nodes
        )
        self._proc_cones: list[int | None] = [None] * len(self.proc_names)
        self._link_cones: list[int | None] = [None] * len(self.link_names)

    # ------------------------------------------------------------------
    # dirty cones
    # ------------------------------------------------------------------
    def _closure(self, seeds: list[int]) -> int:
        """Bitmask of event nodes reachable from ``seeds`` (inclusive)."""
        mask = 0
        stack = list(seeds)
        successors = self._successors
        while stack:
            node = stack.pop()
            bit = 1 << node
            if mask & bit:
                continue
            mask |= bit
            stack.extend(successors[node])
        return mask

    def proc_cone(self, proc: int) -> int:
        """Dirty-cone bitmask of one failing processor (memoized)."""
        cone = self._proc_cones[proc]
        if cone is None:
            cone = self._closure(self._proc_seed_nodes[proc])
            self._proc_cones[proc] = cone
        return cone

    def link_cone(self, link: int) -> int:
        """Dirty-cone bitmask of one failing link (memoized)."""
        cone = self._link_cones[link]
        if cone is None:
            cone = self._closure(self._link_seed_nodes[link])
            self._link_cones[link] = cone
        return cone

    def scenario_cone(self, scenario: FailureScenario) -> int:
        """Union of the member cones (closure distributes over unions)."""
        cone = 0
        for name in scenario.failed_processors():
            proc = self.proc_ids.get(name)
            if proc is not None:
                cone |= self.proc_cone(proc)
        for name in scenario.failed_links():
            link = self.link_ids.get(name)
            if link is not None:
                cone |= self.link_cone(link)
        return cone

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def replay(
        self,
        scenario: FailureScenario | None = None,
        detection: DetectionPolicy = DetectionPolicy.NONE,
        baseline: CompiledTrace | None = None,
        cone: int | None = None,
        verdict_only: bool = False,
        queries=None,
    ) -> CompiledTrace | None:
        """Replay the schedule under ``scenario`` on the compiled arrays.

        With ``baseline`` and ``cone`` the replay re-decides only the
        events inside the cone and copies every other outcome from the
        baseline; it returns ``None`` when the worklist stalls (the
        caller must fall back to a full replay, which resolves the stall
        with the executor's relaxation rule).  ``verdict_only`` stops as
        soon as every operation has a completed replica — exact for
        masking checks, but the returned trace is marked ``truncated``.
        """
        if queries is None:
            queries = _queries(self, scenario)
        detection = DetectionPolicy(detection)
        timeout_array = detection is DetectionPolicy.TIMEOUT_ARRAY
        n_ops = self._n_ops
        n_comms = len(self.comm_events)
        cone_mode = baseline is not None and cone is not None

        if cone_mode:
            op_status = list(baseline.op_status)
            op_start = list(baseline.op_start)
            op_end = list(baseline.op_end)
            comm_status = list(baseline.comm_status)
            comm_start = list(baseline.comm_start)
            comm_end = list(baseline.comm_end)
            comm_delivered = list(baseline.comm_delivered)
        else:
            op_status = [UNDECIDED] * n_ops
            op_start: list = [None] * n_ops
            op_end: list = [None] * n_ops
            comm_status = [UNDECIDED] * n_comms
            comm_start: list = [None] * n_comms
            comm_end: list = [None] * n_comms
            comm_delivered = [False] * n_comms
        state = CompiledTrace(
            op_status, op_start, op_end,
            comm_status, comm_start, comm_end, comm_delivered,
        )

        proc_index = [0] * len(self.proc_names)
        proc_free = [0.0] * len(self.proc_names)
        proc_blocked = [False] * len(self.proc_names)
        link_index = [0] * len(self.link_names)
        link_free = [0.0] * len(self.link_names)
        knowledge = state.knowledge

        undecided = n_ops + n_comms
        copied = 0
        if cone_mode:
            # Everything outside the cone keeps its baseline outcome;
            # the cone is closed under resource order, so the skipped
            # events form a prefix of every resource's static order.
            for proc, order in enumerate(self.proc_order):
                cut = 0
                for op in order:
                    if cone >> op & 1:
                        break
                    if op_status[op] == COMPLETED:
                        proc_free[proc] = op_end[op]
                    cut += 1
                proc_index[proc] = cut
                copied += cut
                for op in order[cut:]:
                    op_status[op] = UNDECIDED
                    op_start[op] = None
                    op_end[op] = None
            for link, order in enumerate(self.link_order):
                cut = 0
                for comm in order:
                    if cone >> (n_ops + comm) & 1:
                        break
                    if comm_status[comm] == COMPLETED:
                        link_free[link] = comm_end[comm]
                    cut += 1
                link_index[link] = cut
                copied += cut
                for comm in order[cut:]:
                    comm_status[comm] = UNDECIDED
                    comm_start[comm] = None
                    comm_end[comm] = None
                    comm_delivered[comm] = False
            undecided -= copied
            state.copied = copied

        verdict_pending = (
            sum(
                1 for group in self.operation_groups
                if not any(op_status[op] == COMPLETED for op in group)
            )
            if verdict_only
            else -1
        )
        # Operation-name index for the verdict countdown.
        if verdict_only:
            op_group = self.op_group_index
            group_done = [
                any(op_status[op] == COMPLETED for op in group)
                for group in self.operation_groups
            ]
            if verdict_pending == 0:
                state.truncated = True
                return state

        decisions = 0

        # Local bindings for the hot loop.
        op_inputs = self.op_inputs
        op_duration = self.op_duration
        op_proc = self.op_proc
        comm_duration = self.comm_duration
        comm_producer = self.comm_producer
        comm_prev_hop = self.comm_prev_hop
        comm_link = self.comm_link
        comm_src = self.comm_src_proc
        comm_dst = self.comm_dst_proc
        comm_static_end = self.comm_static_end
        next_window = queries.next_window
        transmit_window = queries.transmit_window
        is_up = queries.is_up

        def input_ready(op: int, relaxed: bool):
            """First complete input set of one replica (None = never)."""
            ready = 0.0
            for local_id, comms in op_inputs[op]:
                candidates = []
                if local_id >= 0 and op_status[local_id] == COMPLETED:
                    candidates.append(op_end[local_id])
                for comm in comms:
                    status = comm_status[comm]
                    if status == UNDECIDED:
                        if relaxed:
                            continue
                        raise SimulationError(
                            f"undecided arrival {self.comm_events[comm]!r}"
                        )
                    if status == COMPLETED and comm_delivered[comm]:
                        candidates.append(comm_end[comm])
                if not candidates:
                    return None
                ready = max(ready, min(candidates))
            return ready

        def decide_operation(op: int, proc: int, relaxed: bool) -> None:
            nonlocal decisions, verdict_pending
            decisions += 1
            duration = op_duration[op]
            if next_window(proc, proc_free[proc], duration) is None:
                op_status[op] = LOST
                return
            ready = input_ready(op, relaxed)
            if ready is None:
                op_status[op] = STARVED
                proc_blocked[proc] = True
                return
            start = next_window(proc, max(ready, proc_free[proc]), duration)
            if start is None:
                op_status[op] = LOST
                return
            end = start + duration
            op_status[op] = COMPLETED
            op_start[op] = start
            op_end[op] = end
            proc_free[proc] = end
            if verdict_pending > 0:
                group = op_group[op]
                if not group_done[group]:
                    group_done[group] = True
                    verdict_pending -= 1

        def starve_rest(proc: int) -> None:
            nonlocal undecided
            order = self.proc_order[proc]
            for op in order[proc_index[proc]:]:
                if op_status[op] == UNDECIDED:
                    op_status[op] = STARVED
                    undecided -= 1
            proc_index[proc] = len(order)

        def decide_comm(comm: int) -> None:
            nonlocal decisions
            decisions += 1
            producer = comm_producer[comm]
            if producer >= 0:
                if op_status[producer] != COMPLETED:
                    data_ready = None
                else:
                    data_ready = op_end[producer]
            else:
                previous = comm_prev_hop[comm]
                if comm_status[previous] != COMPLETED or not comm_delivered[previous]:
                    data_ready = None
                else:
                    data_ready = comm_end[previous]
            if data_ready is None:
                if timeout_array:
                    _learn(
                        knowledge, comm_dst[comm], comm_src[comm],
                        comm_static_end[comm],
                    )
                comm_status[comm] = SKIPPED
                return
            link = comm_link[comm]
            duration = comm_duration[comm]
            earliest = max(link_free[link], data_ready)
            start = transmit_window(comm_src[comm], link, earliest, duration)
            if start is None:
                if timeout_array:
                    _learn(
                        knowledge, comm_dst[comm], comm_src[comm],
                        comm_static_end[comm],
                    )
                comm_status[comm] = LOST
                return
            if timeout_array:
                learned = knowledge.get((comm_src[comm], comm_dst[comm]))
                if learned is not None and learned <= start:
                    comm_status[comm] = SKIPPED
                    return
            end = start + duration
            comm_status[comm] = COMPLETED
            comm_start[comm] = start
            comm_end[comm] = end
            comm_delivered[comm] = is_up(comm_dst[comm], end)
            link_free[link] = end

        while True:
            progress = False
            for link, order in enumerate(self.link_order):
                i = link_index[link]
                while i < len(order):
                    comm = order[i]
                    producer = comm_producer[comm]
                    if producer >= 0:
                        if op_status[producer] == UNDECIDED:
                            break
                    elif comm_status[comm_prev_hop[comm]] == UNDECIDED:
                        break
                    decide_comm(comm)
                    undecided -= 1
                    i += 1
                    progress = True
                link_index[link] = i
            for proc, order in enumerate(self.proc_order):
                if proc_blocked[proc]:
                    continue
                i = proc_index[proc]
                while i < len(order):
                    op = order[i]
                    if not _operation_ready(
                        op, op_inputs, op_status, comm_status
                    ):
                        break
                    decide_operation(op, proc, relaxed=False)
                    undecided -= 1
                    if proc_blocked[proc]:
                        proc_index[proc] = i + 1
                        starve_rest(proc)
                        i = proc_index[proc]
                    else:
                        i += 1
                    progress = True
                    if verdict_pending == 0:
                        state.decisions = decisions
                        state.truncated = True
                        return state
                proc_index[proc] = i
            if progress:
                continue
            if undecided == 0:
                break
            if cone_mode:
                return None  # stall: the caller re-runs the full replay
            # Stalled worklist: fire the pending operation with the
            # earliest candidate start (the executor's relaxation).
            best = None
            for proc, order in enumerate(self.proc_order):
                if proc_blocked[proc] or proc_index[proc] >= len(order):
                    continue
                op = order[proc_index[proc]]
                ready = input_ready(op, relaxed=True)
                if ready is None:
                    continue
                candidate = (max(ready, proc_free[proc]), proc)
                if best is None or candidate < best:
                    best = candidate
            if best is None:
                break
            proc = best[1]
            op = self.proc_order[proc][proc_index[proc]]
            decide_operation(op, proc, relaxed=True)
            undecided -= 1
            state.relaxed_fires += 1
            if proc_blocked[proc]:
                proc_index[proc] += 1
                starve_rest(proc)
            else:
                proc_index[proc] += 1
            if verdict_pending == 0:
                state.decisions = decisions
                state.truncated = True
                return state

        # Drain: blocked operations starve, unreachable comms are skipped.
        if undecided:
            for status_list, terminal in (
                (op_status, STARVED), (comm_status, SKIPPED)
            ):
                for index, status in enumerate(status_list):
                    if status == UNDECIDED:
                        status_list[index] = terminal
        state.decisions = decisions
        return state


def _operation_ready(
    op: int, op_inputs, op_status, comm_status
) -> bool:
    """Conservative readiness: every potential arrival is decided."""
    for local_id, comms in op_inputs[op]:
        if local_id >= 0 and op_status[local_id] == UNDECIDED:
            return False
        for comm in comms:
            if comm_status[comm] == UNDECIDED:
                return False
    return True


def _learn(
    knowledge: dict[tuple[int, int], float],
    observer: int,
    faulty: int,
    at: float,
) -> None:
    """Record a failure detection (keep the earliest time)."""
    key = (observer, faulty)
    known = knowledge.get(key, math.inf)
    if at < known:
        knowledge[key] = at
